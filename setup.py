"""Legacy setup shim.

The offline environment has no `wheel` package, so PEP 660 editable installs
fail; `python setup.py develop` (or `pip install -e . --no-build-isolation`)
with this shim keeps `pip install -e .` working there.
"""
from setuptools import setup

setup()
