"""Cook–Toom construction of the Winograd transform matrices.

Winograd's minimal filtering algorithm ``F(m, r)`` computes ``m`` outputs of a
1-D correlation with an ``r``-tap filter using only ``n = m + r - 1``
multiplications:

    ``y = A^T [ (G g) ⊙ (B^T d) ]``

where ``d`` is the length-``n`` input tile, ``g`` the length-``r`` filter, and

* ``G``   is ``n x r``  (filter transform),
* ``B^T`` is ``n x n``  (input transform),
* ``A^T`` is ``m x n``  (output transform).

The 2-D algorithm ``F(m x m, r x r)`` used for CNN convolutions nests the 1-D
transforms:  ``Y = A^T [ (G g G^T) ⊙ (B^T d B) ] A``.

Construction
------------
We derive the matrices from the Toom–Cook evaluation/interpolation scheme for
linear convolution and transpose it (the standard duality between linear
convolution and correlation):

* pick ``n - 1`` distinct rational evaluation points plus the point at
  infinity;
* ``E_k`` is the ``n x k`` Vandermonde matrix (``∞`` row = ``[0, …, 0, 1]``);
* ``C`` is the square ``n x n`` Vandermonde at the same points;
* then ``A^T = E_m^T``, ``G = E_r`` and ``B^T = C^{-T}``.

All arithmetic is performed with :class:`fractions.Fraction` so the returned
float matrices are exact binary representations of small rationals whenever
possible; Lemma 4.13's assumption that the transform coefficients live
permanently in fast memory matches treating them as compile-time constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "WinogradTransforms",
    "default_points",
    "cook_toom_1d",
    "winograd_transforms",
]


_INF = object()  # sentinel for the evaluation point at infinity


def default_points(count: int) -> List[Fraction]:
    """Return ``count`` distinct finite rational evaluation points.

    The sequence ``0, 1, -1, 2, -2, 1/2, -1/2, 3, -3, …`` keeps the magnitude
    of the transform coefficients small, which is the usual choice for
    numerically well-behaved Winograd matrices.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return []
    points: List[Fraction] = []
    candidates: List[Fraction] = [Fraction(0)]
    k = 1
    while len(candidates) < count + 2:
        candidates.extend(
            [Fraction(k), Fraction(-k), Fraction(1, k + 1), Fraction(-1, k + 1)]
        )
        k += 1
    seen = set()
    for c in candidates:
        if c not in seen:
            seen.add(c)
            points.append(c)
        if len(points) == count:
            break
    return points


def _vandermonde(points: Sequence, cols: int) -> List[List[Fraction]]:
    """Vandermonde matrix rows ``[1, p, p^2, …]``; the ∞ row is ``e_{cols-1}``."""
    rows: List[List[Fraction]] = []
    for p in points:
        if p is _INF:
            rows.append([Fraction(0)] * (cols - 1) + [Fraction(1)])
        else:
            rows.append([Fraction(p) ** j for j in range(cols)])
    return rows


def _mat_inverse(matrix: List[List[Fraction]]) -> List[List[Fraction]]:
    """Exact Gauss–Jordan inverse over the rationals."""
    n = len(matrix)
    aug = [list(row) + [Fraction(int(i == j)) for j in range(n)] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot_row = next((r for r in range(col, n) if aug[r][col] != 0), None)
        if pivot_row is None:
            raise ValueError("singular Vandermonde matrix: evaluation points repeat")
        aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
        pivot = aug[col][col]
        aug[col] = [v / pivot for v in aug[col]]
        for r in range(n):
            if r != col and aug[r][col] != 0:
                factor = aug[r][col]
                aug[r] = [a - factor * b for a, b in zip(aug[r], aug[col])]
    return [row[n:] for row in aug]


def _transpose(matrix: List[List[Fraction]]) -> List[List[Fraction]]:
    return [list(col) for col in zip(*matrix)]


def _to_float(matrix: List[List[Fraction]]) -> np.ndarray:
    return np.array([[float(v) for v in row] for row in matrix], dtype=np.float64)


@dataclass(frozen=True)
class WinogradTransforms:
    """The three transform matrices of ``F(m x m, r x r)``.

    Attributes
    ----------
    m:
        Output tile extent ``e`` in the paper's notation.
    r:
        Kernel extent.
    AT:
        ``m x n`` output transform (``A^T``).
    G:
        ``n x r`` filter transform.
    BT:
        ``n x n`` input transform (``B^T``).
    """

    m: int
    r: int
    AT: np.ndarray
    G: np.ndarray
    BT: np.ndarray

    @property
    def tile_in(self) -> int:
        """Input tile extent ``n = m + r - 1`` (written ``e + r - 1`` in the paper)."""
        return self.m + self.r - 1

    @property
    def multiplications(self) -> int:
        """Element-wise multiplications per 2-D tile and channel: ``n^2``."""
        return self.tile_in * self.tile_in

    def filter_2d(self, g: np.ndarray) -> np.ndarray:
        """Transform one ``r x r`` filter into the ``n x n`` Winograd domain."""
        return self.G @ g @ self.G.T

    def input_2d(self, d: np.ndarray) -> np.ndarray:
        """Transform one ``n x n`` input tile into the Winograd domain."""
        return self.BT @ d @ self.BT.T

    def output_2d(self, mprod: np.ndarray) -> np.ndarray:
        """Transform an ``n x n`` element-wise product back to ``m x m`` outputs."""
        return self.AT @ mprod @ self.AT.T


def cook_toom_1d(
    m: int, r: int, points: Sequence[Fraction] | None = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build the 1-D ``F(m, r)`` matrices ``(A^T, G, B^T)``.

    Parameters
    ----------
    m:
        Number of outputs per tile (``e``); must be >= 1.
    r:
        Filter taps; must be >= 1.  ``m = r = 1`` degenerates to a scalar
        product and is rejected because no interpolation is involved.
    points:
        Optional explicit finite evaluation points (``n - 1`` of them).  The
        point at infinity is always appended.
    """
    if m < 1 or r < 1:
        raise ValueError("m and r must be >= 1")
    n = m + r - 1
    if n < 2:
        raise ValueError("F(1,1) is a scalar multiply; no Winograd transform exists")
    finite = list(points) if points is not None else default_points(n - 1)
    if len(finite) != n - 1:
        raise ValueError(f"need exactly {n - 1} finite points, got {len(finite)}")
    if len(set(finite)) != len(finite):
        raise ValueError("evaluation points must be distinct")
    pts: List = list(finite) + [_INF]

    e_m = _vandermonde(pts, m)  # n x m
    e_r = _vandermonde(pts, r)  # n x r
    c = _vandermonde(pts, n)  # n x n
    c_inv_t = _transpose(_mat_inverse(c))  # C^{-T}

    at = _to_float(_transpose(e_m))  # m x n
    g = _to_float(e_r)  # n x r
    bt = _to_float(c_inv_t)  # n x n
    return at, g, bt


@lru_cache(maxsize=None)
def winograd_transforms(m: int, r: int) -> WinogradTransforms:
    """Return (and cache) the 2-D transform set for ``F(m x m, r x r)``."""
    at, g, bt = cook_toom_1d(m, r)
    return WinogradTransforms(m=m, r=r, AT=at, G=g, BT=bt)
