"""Winograd convolution ``F(e x e, r x r)`` for CNN layers.

The computation follows the four steps of the paper's Figure 5:

1. transform each ``(e + r - 1) x (e + r - 1)`` input tile with ``B`` and each
   ``r x r`` kernel slice with ``G`` (linear-combination trees),
2. element-wise multiply the transformed tensors (``Λ``),
3. sum ``Λ`` along the channel axis (summation trees) producing ``Π``,
4. transform ``Π`` back with ``A`` to obtain ``e x e`` outputs per tile.

The implementation is vectorised over the batch, channel and tile axes with a
single einsum per step so that the test-suite can exercise realistic layer
shapes.  Outputs are numerically identical (to float tolerance) to
:func:`repro.conv.direct.direct_conv2d` for stride-1 square-kernel problems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .direct import pad_input
from .tensor import ConvParams
from .winograd_transforms import WinogradTransforms, winograd_transforms

__all__ = ["WinogradPlan", "plan_winograd", "winograd_conv2d", "winograd_flops"]


@dataclass(frozen=True)
class WinogradPlan:
    """Tile decomposition of a convolution for ``F(e x e, r x r)``.

    Attributes
    ----------
    params:
        The convolution problem.
    transforms:
        The transform matrices for the chosen ``e``.
    tiles_h / tiles_w:
        Number of output tiles along each spatial axis (output extents are
        padded up to a multiple of ``e``).
    padded_out_h / padded_out_w:
        Output extents after rounding up to whole tiles.
    """

    params: ConvParams
    transforms: WinogradTransforms
    tiles_h: int
    tiles_w: int
    padded_out_h: int
    padded_out_w: int

    @property
    def e(self) -> int:
        return self.transforms.m

    @property
    def r(self) -> int:
        return self.transforms.r

    @property
    def tile_in(self) -> int:
        return self.transforms.tile_in

    @property
    def num_tiles(self) -> int:
        return self.tiles_h * self.tiles_w

    @property
    def multiplications(self) -> int:
        """Element-wise multiplications across the whole layer (step 2)."""
        p = self.params
        return (
            p.batch
            * p.out_channels
            * p.in_channels
            * self.num_tiles
            * self.transforms.multiplications
        )


def plan_winograd(params: ConvParams, e: int = 2) -> WinogradPlan:
    """Build a tiling plan for ``F(e x e, r x r)``.

    Raises
    ------
    ValueError
        If the problem is not Winograd compatible (non-square kernel or
        stride != 1) or ``e`` is not a positive integer.
    """
    if not params.winograd_compatible():
        raise ValueError(
            "Winograd requires a square kernel and stride 1; got "
            f"{params.describe()}"
        )
    if e < 1:
        raise ValueError("e must be >= 1")
    r = params.ker_height
    transforms = winograd_transforms(e, r)
    tiles_h = -(-params.out_height // e)
    tiles_w = -(-params.out_width // e)
    return WinogradPlan(
        params=params,
        transforms=transforms,
        tiles_h=tiles_h,
        tiles_w=tiles_w,
        padded_out_h=tiles_h * e,
        padded_out_w=tiles_w * e,
    )


def _extract_tiles(xp: np.ndarray, plan: WinogradPlan) -> np.ndarray:
    """Gather the overlapping input tiles.

    Returns an array of shape ``(batch, Cin, tiles_h, tiles_w, t, t)`` where
    ``t = e + r - 1``.  The padded input is extended (with zeros) as needed so
    that every tile is complete.
    """
    e, t = plan.e, plan.tile_in
    need_h = (plan.tiles_h - 1) * e + t
    need_w = (plan.tiles_w - 1) * e + t
    b, cin, hp, wp = xp.shape
    if hp < need_h or wp < need_w:
        xp = np.pad(
            xp,
            ((0, 0), (0, 0), (0, max(0, need_h - hp)), (0, max(0, need_w - wp))),
            mode="constant",
        )
    sb, sc, sh, sw = xp.strides
    shape = (b, cin, plan.tiles_h, plan.tiles_w, t, t)
    strides = (sb, sc, sh * e, sw * e, sh, sw)
    return np.lib.stride_tricks.as_strided(xp, shape=shape, strides=strides, writeable=False)


def winograd_conv2d(
    x: np.ndarray,
    w: np.ndarray,
    params: ConvParams,
    e: int = 2,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """Compute a convolution with the Winograd algorithm ``F(e x e, r x r)``."""
    if x.shape != params.input_shape:
        raise ValueError(f"input shape {x.shape} != {params.input_shape}")
    if w.shape != params.kernel_shape:
        raise ValueError(f"kernel shape {w.shape} != {params.kernel_shape}")
    plan = plan_winograd(params, e=e)
    tf = plan.transforms

    xp = pad_input(np.asarray(x, dtype=np.float64), params.padding)
    tiles = _extract_tiles(xp, plan)  # (b, Cin, th, tw, t, t)

    # Step 1a: input transform  P = B^T d B       -> (b, Cin, th, tw, t, t)
    p_tiles = np.einsum("ij,bcxyjk,lk->bcxyil", tf.BT, tiles, tf.BT, optimize=True)
    # Step 1b: filter transform J = G g G^T       -> (Cout, Cin, t, t)
    j = np.einsum("ij,ocjk,lk->ocil", tf.G, np.asarray(w, dtype=np.float64), tf.G, optimize=True)
    # Steps 2+3: element-wise multiply and reduce over input channels
    #   Π[b, o, x, y] = Σ_c  P[b,c,x,y] ⊙ J[o,c]   -> (b, Cout, th, tw, t, t)
    pi = np.einsum("bcxyil,ocil->boxyil", p_tiles, j, optimize=True)
    # Step 4: output transform Y = A^T Π A        -> (b, Cout, th, tw, e, e)
    y_tiles = np.einsum("ij,boxyjk,lk->boxyil", tf.AT, pi, tf.AT, optimize=True)

    # Scatter tiles back into the (possibly over-sized) output, then crop.
    b = params.batch
    out_full = y_tiles.transpose(0, 1, 2, 4, 3, 5).reshape(
        b, params.out_channels, plan.padded_out_h, plan.padded_out_w
    )
    out = np.ascontiguousarray(out_full[:, :, : params.out_height, : params.out_width])
    if bias is not None:
        out = out + np.asarray(bias)[None, :, None, None]
    return out


def winograd_flops(params: ConvParams, e: int = 2) -> int:
    """Approximate floating-point operation count of the Winograd algorithm.

    Counts the element-wise multiplications plus the transform arithmetic
    (each 1-D transform of a length-``t`` vector is a dense ``t``-term linear
    combination).  Used by the GPU simulator's compute-time estimate.
    """
    plan = plan_winograd(params, e=e)
    p = params
    t = plan.tile_in
    r = plan.r
    tiles = plan.num_tiles * p.batch
    # input transform: per tile & input channel, two matrix products (t x t)·(t x t)
    input_tf = tiles * p.in_channels * 2 * t * t * t
    # filter transform: per (Cout, Cin) pair: (t x r)·(r x r) then (t x r)·(r x t)
    filter_tf = p.out_channels * p.in_channels * (t * r * r + t * t * r) * 2
    # element-wise multiply + channel reduction
    elementwise = 2 * tiles * p.out_channels * p.in_channels * t * t
    # output transform: per tile & output channel: (e x t)·(t x t) then (e x t)·(t x e)
    output_tf = tiles * p.out_channels * 2 * (plan.e * t * t + plan.e * plan.e * t)
    return int(input_tf + filter_tf + elementwise + output_tf)
