"""Tensor shape descriptions and convolution problem parameters.

This module defines the small value objects shared by every other subsystem:

* :class:`ConvParams` — a complete description of one convolution problem
  (input/kernel/output shapes, stride, padding, batch size, data layout).
* :class:`Layout` — the memory layouts considered by the paper's search
  domain (Table 1): ``CHW``, ``CWH`` and ``HWC``.

All shape arithmetic used by the reference implementations, the dataflow
models and the auto-tuner goes through :class:`ConvParams` so that the
definition of ``Hout``/``Wout``/``R`` is written exactly once.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Iterator, Tuple

__all__ = ["Layout", "ConvParams", "output_extent", "iter_spatial"]


class Layout(str, enum.Enum):
    """Memory layout of an image tensor.

    The paper's search domain (Table 1) enumerates three layouts for the
    channelled image tensors.  The layout only affects the *ordering* of
    elements in linear memory — it never changes the mathematical result of a
    convolution — but it changes memory-coalescing efficiency in the GPU
    simulator and is therefore part of a tuning configuration.
    """

    CHW = "CHW"
    CWH = "CWH"
    HWC = "HWC"

    @classmethod
    def all(cls) -> Tuple["Layout", ...]:
        return (cls.CHW, cls.CWH, cls.HWC)


def output_extent(in_extent: int, ker_extent: int, stride: int, padding: int) -> int:
    """Spatial output extent of a convolution along one axis.

    ``out = floor((in + 2*pad - ker) / stride) + 1``

    Raises
    ------
    ValueError
        If the resulting extent would be non-positive.
    """
    if in_extent <= 0 or ker_extent <= 0:
        raise ValueError("extents must be positive")
    if stride <= 0:
        raise ValueError("stride must be positive")
    if padding < 0:
        raise ValueError("padding must be non-negative")
    out = (in_extent + 2 * padding - ker_extent) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output extent for in={in_extent}, ker={ker_extent}, "
            f"stride={stride}, padding={padding}"
        )
    return out


@dataclasses.dataclass(frozen=True)
class ConvParams:
    """Complete description of a single 2-D convolution problem.

    Notation follows the paper: the input image is ``Win x Hin x Cin``, there
    are ``Cout`` kernels of shape ``Wker x Hker x Cin``, the output image is
    ``Wout x Hout x Cout``, the stride is ``mu`` (written ``stride`` here) and
    ``R = Wker*Hker / stride^2`` is the maximum reuse of one input element by
    different sliding windows (Eq. 13).

    ``batch`` describes a batched convolution; the paper's Figure 10 sweeps
    the batch dimension, and all I/O-volume formulas simply scale with it.
    """

    in_height: int
    in_width: int
    in_channels: int
    out_channels: int
    ker_height: int = 3
    ker_width: int = 3
    stride: int = 1
    padding: int = 0
    batch: int = 1
    layout: Layout = Layout.CHW

    def __post_init__(self) -> None:
        for name in (
            "in_height",
            "in_width",
            "in_channels",
            "out_channels",
            "ker_height",
            "ker_width",
            "stride",
            "batch",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")
        if self.padding < 0:
            raise ValueError("padding must be non-negative")
        if self.ker_height > self.in_height + 2 * self.padding:
            raise ValueError("kernel taller than padded input")
        if self.ker_width > self.in_width + 2 * self.padding:
            raise ValueError("kernel wider than padded input")
        if not isinstance(self.layout, Layout):
            object.__setattr__(self, "layout", Layout(self.layout))

    # ------------------------------------------------------------------ #
    # Derived shapes
    # ------------------------------------------------------------------ #
    @property
    def out_height(self) -> int:
        return output_extent(self.in_height, self.ker_height, self.stride, self.padding)

    @property
    def out_width(self) -> int:
        return output_extent(self.in_width, self.ker_width, self.stride, self.padding)

    @property
    def input_shape(self) -> Tuple[int, int, int, int]:
        """Logical shape ``(batch, Cin, Hin, Win)``."""
        return (self.batch, self.in_channels, self.in_height, self.in_width)

    @property
    def kernel_shape(self) -> Tuple[int, int, int, int]:
        """Logical shape ``(Cout, Cin, Hker, Wker)``."""
        return (self.out_channels, self.in_channels, self.ker_height, self.ker_width)

    @property
    def output_shape(self) -> Tuple[int, int, int, int]:
        """Logical shape ``(batch, Cout, Hout, Wout)``."""
        return (self.batch, self.out_channels, self.out_height, self.out_width)

    # ------------------------------------------------------------------ #
    # Element counts and arithmetic intensity
    # ------------------------------------------------------------------ #
    @property
    def input_elements(self) -> int:
        return self.batch * self.in_channels * self.in_height * self.in_width

    @property
    def kernel_elements(self) -> int:
        return self.out_channels * self.in_channels * self.ker_height * self.ker_width

    @property
    def output_elements(self) -> int:
        return self.batch * self.out_channels * self.out_height * self.out_width

    @property
    def macs(self) -> int:
        """Number of multiply-accumulate operations of the direct algorithm."""
        return (
            self.output_elements
            * self.in_channels
            * self.ker_height
            * self.ker_width
        )

    @property
    def flops(self) -> int:
        """Floating-point operations (2 per MAC) of the direct algorithm."""
        return 2 * self.macs

    @property
    def reuse_factor(self) -> float:
        """``R = Wker*Hker / stride^2`` — maximum input reuse (Eq. 13)."""
        return (self.ker_height * self.ker_width) / float(self.stride * self.stride)

    @property
    def is_square_kernel(self) -> bool:
        return self.ker_height == self.ker_width

    def winograd_compatible(self) -> bool:
        """Winograd ``F(e x e, r x r)`` requires a square kernel and stride 1."""
        return self.is_square_kernel and self.stride == 1

    # ------------------------------------------------------------------ #
    # Convenience constructors / transforms
    # ------------------------------------------------------------------ #
    def with_batch(self, batch: int) -> "ConvParams":
        return dataclasses.replace(self, batch=batch)

    def with_layout(self, layout: Layout) -> "ConvParams":
        return dataclasses.replace(self, layout=Layout(layout))

    def with_padding(self, padding: int) -> "ConvParams":
        return dataclasses.replace(self, padding=padding)

    @classmethod
    def square(
        cls,
        size: int,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        padding: int = 0,
        batch: int = 1,
        layout: Layout = Layout.CHW,
    ) -> "ConvParams":
        """Build a square-image, square-kernel problem (the paper's sweeps)."""
        return cls(
            in_height=size,
            in_width=size,
            in_channels=in_channels,
            out_channels=out_channels,
            ker_height=kernel,
            ker_width=kernel,
            stride=stride,
            padding=padding,
            batch=batch,
            layout=layout,
        )

    def describe(self) -> str:
        return (
            f"Conv(b={self.batch}, Cin={self.in_channels}, "
            f"HxW={self.in_height}x{self.in_width}, Cout={self.out_channels}, "
            f"ker={self.ker_height}x{self.ker_width}, stride={self.stride}, "
            f"pad={self.padding}, layout={self.layout.value})"
        )


def iter_spatial(params: ConvParams) -> Iterator[Tuple[int, int, int, int]]:
    """Iterate over ``(oh, ow, ih0, iw0)`` output positions and the top-left
    corner of the corresponding sliding window in the *padded* input."""
    for oh in range(params.out_height):
        for ow in range(params.out_width):
            yield oh, ow, oh * params.stride, ow * params.stride


def divisors(n: int) -> Tuple[int, ...]:
    """All positive divisors of ``n`` in increasing order.

    Used by the search domain (Table 1): tile sizes must divide the output
    extents, and thread counts must divide tile sizes.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    small = []
    large = []
    for d in range(1, int(math.isqrt(n)) + 1):
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
    return tuple(small + large[::-1])
