"""Correctness oracles and algorithm registry for convolutions.

The rest of the library (tests, dataflow executors, the auto-tuning engine's
"measurement" step) needs a single place that says "here are the convolution
algorithms we implement, run one and check it against the oracle".  This
module provides that registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from .direct import direct_conv2d
from .im2col import im2col_conv2d
from .tensor import ConvParams
from .winograd import winograd_conv2d

__all__ = [
    "ConvAlgorithm",
    "ALGORITHMS",
    "run_algorithm",
    "random_operands",
    "max_abs_error",
    "verify_algorithm",
]


ConvFn = Callable[..., np.ndarray]


@dataclass(frozen=True)
class ConvAlgorithm:
    """A named convolution implementation.

    ``supports`` reports whether the algorithm can run a given problem (e.g.
    Winograd needs stride 1 and a square kernel).
    """

    name: str
    fn: ConvFn
    requires_winograd: bool = False

    def supports(self, params: ConvParams) -> bool:
        if self.requires_winograd:
            return params.winograd_compatible()
        return True


def _winograd_e2(x, w, params, bias=None):
    return winograd_conv2d(x, w, params, e=2, bias=bias)


def _winograd_e4(x, w, params, bias=None):
    return winograd_conv2d(x, w, params, e=4, bias=bias)


ALGORITHMS: Dict[str, ConvAlgorithm] = {
    "direct": ConvAlgorithm("direct", direct_conv2d),
    "im2col": ConvAlgorithm("im2col", im2col_conv2d),
    "winograd_f2": ConvAlgorithm("winograd_f2", _winograd_e2, requires_winograd=True),
    "winograd_f4": ConvAlgorithm("winograd_f4", _winograd_e4, requires_winograd=True),
}


def run_algorithm(
    name: str,
    x: np.ndarray,
    w: np.ndarray,
    params: ConvParams,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Run the named algorithm, raising ``KeyError`` for unknown names and
    ``ValueError`` for unsupported problems."""
    algo = ALGORITHMS[name]
    if not algo.supports(params):
        raise ValueError(f"algorithm {name!r} does not support {params.describe()}")
    return algo.fn(x, w, params, bias=bias)


def random_operands(
    params: ConvParams, seed: int = 0, dtype=np.float64
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic random input/kernel tensors for a problem."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(params.input_shape).astype(dtype)
    w = rng.standard_normal(params.kernel_shape).astype(dtype)
    return x, w


def max_abs_error(a: np.ndarray, b: np.ndarray) -> float:
    """Maximum absolute elementwise difference between two arrays."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        return 0.0
    return float(np.max(np.abs(a - b)))


def verify_algorithm(
    name: str, params: ConvParams, seed: int = 0, rtol: float = 1e-8
) -> float:
    """Run ``name`` and the direct oracle on random operands; return the
    maximum absolute error normalised by the oracle's magnitude.

    Raises ``AssertionError`` if the relative error exceeds ``rtol``.
    """
    x, w = random_operands(params, seed=seed)
    expected = direct_conv2d(x, w, params)
    actual = run_algorithm(name, x, w, params)
    scale = max(1.0, float(np.max(np.abs(expected))))
    err = max_abs_error(expected, actual) / scale
    if err > rtol:
        raise AssertionError(
            f"{name} disagrees with the direct oracle: rel err {err:.3e} > {rtol:.1e} "
            f"for {params.describe()}"
        )
    return err
