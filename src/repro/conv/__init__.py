"""Convolution algorithm substrate.

This package contains the numerical convolution algorithms the paper's
evaluation exercises (direct, im2col+GEMM, Winograd ``F(e x e, r x r)``),
the Cook–Toom construction of the Winograd transforms, and the shared
problem-description value objects.
"""

from .tensor import ConvParams, Layout, divisors, output_extent
from .direct import direct_conv2d, direct_conv2d_naive
from .im2col import im2col, im2col_conv2d, im2col_buffer_elements
from .winograd_transforms import WinogradTransforms, cook_toom_1d, winograd_transforms
from .winograd import WinogradPlan, plan_winograd, winograd_conv2d, winograd_flops
from .reference import (
    ALGORITHMS,
    ConvAlgorithm,
    max_abs_error,
    random_operands,
    run_algorithm,
    verify_algorithm,
)

__all__ = [
    "ConvParams",
    "Layout",
    "divisors",
    "output_extent",
    "direct_conv2d",
    "direct_conv2d_naive",
    "im2col",
    "im2col_conv2d",
    "im2col_buffer_elements",
    "WinogradTransforms",
    "cook_toom_1d",
    "winograd_transforms",
    "WinogradPlan",
    "plan_winograd",
    "winograd_conv2d",
    "winograd_flops",
    "ALGORITHMS",
    "ConvAlgorithm",
    "max_abs_error",
    "random_operands",
    "run_algorithm",
    "verify_algorithm",
]
