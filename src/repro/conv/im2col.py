"""im2col + GEMM convolution.

cuDNN's "direct" path for general shapes is the image-to-column lowering
followed by a matrix multiplication (the paper cites it as the image2col
method, Section 7).  We implement it both as a numerical algorithm and as a
cost-model target: the lowering materialises a ``(Cin*Hker*Wker, Hout*Wout)``
matrix per image, which is exactly why its off-chip traffic is larger than
the I/O-optimal dataflow for strided or large-kernel problems.
"""

from __future__ import annotations

import numpy as np

from .direct import pad_input, sliding_windows
from .tensor import ConvParams

__all__ = ["im2col", "col2im_shape", "im2col_conv2d", "im2col_buffer_elements"]


def im2col(x: np.ndarray, params: ConvParams) -> np.ndarray:
    """Lower the input to the column matrix.

    Returns an array of shape ``(batch, Cin*Hker*Wker, Hout*Wout)``.
    """
    if x.shape != params.input_shape:
        raise ValueError(f"input shape {x.shape} != {params.input_shape}")
    xp = pad_input(np.asarray(x), params.padding)
    windows = sliding_windows(xp, params)
    b = params.batch
    k = params.in_channels * params.ker_height * params.ker_width
    n = params.out_height * params.out_width
    # (b, Cin, Hout, Wout, Hker, Wker) -> (b, Cin, Hker, Wker, Hout, Wout)
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(b, k, n)
    return np.ascontiguousarray(cols)


def col2im_shape(params: ConvParams) -> tuple[int, int, int]:
    """Shape of the column matrix ``(batch, K, N)`` without materialising it."""
    return (
        params.batch,
        params.in_channels * params.ker_height * params.ker_width,
        params.out_height * params.out_width,
    )


def im2col_buffer_elements(params: ConvParams) -> int:
    """Number of elements of the materialised column buffer.

    This is the extra off-chip footprint the im2col method pays compared with
    the direct dataflow; the GPU simulator charges it as additional traffic.
    """
    b, k, n = col2im_shape(params)
    return b * k * n


def im2col_conv2d(
    x: np.ndarray, w: np.ndarray, params: ConvParams, bias: np.ndarray | None = None
) -> np.ndarray:
    """Convolution via explicit im2col lowering and a single GEMM per image."""
    if w.shape != params.kernel_shape:
        raise ValueError(f"kernel shape {w.shape} != {params.kernel_shape}")
    cols = im2col(x, params)
    k = params.in_channels * params.ker_height * params.ker_width
    w_mat = w.reshape(params.out_channels, k)
    # (Cout, K) @ (b, K, N) -> (b, Cout, N)
    out = np.einsum("ok,bkn->bon", w_mat, cols, optimize=True)
    out = out.reshape(params.output_shape)
    if bias is not None:
        out = out + np.asarray(bias)[None, :, None, None]
    return out
