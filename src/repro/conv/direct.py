"""Reference direct convolution implementations.

Two implementations are provided:

* :func:`direct_conv2d` — a vectorised NumPy implementation used as the
  numerical oracle throughout the test-suite.  It is written with
  stride-tricked sliding windows and a single ``einsum`` so that large-ish
  shapes stay fast without any compiled extension.
* :func:`direct_conv2d_naive` — a literal seven-loop translation of the
  definition in Section 2.2 of the paper.  It exists purely to validate the
  vectorised version on tiny shapes.

Both operate on ``(batch, Cin, Hin, Win)`` inputs and ``(Cout, Cin, Hker,
Wker)`` kernels and return ``(batch, Cout, Hout, Wout)`` outputs, regardless
of the :class:`~repro.conv.tensor.Layout` recorded in the problem description
(layout only matters to the memory model, not to the mathematics).
"""

from __future__ import annotations

import numpy as np

from .tensor import ConvParams

__all__ = ["pad_input", "sliding_windows", "direct_conv2d", "direct_conv2d_naive"]


def pad_input(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two trailing spatial axes of a ``(b, C, H, W)`` tensor."""
    if padding == 0:
        return x
    return np.pad(
        x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
    )


def sliding_windows(x_padded: np.ndarray, params: ConvParams) -> np.ndarray:
    """Return a strided view of all sliding windows.

    The result has shape ``(b, Cin, Hout, Wout, Hker, Wker)`` and is a *view*
    (no copy) of the padded input, following the guide's advice to prefer
    views over copies for large intermediate tensors.
    """
    b, cin, hp, wp = x_padded.shape
    hout, wout = params.out_height, params.out_width
    kh, kw = params.ker_height, params.ker_width
    s = params.stride
    sb, sc, sh, sw = x_padded.strides
    shape = (b, cin, hout, wout, kh, kw)
    strides = (sb, sc, sh * s, sw * s, sh, sw)
    return np.lib.stride_tricks.as_strided(
        x_padded, shape=shape, strides=strides, writeable=False
    )


def _check_operands(x: np.ndarray, w: np.ndarray, params: ConvParams) -> None:
    if x.shape != params.input_shape:
        raise ValueError(
            f"input shape {x.shape} does not match params {params.input_shape}"
        )
    if w.shape != params.kernel_shape:
        raise ValueError(
            f"kernel shape {w.shape} does not match params {params.kernel_shape}"
        )


def direct_conv2d(
    x: np.ndarray, w: np.ndarray, params: ConvParams, bias: np.ndarray | None = None
) -> np.ndarray:
    """Vectorised direct convolution (the numerical oracle).

    Parameters
    ----------
    x:
        Input of shape ``(batch, Cin, Hin, Win)``.
    w:
        Kernels of shape ``(Cout, Cin, Hker, Wker)``.
    params:
        Problem description; shapes must match.
    bias:
        Optional per-output-channel bias of shape ``(Cout,)``.
    """
    _check_operands(x, w, params)
    xp = pad_input(np.asarray(x), params.padding)
    windows = sliding_windows(xp, params)
    # windows: (b, Cin, Hout, Wout, Hker, Wker); kernels: (Cout, Cin, Hker, Wker)
    out = np.einsum("bchwij,ocij->bohw", windows, w, optimize=True)
    if bias is not None:
        bias = np.asarray(bias)
        if bias.shape != (params.out_channels,):
            raise ValueError(f"bias shape {bias.shape} != ({params.out_channels},)")
        out = out + bias[None, :, None, None]
    return out


def direct_conv2d_naive(
    x: np.ndarray, w: np.ndarray, params: ConvParams
) -> np.ndarray:
    """Loop-nest direct convolution following Section 2.2 literally.

    Only intended for small shapes inside tests; it is O(batch * Cout * Hout *
    Wout * Cin * Hker * Wker) Python-level work.
    """
    _check_operands(x, w, params)
    xp = pad_input(np.asarray(x, dtype=np.float64), params.padding)
    b = params.batch
    hout, wout = params.out_height, params.out_width
    out = np.zeros((b, params.out_channels, hout, wout), dtype=np.float64)
    for n in range(b):
        for co in range(params.out_channels):
            for oh in range(hout):
                for ow in range(wout):
                    acc = 0.0
                    ih0 = oh * params.stride
                    iw0 = ow * params.stride
                    for ci in range(params.in_channels):
                        for kh in range(params.ker_height):
                            for kw in range(params.ker_width):
                                acc += xp[n, ci, ih0 + kh, iw0 + kw] * w[co, ci, kh, kw]
                    out[n, co, oh, ow] = acc
    return out
