"""Exporters: JSON-lines, Prometheus-style text exposition, summary table.

All exporters are pure functions over a :class:`MetricsSnapshot` (and span
lists) — they never touch live instruments, so an export can run while the
service keeps recording.  Three formats:

* :func:`metrics_jsonl` / :func:`spans_jsonl` — one JSON object per line,
  the archival format written next to ``BENCH_*.json`` telemetry;
* :func:`prometheus_text` — text exposition a scrape endpoint can serve
  verbatim (dotted names sanitised to underscores, histogram buckets
  cumulative with ``le`` labels and a ``+Inf`` terminator);
* :func:`summary` — fixed-width human table for ``describe()``-style CLI
  output.

:func:`format_describe` is the companion for the structured-introspection
surface: ``TuningDatabase.describe()`` / ``TuningService.describe()``
return JSON-native dicts (so the future daemon serves status over the
wire), and this renders one as the classic human one-liner.
"""

from __future__ import annotations

import json
from typing import Iterable, List

from .metrics import MetricsSnapshot
from .trace import Span

__all__ = [
    "format_describe",
    "metrics_jsonl",
    "spans_jsonl",
    "prometheus_text",
    "summary",
]


def format_describe(info: object) -> str:
    """Render a ``describe()`` dict as a compact human one-liner.

    ``{"kind": "TuningDatabase", "records": 3, ...}`` becomes
    ``TuningDatabase[records=3, ...]``; nested describe dicts (a database's
    backend, a service's database) render recursively.  Pure function over
    JSON-native data — the inverse direction (parsing) is never needed,
    because the dict itself is the machine-readable form.
    """
    if not isinstance(info, dict):
        return repr(info)
    kind = info.get("kind", "describe")
    parts = []
    for key, value in info.items():
        if key == "kind":
            continue
        rendered = format_describe(value) if isinstance(value, dict) else repr(value)
        parts.append(f"{key}={rendered}")
    return f"{kind}[{', '.join(parts)}]"


def metrics_jsonl(snapshot: MetricsSnapshot) -> str:
    """One JSON line per instrument: ``{"kind": ..., "name": ..., ...}``."""
    lines = []
    for name in sorted(snapshot.counters):
        lines.append(json.dumps(
            {"kind": "counter", "name": name, "value": snapshot.counters[name]},
            sort_keys=True,
        ))
    for name in sorted(snapshot.gauges):
        lines.append(json.dumps(
            {"kind": "gauge", "name": name, "value": snapshot.gauges[name]},
            sort_keys=True,
        ))
    for name in sorted(snapshot.histograms):
        data = snapshot.histograms[name]
        lines.append(json.dumps(
            {
                "kind": "histogram",
                "name": name,
                "bounds": list(data.bounds),
                "counts": list(data.counts),
                "total": data.total,
                "sum": data.sum,
                "min": data.min,
                "max": data.max,
            },
            sort_keys=True,
        ))
    return "\n".join(lines) + ("\n" if lines else "")


def spans_jsonl(spans: Iterable[Span]) -> str:
    lines = [json.dumps(span.to_wire(), sort_keys=True) for span in spans]
    return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(name: str) -> str:
    """Prometheus metric names allow [a-zA-Z0-9_:]; dots become underscores."""
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch in "_:") else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_float(value: float) -> str:
    """Render floats the way Prometheus text format expects (no exponents
    needed for our ranges; integers without trailing .0 noise)."""
    if value == int(value):
        return str(int(value))
    return repr(value)


def prometheus_text(snapshot: MetricsSnapshot) -> str:
    """Text exposition format: TYPE comments, cumulative histogram buckets."""
    out: List[str] = []
    for name in sorted(snapshot.counters):
        prom = _prom_name(name)
        out.append(f"# TYPE {prom} counter")
        out.append(f"{prom} {snapshot.counters[name]}")
    for name in sorted(snapshot.gauges):
        prom = _prom_name(name)
        out.append(f"# TYPE {prom} gauge")
        out.append(f"{prom} {_prom_float(snapshot.gauges[name])}")
    for name in sorted(snapshot.histograms):
        data = snapshot.histograms[name]
        prom = _prom_name(name)
        out.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, count in zip(data.bounds, data.counts):
            cumulative += count
            out.append(f'{prom}_bucket{{le="{_prom_float(bound)}"}} {cumulative}')
        out.append(f'{prom}_bucket{{le="+Inf"}} {data.total}')
        out.append(f"{prom}_sum {_prom_float(data.sum)}")
        out.append(f"{prom}_count {data.total}")
    return "\n".join(out) + ("\n" if out else "")


def summary(snapshot: MetricsSnapshot) -> str:
    """Fixed-width human table: name, kind, and the interesting numbers."""
    rows: List[tuple] = []
    for name in sorted(snapshot.counters):
        rows.append((name, "counter", str(snapshot.counters[name])))
    for name in sorted(snapshot.gauges):
        rows.append((name, "gauge", _prom_float(snapshot.gauges[name])))
    for name in sorted(snapshot.histograms):
        data = snapshot.histograms[name]
        detail = (
            f"n={data.total} mean={data.mean():.4g}"
            + (f" min={data.min:.4g} max={data.max:.4g}" if data.total else "")
        )
        rows.append((name, "histogram", detail))
    if not rows:
        return "(no metrics recorded)\n"
    name_w = max(len(r[0]) for r in rows)
    kind_w = max(len(r[1]) for r in rows)
    lines = [f"{name.ljust(name_w)}  {kind.ljust(kind_w)}  {detail}" for name, kind, detail in rows]
    return "\n".join(lines) + "\n"
