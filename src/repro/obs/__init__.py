"""Deterministic observability: metrics, spans, exporters, injected clocks.

Entry point is :class:`Observability`, a bundle of one metrics registry, one
span tracer and one clock:

    obs = Observability(enabled=True, clock=MonotonicClock())
    service = TuningService(database=db, obs=obs)
    ...
    print(summary(obs.registry.snapshot()))

The **disabled path is a true no-op**: ``Observability(enabled=False)`` and
the module-level :data:`NULL_OBS` hand out shared null instruments (null
registry, null tracer, null clock) whose methods do nothing and allocate
nothing, so instrumented hot paths cost one attribute load + one no-op call.

The **clock-injection contract** (REPRO601/REPRO701): instrumented code
never reads ``time.*`` directly — it calls ``obs.clock.now()``.  Code inside
``src/repro/core/``/``src/repro/gpusim/`` is only ever handed the null clock
or instruments bound to a registry, so determinism there is preserved by
construction; real clocks live at the edges (drivers, benchmarks, pools).

Observability never touches session RNG or database state: instruments are
write-only from the instrumented code's point of view, and nothing in this
package feeds values back into tuning decisions.  Bit-identity of tuning
trajectories with observability enabled vs. disabled is enforced by
``tests/test_observability.py``.
"""

from .clock import NULL_CLOCK, Clock, FakeClock, MonotonicClock, NullClock, WallClock
from .export import (
    format_describe,
    metrics_jsonl,
    prometheus_text,
    spans_jsonl,
    summary,
)
from .metrics import (
    BATCH_SIZE_BOUNDS,
    FILL_RATIO_BOUNDS,
    GROUP_COUNT_BOUNDS,
    LATENCY_BOUNDS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
    Scope,
)
from .trace import NULL_TRACER, NullTracer, Span, SpanTracer

__all__ = [
    "BATCH_SIZE_BOUNDS",
    "FILL_RATIO_BOUNDS",
    "GROUP_COUNT_BOUNDS",
    "LATENCY_BOUNDS",
    "Clock",
    "Counter",
    "FakeClock",
    "Gauge",
    "format_describe",
    "Histogram",
    "HistogramData",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MonotonicClock",
    "NullClock",
    "NullTracer",
    "Observability",
    "Scope",
    "Span",
    "SpanTracer",
    "WallClock",
    "NULL_CLOCK",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "metrics_jsonl",
    "prometheus_text",
    "spans_jsonl",
    "summary",
]


class Observability:
    """One registry + one tracer + one clock, enabled or null.

    * ``enabled=True`` builds a live :class:`MetricsRegistry` and a
      :class:`SpanTracer` on the given clock (default: :data:`NULL_CLOCK`,
      so even enabled observability is deterministic unless the caller
      explicitly injects a real clock at the edge).
    * ``enabled=False`` reuses the shared null registry/tracer/clock —
      constructing a disabled ``Observability`` allocates only the wrapper.

    Instances hold locks and deques and are deliberately **not picklable**;
    cross-process telemetry ships :meth:`MetricsRegistry.snapshot` wire
    dicts instead (see ``TuningWorkerPool``).
    """

    __slots__ = ("enabled", "clock", "registry", "tracer")

    def __init__(
        self,
        enabled: bool = True,
        clock: Clock = None,
        span_capacity: int = 1024,
    ) -> None:
        self.enabled = bool(enabled)
        if self.enabled:
            self.clock = clock if clock is not None else NULL_CLOCK
            self.registry = MetricsRegistry()
            self.tracer = SpanTracer(clock=self.clock, capacity=span_capacity)
        else:
            self.clock = NULL_CLOCK
            self.registry = NULL_REGISTRY
            self.tracer = NULL_TRACER

    def scope(self, prefix: str) -> Scope:
        return self.registry.scope(prefix)

    def snapshot(self) -> MetricsSnapshot:
        return self.registry.snapshot()


#: shared disabled instance — the default ``obs`` everywhere.
NULL_OBS = Observability(enabled=False)
