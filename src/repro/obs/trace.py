"""Span tracing with parent links, attributes and bounded retention.

A :class:`SpanTracer` records named regions of execution against whatever
:class:`~repro.obs.clock.Clock` it was constructed with — a real monotonic
clock in drivers and benchmarks, a :class:`~repro.obs.clock.FakeClock` in
tests (exact duration assertions), and the null clock on the disabled path
(all timestamps 0.0, nothing retained).

Retention is a fixed-capacity ring buffer: a long-lived service keeps the
most recent ``capacity`` finished spans and silently drops the oldest, so
tracing can stay on for days without growing memory.  The ``dropped``
counter records how many spans aged out.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .clock import NULL_CLOCK, Clock

__all__ = ["Span", "SpanTracer", "NullTracer", "NULL_TRACER"]


@dataclass
class Span:
    """One finished (or in-flight) traced region."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    end: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_wire(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }


class SpanTracer:
    """Records spans into a bounded ring buffer.

    Parent links come from a per-thread stack of open spans: a span started
    while another is open on the same thread becomes its child.  Cross-thread
    parentage is intentionally not inferred — each thread traces its own
    call tree.
    """

    def __init__(self, clock: Optional[Clock] = None, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError(f"tracer capacity must be positive, got {capacity}")
        self.clock = clock if clock is not None else NULL_CLOCK
        self.capacity = capacity
        self._lock = threading.Lock()
        self._finished: deque = deque(maxlen=capacity)
        self._dropped = 0
        self._ids = itertools.count(1)
        self._stacks = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "open", None)
        if stack is None:
            stack = self._stacks.open = []
        return stack

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        with self._lock:
            span_id = next(self._ids)
        record = Span(
            name=name,
            span_id=span_id,
            parent_id=parent,
            start=self.clock.now(),
            attrs=dict(attrs),
        )
        stack.append(record)
        try:
            yield record
        finally:
            stack.pop()
            record.end = self.clock.now()
            with self._lock:
                if len(self._finished) == self.capacity:
                    self._dropped += 1
                self._finished.append(record)

    def finished(self) -> List[Span]:
        with self._lock:
            return list(self._finished)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped


class _NoopSpanContext:
    """Reusable context manager handed out by :class:`NullTracer`.

    One shared instance serves every ``with tracer.span(...)`` on the
    disabled path — entering and exiting allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP_SPAN = _NoopSpanContext()


class NullTracer(SpanTracer):
    """Tracer for the disabled path: ``span()`` is a constant no-op."""

    def __init__(self) -> None:
        super().__init__(clock=NULL_CLOCK, capacity=1)

    def span(self, name: str, **attrs: object) -> _NoopSpanContext:  # type: ignore[override]
        return _NOOP_SPAN

    def finished(self) -> List[Span]:
        return []


NULL_TRACER = NullTracer()
