"""Thread-safe metrics: counters, gauges, histograms, registry, snapshots.

Design constraints (see ROADMAP.md, "Observability layer"):

* **dependency-free** — stdlib only, importable everywhere including worker
  processes spawned with the ``spawn`` start method;
* **thread-safe per instrument** — each instrument carries its own small
  lock; the registry lock is only taken for get-or-create and snapshots, so
  hot-path increments never contend on a global lock;
* **snapshot/merge is the wire format** — a :class:`MetricsSnapshot` is a
  plain picklable/JSON-able value object; worker shards ship snapshots back
  in their result stream and the parent merges them into one fleet view.
  Merge is associative and commutative (counters add, gauges keep the max,
  histograms add element-wise), so merge order across shards cannot change
  the fleet totals;
* **null instruments are free** — :data:`NULL_COUNTER` & friends are shared
  module-level singletons whose methods do nothing; code paths instrumented
  against them allocate nothing and branch once.

Instrument names use dotted lowercase (``service.requests``,
``pool.stream.records``); exporters that need Prometheus-legal names
sanitise dots to underscores at export time, never at recording time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramData",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Scope",
    "BATCH_SIZE_BOUNDS",
    "FILL_RATIO_BOUNDS",
    "GROUP_COUNT_BOUNDS",
    "LATENCY_BOUNDS",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_REGISTRY",
]

# Canonical bucket boundaries shared by every layer that records the same
# quantity.  Snapshot merge requires identical bounds per histogram name, so
# instrumented code must take these constants instead of inventing its own —
# a worker shard and the parent disagreeing on bounds would make the fleet
# merge raise.
#: configurations per executor/measurer batch (powers of two, tuner-sized).
BATCH_SIZE_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)
#: slices packed into one shared executor call.
GROUP_COUNT_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
#: packing benefit: configs in a packed call / largest single slice (>= 1).
FILL_RATIO_BOUNDS = (1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0)
#: seconds, log-spaced from microseconds to a second (policy picks, rounds).
LATENCY_BOUNDS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)


class Counter:
    """Monotonically increasing count. ``inc`` never accepts negatives."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Last-written level (queue depth, worker count). Merge keeps the max.

    ``max`` is the merge operator because it is the only associative,
    commutative choice that stays meaningful for point-in-time levels
    aggregated across shards: "deepest sync queue any shard ever saw".
    """

    __slots__ = ("name", "_lock", "_value", "_high_water")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0
        self._high_water = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            if value > self._high_water:
                self._high_water = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def high_water(self) -> float:
        with self._lock:
            return self._high_water


@dataclass
class HistogramData:
    """Picklable histogram payload: bounds + per-bucket counts + aggregates.

    ``counts`` has ``len(bounds) + 1`` entries: ``counts[i]`` holds values
    ``v <= bounds[i]`` (first bucket they fit), ``counts[-1]`` is overflow.
    """

    bounds: Tuple[float, ...]
    counts: List[int]
    total: int = 0
    sum: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def merged(self, other: "HistogramData") -> "HistogramData":
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        lo = min((m for m in (self.min, other.min) if m is not None), default=None)
        hi = max((m for m in (self.max, other.max) if m is not None), default=None)
        return HistogramData(
            bounds=self.bounds,
            counts=[a + b for a, b in zip(self.counts, other.counts)],
            total=self.total + other.total,
            sum=self.sum + other.sum,
            min=lo,
            max=hi,
        )

    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0


class Histogram:
    """Fixed-boundary histogram. Bounds are set at creation and immutable.

    Bucketing: a value lands in the first bucket whose upper bound is
    ``>= value``; values above the last bound land in the overflow bucket.
    """

    __slots__ = ("name", "bounds", "_lock", "_counts", "_total", "_sum", "_min", "_max")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError(f"histogram {name!r}: empty bounds")
        ordered = tuple(float(b) for b in bounds)
        if any(a >= b for a, b in zip(ordered, ordered[1:])):
            raise ValueError(f"histogram {name!r}: bounds must be strictly increasing: {ordered}")
        self.name = name
        self.bounds = ordered
        self._lock = threading.Lock()
        self._counts = [0] * (len(ordered) + 1)
        self._total = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            idx = len(self.bounds)  # overflow unless a bound admits it
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    idx = i
                    break
            self._counts[idx] += 1
            self._total += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def data(self) -> HistogramData:
        with self._lock:
            return HistogramData(
                bounds=self.bounds,
                counts=list(self._counts),
                total=self._total,
                sum=self._sum,
                min=self._min,
                max=self._max,
            )


class _NullCounter(Counter):
    """Shared do-nothing counter; ``inc`` is a constant-time no-op."""

    def __init__(self) -> None:
        super().__init__("null")

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    def __init__(self) -> None:
        super().__init__("null")

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    def __init__(self) -> None:
        super().__init__("null", (1.0,))

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


@dataclass
class MetricsSnapshot:
    """Immutable-by-convention point-in-time copy of a registry.

    Plain dict/list/tuple payload: picklable for multiprocessing queues and
    JSON-able (via :meth:`to_wire`) for telemetry files.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramData] = field(default_factory=dict)

    def merged(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = max(gauges.get(name, value), value)
        histograms = dict(self.histograms)
        for name, data in other.histograms.items():
            histograms[name] = histograms[name].merged(data) if name in histograms else data
        return MetricsSnapshot(counters=counters, gauges=gauges, histograms=histograms)

    def to_wire(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {
                    "bounds": list(data.bounds),
                    "counts": list(data.counts),
                    "total": data.total,
                    "sum": data.sum,
                    "min": data.min,
                    "max": data.max,
                }
                for name, data in self.histograms.items()
            },
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "MetricsSnapshot":
        histograms = {
            name: HistogramData(
                bounds=tuple(raw["bounds"]),
                counts=list(raw["counts"]),
                total=raw["total"],
                sum=raw["sum"],
                min=raw["min"],
                max=raw["max"],
            )
            for name, raw in wire.get("histograms", {}).items()
        }
        return cls(
            counters=dict(wire.get("counters", {})),
            gauges=dict(wire.get("gauges", {})),
            histograms=histograms,
        )


class MetricsRegistry:
    """Get-or-create instrument store with locked snapshots.

    The registry lock guards only the name->instrument maps; increments go
    through per-instrument locks, so snapshotting never blocks recording for
    longer than one instrument copy.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                self._check_free(name, self._counters)
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                self._check_free(name, self._gauges)
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                self._check_free(name, self._histograms)
                inst = self._histograms[name] = Histogram(name, bounds)
            elif inst.bounds != tuple(float(b) for b in bounds):
                raise ValueError(
                    f"histogram {name!r} already registered with bounds "
                    f"{inst.bounds}, requested {tuple(bounds)}"
                )
            return inst

    def _check_free(self, name, own_map):
        """Reject one name registered as two instrument types (lock held)."""
        for other in (self._counters, self._gauges, self._histograms):
            if other is not own_map and name in other:
                raise ValueError(f"metric name {name!r} already registered as another type")

    def scope(self, prefix: str) -> "Scope":
        return Scope(self, prefix)

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return MetricsSnapshot(
            counters={c.name: c.value for c in counters},
            gauges={g.name: g.high_water for g in gauges},
            histograms={h.name: h.data() for h in histograms},
        )


class Scope:
    """Name-prefixing view over a registry: ``scope('db').counter('hits')``
    registers ``db.hits``. Scopes nest (``scope('a').scope('b')`` -> ``a.b.``)."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix.rstrip(".")

    def _name(self, name: str) -> str:
        return f"{self._prefix}.{name}" if self._prefix else name

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._name(name))

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(self._name(name))

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        return self._registry.histogram(self._name(name), bounds)

    def scope(self, prefix: str) -> "Scope":
        return Scope(self._registry, self._name(prefix))


class _NullRegistry(MetricsRegistry):
    """Registry whose instruments are the shared null singletons.

    Every ``counter``/``gauge``/``histogram`` call returns the same null
    instrument — nothing is stored, nothing allocates after import, and
    ``snapshot()`` is always empty.
    """

    def counter(self, name: str) -> Counter:
        return NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return NULL_GAUGE

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        return NULL_HISTOGRAM

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot()


NULL_REGISTRY = _NullRegistry()
