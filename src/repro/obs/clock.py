"""Injected clocks: the only module in the repository that reads ``time.*``.

Everything the observability layer timestamps — span durations, policy pick
latency, exporter event times — flows through a :class:`Clock` instance that
the *caller* injects, never through a direct ``time.monotonic()`` call at the
point of measurement.  That indirection is what lets instrumented code obey
the repository's determinism contracts:

* **core stays deterministic** — instrumented code in ``src/repro/core/`` and
  ``src/repro/gpusim/`` runs with :data:`NULL_CLOCK` (reads return ``0.0``,
  durations collapse to zero), so REPRO601 keeps holding: no wall-clock value
  can influence a trajectory, because no wall-clock value exists there;
* **tests are reproducible** — :class:`FakeClock` advances only when a test
  says so, making span durations and rate computations exact assertions
  instead of sleeps and tolerances;
* **the edges read real time** — drivers, benchmarks and exporters construct
  a :class:`MonotonicClock` (or :class:`WallClock` for absolute timestamps)
  exactly once, at the boundary of the system.

The generalised repo-wide rule is reprolint **REPRO701**: a direct
``time.time``/``time.monotonic``/``time.perf_counter``/``datetime.now`` read
anywhere outside *this file* is a lint failure — if code needs a clock, it
must accept one.
"""

from __future__ import annotations

import time

__all__ = [
    "Clock",
    "FakeClock",
    "MonotonicClock",
    "NullClock",
    "WallClock",
    "NULL_CLOCK",
]


class Clock:
    """Minimal clock interface: :meth:`now` returns seconds as a float.

    What the value means (monotonic offset, epoch time, fake ticks) is the
    implementation's business; consumers only ever subtract two reads from
    the *same* clock or attach a read as an opaque timestamp.
    """

    def now(self) -> float:
        raise NotImplementedError


class MonotonicClock(Clock):
    """High-resolution monotonic clock for measuring durations.

    Backed by ``time.perf_counter`` — the same source every benchmark in
    ``benchmarks/`` uses, so service span durations and benchmark wall-clock
    numbers are directly comparable.
    """

    def now(self) -> float:
        return time.perf_counter()


class WallClock(Clock):
    """Absolute epoch-seconds clock for exporter event timestamps."""

    def now(self) -> float:
        return time.time()


class NullClock(Clock):
    """The no-op clock: every read returns ``0.0``.

    The disabled-observability path and all core-resident instrumentation
    run on this clock — durations become exactly ``0.0``, nothing allocates,
    and no timing value can leak into deterministic code.
    """

    def now(self) -> float:
        return 0.0


class FakeClock(Clock):
    """Manually advanced clock for deterministic tests.

    ``FakeClock(start)`` reads ``start`` until :meth:`advance` moves it; test
    code controls exactly how much "time" every measured region took.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("FakeClock only moves forward (monotonic contract)")
        self._now += float(seconds)


#: shared no-op clock instance (clocks are stateless except FakeClock).
NULL_CLOCK = NullClock()
