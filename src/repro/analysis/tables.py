"""Plain-text table rendering for the benchmark harness.

The benchmarks print the same rows the paper's tables/figures report; this
module turns :class:`~repro.analysis.records.ResultTable` instances (or raw
row dictionaries) into aligned monospace tables so ``pytest -s`` and the
example scripts produce readable output without any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from .records import ResultTable

__all__ = ["format_value", "render_rows", "render_table"]


def format_value(value: object, precision: int = 3) -> str:
    """Human-friendly formatting of one cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def render_rows(
    columns: Sequence[str],
    rows: Iterable[Mapping[str, object]],
    precision: int = 3,
) -> str:
    """Render rows as an aligned monospace table with a header."""
    rendered = [[format_value(r.get(c, ""), precision) for c in columns] for r in rows]
    widths = [len(c) for c in columns]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines = [header, sep]
    for row in rendered:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_table(table: ResultTable, precision: int = 3) -> str:
    """Render a :class:`ResultTable` including its title."""
    body = render_rows(table.columns, table.rows, precision=precision)
    underline = "=" * min(len(table.title), 79)
    return f"{table.title}\n{underline}\n{body}"
