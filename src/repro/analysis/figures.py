"""Text rendering of figure data (ASCII line/bar summaries).

The benchmark harness regenerates the paper's figures as data series; since
no plotting library is available offline, this module renders them as compact
ASCII summaries: one row per series with its final value and a sparkline-like
bar so trends remain visible in terminal output and in the captured
``bench_output.txt``.
"""

from __future__ import annotations

from typing import List, Sequence

from .records import FigureData, Series

__all__ = ["sparkline", "render_series", "render_figure"]

_BARS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Render a sequence of values as a fixed-width character sparkline."""
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        # Downsample by taking the max of each bucket (keeps peaks visible).
        bucket = len(values) / width
        values = [
            max(values[int(i * bucket): max(int(i * bucket) + 1, int((i + 1) * bucket))])
            for i in range(width)
        ]
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _BARS[len(_BARS) // 2] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / (hi - lo) * (len(_BARS) - 1))
        out.append(_BARS[idx])
    return "".join(out)


def render_series(series: Series, width: int = 40) -> str:
    if not series.y:
        return f"{series.name}: (empty)"
    return (
        f"{series.name:>28s} | {sparkline(series.y, width)} | "
        f"final={series.final():.4g}"
    )


def render_figure(figure: FigureData, width: int = 40) -> str:
    lines: List[str] = [figure.title, "=" * min(len(figure.title), 79)]
    lines.append(f"x: {figure.xlabel}    y: {figure.ylabel}")
    for s in figure.series:
        lines.append(render_series(s, width=width))
    return "\n".join(lines)
