"""Lightweight result records shared by the benchmark harness.

Benchmarks produce rows (dictionaries) and series (x/y sequences); this
module gives them a tiny, dependency-free structure so every harness prints
its table or figure the same way and the tests can assert on the shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Sequence

__all__ = ["ResultTable", "Series", "FigureData"]


@dataclass
class ResultTable:
    """An ordered collection of homogeneous result rows."""

    title: str
    columns: Sequence[str]
    rows: List[Mapping[str, object]] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"row is missing columns {missing}")
        self.rows.append(dict(values))

    def column(self, name: str) -> List[object]:
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row[name] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class Series:
    """One named line of a figure: parallel x and y sequences."""

    name: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def append(self, x: float, y: float) -> None:
        self.x.append(float(x))
        self.y.append(float(y))

    def __len__(self) -> int:
        return len(self.x)

    def final(self) -> float:
        if not self.y:
            raise ValueError(f"series {self.name!r} is empty")
        return self.y[-1]


@dataclass
class FigureData:
    """A figure: a title, axis labels and a list of series."""

    title: str
    xlabel: str
    ylabel: str
    series: List[Series] = field(default_factory=list)

    def add_series(self, series: Series) -> None:
        self.series.append(series)

    def get(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"figure {self.title!r} has no series {name!r}")
