"""Reporting helpers used by the benchmark harness and examples."""

from .records import FigureData, ResultTable, Series
from .tables import format_value, render_rows, render_table
from .figures import render_figure, render_series, sparkline

__all__ = [
    "FigureData",
    "ResultTable",
    "Series",
    "format_value",
    "render_rows",
    "render_table",
    "render_figure",
    "render_series",
    "sparkline",
]
