"""Convolution-layer specifications for end-to-end CNN experiments.

The paper's Figure 12 measures whole-model inference time of SqueezeNet,
VGG-19, ResNet-18/34 and Inception-v3, and Table 2 tunes individual AlexNet
layers.  We only need the *convolution* layers (the paper's speedups come
entirely from them), so a model is represented as an ordered list of
:class:`ConvLayer` records, each of which can be converted to a
:class:`~repro.conv.tensor.ConvParams`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..conv.tensor import ConvParams

__all__ = ["ConvLayer", "ConvNet"]


@dataclass(frozen=True)
class ConvLayer:
    """One convolution layer of a CNN."""

    name: str
    in_channels: int
    in_size: int  # square spatial extent of the input feature map
    out_channels: int
    kernel: int
    stride: int = 1
    padding: int = 0
    repeat: int = 1  # how many times this exact layer shape occurs in the model

    def __post_init__(self) -> None:
        for attr in ("in_channels", "in_size", "out_channels", "kernel", "stride", "repeat"):
            v = getattr(self, attr)
            if not isinstance(v, int) or v <= 0:
                raise ValueError(f"{attr} must be a positive integer, got {v!r}")
        if self.padding < 0:
            raise ValueError("padding must be non-negative")

    def params(self, batch: int = 1) -> ConvParams:
        return ConvParams.square(
            size=self.in_size,
            in_channels=self.in_channels,
            out_channels=self.out_channels,
            kernel=self.kernel,
            stride=self.stride,
            padding=self.padding,
            batch=batch,
        )

    @property
    def out_size(self) -> int:
        return self.params().out_height

    @property
    def macs(self) -> int:
        return self.repeat * self.params().macs

    def describe(self) -> str:
        return (
            f"{self.name}: {self.in_channels}x{self.in_size}x{self.in_size} -> "
            f"{self.out_channels}, k={self.kernel}, s={self.stride}, p={self.padding}"
            + (f" (x{self.repeat})" if self.repeat > 1 else "")
        )


@dataclass(frozen=True)
class ConvNet:
    """An ordered collection of convolution layers forming one CNN."""

    name: str
    layers: Tuple[ConvLayer, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("a ConvNet needs at least one layer")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise ValueError("layer names must be unique within a model")

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def num_conv_instances(self) -> int:
        return sum(layer.repeat for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    def layer(self, name: str) -> ConvLayer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"model {self.name!r} has no layer {name!r}")

    def params_list(self, batch: int = 1) -> List[Tuple[ConvLayer, ConvParams]]:
        return [(layer, layer.params(batch=batch)) for layer in self.layers]

    def describe(self) -> str:
        lines = [f"{self.name}: {self.num_conv_instances} conv layers, "
                 f"{self.total_macs / 1e9:.2f} GMACs"]
        lines.extend("  " + layer.describe() for layer in self.layers)
        return "\n".join(lines)
