"""CNN model zoo: convolution-layer specifications and end-to-end timing."""

from .layers import ConvLayer, ConvNet
from .zoo import (
    MODEL_ZOO,
    alexnet,
    get_model,
    inception_v3,
    resnet18,
    resnet34,
    squeezenet,
    vgg19,
)
from .runner import LayerTiming, ModelRunner, ModelTiming

__all__ = [
    "ConvLayer",
    "ConvNet",
    "MODEL_ZOO",
    "alexnet",
    "get_model",
    "inception_v3",
    "resnet18",
    "resnet34",
    "squeezenet",
    "vgg19",
    "LayerTiming",
    "ModelRunner",
    "ModelTiming",
]
