"""End-to-end inference-time estimation (Figure 12).

For every convolution layer of a model the runner obtains

* the cuDNN baseline time (library dispatcher on the simulated GPU), and
* the time of the paper's tuned dataflow — either by running the auto-tuning
  engine per layer (slow, faithful) or by using the analytically optimal tile
  of Section 5 directly (fast; the default for the benchmark harness).

Total model time is the sum over convolution layers (weighted by each
layer's repeat count), which matches the paper's claim that convolutions
dominate CNN inference.

Two whole-network optimisations keep the runner fast:

* analytic mode lowers every (layer, algorithm) candidate of a model into one
  profile list and executes it through the batched
  :meth:`~repro.gpusim.executor.GPUExecutor.run_batch` pipeline;
* tuned mode submits every (layer, algorithm) candidate of a model to a
  :class:`~repro.service.TuningService` sharing the runner's
  :class:`~repro.core.autotune.database.TuningDatabase`: identical layers
  coalesce onto one tuning run (ResNet-style networks repeat convolution
  shapes many times), layers already tuned by earlier models/runs are served
  from the database, and the concurrently tuning layers' measurement batches
  are packed into shared executor calls.

Both tuned paths accept any registered search tuner (``runner =
ModelRunner(spec, mode="tuned", tuner="sa_tempering")``), and
:meth:`ModelRunner.compare_tuners` times one model under several tuners at
once — every (layer, algorithm, tuner) candidate goes through a single
service submit/drain, so heterogeneous search algorithms share scheduling
rounds and packed measurement batches exactly like production traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Optional, Sequence, Tuple

from ..conv.tensor import ConvParams
from ..core.autotune.database import TuningDatabase
from ..core.dataflow.optimality import optimal_tile_direct, optimal_tile_winograd
from ..gpusim.cudnn import CudnnLibrary
from ..gpusim.executor import GPUExecutor
from ..gpusim.kernels import (
    KernelProfile,
    direct_dataflow_profile,
    winograd_dataflow_profile,
)
from ..gpusim.spec import GPUSpec
from ..service import TUNERS, TuningRequest, TuningService
from .layers import ConvLayer, ConvNet

__all__ = ["LayerTiming", "ModelTiming", "ModelRunner"]


@dataclass(frozen=True)
class LayerTiming:
    """Per-layer result of the end-to-end comparison."""

    layer: ConvLayer
    algorithm: str
    ours_seconds: float
    cudnn_seconds: float

    @property
    def speedup(self) -> float:
        if self.ours_seconds <= 0:
            return float("inf")
        return self.cudnn_seconds / self.ours_seconds


@dataclass
class ModelTiming:
    """Whole-model timing summary."""

    model: str
    gpu: str
    layers: List[LayerTiming]

    @property
    def ours_seconds(self) -> float:
        return sum(t.ours_seconds * t.layer.repeat for t in self.layers)

    @property
    def cudnn_seconds(self) -> float:
        return sum(t.cudnn_seconds * t.layer.repeat for t in self.layers)

    @property
    def speedup(self) -> float:
        if self.ours_seconds <= 0:
            return float("inf")
        return self.cudnn_seconds / self.ours_seconds

    def describe(self) -> str:
        return (
            f"{self.model} on {self.gpu}: ours {self.ours_seconds * 1e3:.2f} ms, "
            f"cuDNN {self.cudnn_seconds * 1e3:.2f} ms, speedup {self.speedup:.2f}x"
        )


class ModelRunner:
    """Estimate end-to-end convolution time of a CNN on one simulated GPU."""

    def __init__(
        self,
        spec: GPUSpec,
        mode: Literal["analytic", "tuned"] = "analytic",
        batch: int = 1,
        max_measurements: int = 96,
        seed: int = 0,
        database: Optional[TuningDatabase] = None,
        tuner: str = "ate",
    ) -> None:
        if mode not in ("analytic", "tuned"):
            raise ValueError("mode must be 'analytic' or 'tuned'")
        if tuner not in TUNERS:
            raise ValueError(f"unknown tuner {tuner!r}; expected one of {TUNERS}")
        self.spec = spec
        self.mode = mode
        self.batch = batch
        self.max_measurements = max_measurements
        self.seed = seed
        #: search algorithm tuned mode runs per layer (any entry of TUNERS).
        self.tuner = tuner
        self.library = CudnnLibrary(spec)
        self.executor = GPUExecutor(spec)
        #: shared across every layer/model this runner times; pass one in to
        #: persist records across runners or processes (JSON save/load).
        self.database = database if database is not None else TuningDatabase()

    # ------------------------------------------------------------------ #
    def _choose_algorithm(self, params: ConvParams) -> str:
        """Prefer Winograd for stride-1 3x3 layers with enough channels."""
        if (
            params.winograd_compatible()
            and params.ker_height == 3
            and params.in_channels >= 16
        ):
            return "winograd"
        return "direct"

    def _candidate_algorithms(self, params: ConvParams) -> List[str]:
        """Every applicable template, the way the auto-tuner's template
        manager would pick between schedules."""
        candidates = ["direct"]
        if self._choose_algorithm(params) == "winograd":
            candidates.append("winograd")
        return candidates

    def _analytic_profile(self, params: ConvParams, algorithm: str) -> KernelProfile:
        per_block = self.spec.shared_mem_per_sm // self.spec.dtype_size // 2
        if algorithm == "winograd":
            tile = optimal_tile_winograd(params, per_block, e=2)
            return winograd_dataflow_profile(
                params, tile, e=2, dtype_size=self.spec.dtype_size
            )
        tile = optimal_tile_direct(params, per_block)
        return direct_dataflow_profile(params, tile, dtype_size=self.spec.dtype_size)

    def _ours_analytic(self, params: ConvParams, algorithm: str) -> float:
        return self.executor.run(self._analytic_profile(params, algorithm)).time_seconds

    def _tuning_request(
        self,
        params: ConvParams,
        algorithm: str,
        tuner: Optional[str] = None,
        pruned: Optional[bool] = None,
    ) -> TuningRequest:
        """The service request a (layer, algorithm) candidate submits.

        By default everything tunes the pruned Table-1 domain except
        ``tvm_style``, which searches the unpruned space by definition (and
        therefore bypasses the shared database).
        """
        tuner = self.tuner if tuner is None else tuner
        if pruned is None:
            pruned = tuner != "tvm_style"
        return TuningRequest(
            params,
            self.spec,
            algorithm=algorithm,
            max_measurements=self.max_measurements,
            seed=self.seed,
            tuner=tuner,
            pruned=pruned,
        )

    def _time_layers_tuned(self, layers: Sequence[ConvLayer]) -> List[LayerTiming]:
        """Tuned timing of many layers through one tuning service.

        All (layer, algorithm) candidates are submitted up front and drained
        together: repeated shapes coalesce to one run, previously tuned
        shapes are served from the shared database, and the remaining runs'
        measurement batches are packed into shared executor calls.  Results
        (and the database's hit/miss accounting) are identical to tuning the
        layers one at a time against the same database.
        """
        service = TuningService(database=self.database)
        entries: List[Tuple[int, str]] = []  # (layer index, algorithm)
        futures = []
        all_params = [layer.params(batch=self.batch) for layer in layers]
        for li, params in enumerate(all_params):
            for algorithm in self._candidate_algorithms(params):
                entries.append((li, algorithm))
                futures.append(service.submit(self._tuning_request(params, algorithm)))
        service.drain()

        per_layer: Dict[int, Dict[str, float]] = {}
        for (li, algorithm), future in zip(entries, futures):
            per_layer.setdefault(li, {})[algorithm] = future.result().best_time
        return [
            self._best_timing(layer, all_params[li], per_layer[li])
            for li, layer in enumerate(layers)
        ]

    def _best_timing(
        self, layer: ConvLayer, params: ConvParams, timings: Dict[str, float]
    ) -> LayerTiming:
        """Pick the fastest candidate template and pair it with the cuDNN
        baseline (shared by the per-layer and the whole-model paths)."""
        algorithm = min(timings, key=timings.get)
        return LayerTiming(
            layer=layer,
            algorithm=algorithm,
            ours_seconds=timings[algorithm],
            cudnn_seconds=self.library.run_best(params).time_seconds,
        )

    def time_layer(self, layer: ConvLayer) -> LayerTiming:
        if self.mode == "tuned":
            # The whole-model path on a one-layer list: both algorithm
            # candidates tune concurrently through one service (packed
            # batches, shared-database semantics) instead of sequentially.
            return self._time_layers_tuned([layer])[0]
        params = layer.params(batch=self.batch)
        timings = {
            algorithm: self._ours_analytic(params, algorithm)
            for algorithm in self._candidate_algorithms(params)
        }
        return self._best_timing(layer, params, timings)

    def _time_layers_analytic(self, layers: Sequence[ConvLayer]) -> List[LayerTiming]:
        """Analytic timing of many layers with one batched executor call."""
        entries: List[Tuple[int, str]] = []  # (layer index, algorithm)
        profiles: List[KernelProfile] = []
        all_params = [layer.params(batch=self.batch) for layer in layers]
        for li, params in enumerate(all_params):
            for algorithm in self._candidate_algorithms(params):
                entries.append((li, algorithm))
                profiles.append(self._analytic_profile(params, algorithm))
        executions = self.executor.run_batch(profiles)

        per_layer: Dict[int, Dict[str, float]] = {}
        for (li, algorithm), execution in zip(entries, executions):
            per_layer.setdefault(li, {})[algorithm] = execution.time_seconds
        return [
            self._best_timing(layer, all_params[li], per_layer[li])
            for li, layer in enumerate(layers)
        ]

    def time_model(self, model: ConvNet) -> ModelTiming:
        if self.mode == "analytic":
            timings = self._time_layers_analytic(model.layers)
        else:
            timings = self._time_layers_tuned(model.layers)
        return ModelTiming(model=model.name, gpu=self.spec.name, layers=timings)

    # ------------------------------------------------------------------ #
    def compare_tuners(
        self,
        model: ConvNet,
        tuners: Sequence[str] = ("ate", "random", "sa_tempering", "genetic"),
    ) -> Dict[str, ModelTiming]:
        """Whole-model tuned timing under several search algorithms at once.

        The Figure-11 baseline comparison, at model scale and through the
        production path: every (layer, algorithm, tuner) candidate is
        submitted to *one* :class:`~repro.service.TuningService` and drained
        together, so heterogeneous sessions share scheduling rounds and
        packed measurement batches, and repeated shapes coalesce per tuner.
        The ATE tunes its pruned Table-1 domain (database-backed, like tuned
        mode); every baseline searches the unpruned space, exactly as the
        paper runs them — so baseline legs never serve from or store to the
        shared database and always measure a fresh trajectory.
        """
        unknown = [t for t in tuners if t not in TUNERS]
        if unknown:
            raise ValueError(f"unknown tuners {unknown!r}; expected entries of {TUNERS}")
        service = TuningService(database=self.database)
        all_params = [layer.params(batch=self.batch) for layer in model.layers]
        entries: List[Tuple[str, int, str]] = []  # (tuner, layer index, algorithm)
        futures = []
        for tuner in tuners:
            for li, params in enumerate(all_params):
                for algorithm in self._candidate_algorithms(params):
                    entries.append((tuner, li, algorithm))
                    futures.append(
                        service.submit(
                            self._tuning_request(
                                params,
                                algorithm,
                                tuner=tuner,
                                pruned=tuner == "ate",
                            )
                        )
                    )
        service.drain()

        per_tuner: Dict[str, Dict[int, Dict[str, float]]] = {}
        for (tuner, li, algorithm), future in zip(entries, futures):
            per_tuner.setdefault(tuner, {}).setdefault(li, {})[algorithm] = (
                future.result().best_time
            )
        return {
            tuner: ModelTiming(
                model=model.name,
                gpu=self.spec.name,
                layers=[
                    self._best_timing(layer, all_params[li], per_tuner[tuner][li])
                    for li, layer in enumerate(model.layers)
                ],
            )
            for tuner in tuners
        }
