"""End-to-end inference-time estimation (Figure 12).

For every convolution layer of a model the runner obtains

* the cuDNN baseline time (library dispatcher on the simulated GPU), and
* the time of the paper's tuned dataflow — either by running the auto-tuning
  engine per layer (slow, faithful) or by using the analytically optimal tile
  of Section 5 directly (fast; the default for the benchmark harness).

Total model time is the sum over convolution layers (weighted by each
layer's repeat count), which matches the paper's claim that convolutions
dominate CNN inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Optional

from ..conv.tensor import ConvParams
from ..core.autotune.engine import AutoTuningEngine
from ..core.dataflow.optimality import optimal_tile_direct, optimal_tile_winograd
from ..gpusim.cudnn import CudnnLibrary
from ..gpusim.executor import GPUExecutor
from ..gpusim.kernels import direct_dataflow_profile, winograd_dataflow_profile
from ..gpusim.spec import GPUSpec
from .layers import ConvLayer, ConvNet

__all__ = ["LayerTiming", "ModelTiming", "ModelRunner"]


@dataclass(frozen=True)
class LayerTiming:
    """Per-layer result of the end-to-end comparison."""

    layer: ConvLayer
    algorithm: str
    ours_seconds: float
    cudnn_seconds: float

    @property
    def speedup(self) -> float:
        if self.ours_seconds <= 0:
            return float("inf")
        return self.cudnn_seconds / self.ours_seconds


@dataclass
class ModelTiming:
    """Whole-model timing summary."""

    model: str
    gpu: str
    layers: List[LayerTiming]

    @property
    def ours_seconds(self) -> float:
        return sum(t.ours_seconds * t.layer.repeat for t in self.layers)

    @property
    def cudnn_seconds(self) -> float:
        return sum(t.cudnn_seconds * t.layer.repeat for t in self.layers)

    @property
    def speedup(self) -> float:
        if self.ours_seconds <= 0:
            return float("inf")
        return self.cudnn_seconds / self.ours_seconds

    def describe(self) -> str:
        return (
            f"{self.model} on {self.gpu}: ours {self.ours_seconds * 1e3:.2f} ms, "
            f"cuDNN {self.cudnn_seconds * 1e3:.2f} ms, speedup {self.speedup:.2f}x"
        )


class ModelRunner:
    """Estimate end-to-end convolution time of a CNN on one simulated GPU."""

    def __init__(
        self,
        spec: GPUSpec,
        mode: Literal["analytic", "tuned"] = "analytic",
        batch: int = 1,
        max_measurements: int = 96,
        seed: int = 0,
    ) -> None:
        if mode not in ("analytic", "tuned"):
            raise ValueError("mode must be 'analytic' or 'tuned'")
        self.spec = spec
        self.mode = mode
        self.batch = batch
        self.max_measurements = max_measurements
        self.seed = seed
        self.library = CudnnLibrary(spec)
        self.executor = GPUExecutor(spec)

    # ------------------------------------------------------------------ #
    def _choose_algorithm(self, params: ConvParams) -> str:
        """Prefer Winograd for stride-1 3x3 layers with enough channels."""
        if (
            params.winograd_compatible()
            and params.ker_height == 3
            and params.in_channels >= 16
        ):
            return "winograd"
        return "direct"

    def _ours_analytic(self, params: ConvParams, algorithm: str) -> float:
        per_block = self.spec.shared_mem_per_sm // self.spec.dtype_size // 2
        if algorithm == "winograd":
            tile = optimal_tile_winograd(params, per_block, e=2)
            profile = winograd_dataflow_profile(params, tile, e=2, dtype_size=self.spec.dtype_size)
        else:
            tile = optimal_tile_direct(params, per_block)
            profile = direct_dataflow_profile(params, tile, dtype_size=self.spec.dtype_size)
        return self.executor.run(profile).time_seconds

    def _ours_tuned(self, params: ConvParams, algorithm: str) -> float:
        engine = AutoTuningEngine(
            params,
            self.spec,
            algorithm=algorithm,
            max_measurements=self.max_measurements,
            seed=self.seed,
        )
        return engine.tune().best_time

    def time_layer(self, layer: ConvLayer) -> LayerTiming:
        params = layer.params(batch=self.batch)
        # Evaluate every applicable template and keep the fastest, the way the
        # auto-tuner's template manager would pick between schedules.
        candidates = ["direct"]
        if self._choose_algorithm(params) == "winograd":
            candidates.append("winograd")
        timings = {}
        for algorithm in candidates:
            if self.mode == "tuned":
                timings[algorithm] = self._ours_tuned(params, algorithm)
            else:
                timings[algorithm] = self._ours_analytic(params, algorithm)
        algorithm = min(timings, key=timings.get)
        ours = timings[algorithm]
        cudnn = self.library.run_best(params).time_seconds
        return LayerTiming(
            layer=layer, algorithm=algorithm, ours_seconds=ours, cudnn_seconds=cudnn
        )

    def time_model(self, model: ConvNet) -> ModelTiming:
        timings = [self.time_layer(layer) for layer in model.layers]
        return ModelTiming(model=model.name, gpu=self.spec.name, layers=timings)
