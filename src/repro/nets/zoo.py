"""Model definitions: the CNNs used in the paper's evaluation.

Layer shapes follow the original architecture papers (AlexNet, VGG-19,
ResNet-18/34, SqueezeNet v1.0, Inception-v3) restricted to their convolution
layers.  Repeated identical shapes are collapsed into a single
:class:`~repro.nets.layers.ConvLayer` with a ``repeat`` count, which keeps the
end-to-end estimator fast without changing the total work.
"""

from __future__ import annotations

from typing import Dict, List

from .layers import ConvLayer, ConvNet

__all__ = [
    "alexnet",
    "vgg19",
    "resnet18",
    "resnet34",
    "squeezenet",
    "inception_v3",
    "MODEL_ZOO",
    "get_model",
]


def alexnet() -> ConvNet:
    """AlexNet's five convolution layers (Table 2 tunes conv1–conv4)."""
    return ConvNet(
        name="AlexNet",
        layers=(
            ConvLayer("conv1", 3, 227, 96, kernel=11, stride=4, padding=0),
            ConvLayer("conv2", 96, 27, 256, kernel=5, stride=1, padding=2),
            ConvLayer("conv3", 256, 13, 384, kernel=3, stride=1, padding=1),
            ConvLayer("conv4", 384, 13, 256, kernel=3, stride=1, padding=1),
            ConvLayer("conv5", 256, 13, 256, kernel=3, stride=1, padding=1),
        ),
    )


def vgg19() -> ConvNet:
    """VGG-19: sixteen 3x3 convolution layers."""
    return ConvNet(
        name="Vgg-19",
        layers=(
            ConvLayer("conv1_1", 3, 224, 64, kernel=3, padding=1),
            ConvLayer("conv1_2", 64, 224, 64, kernel=3, padding=1),
            ConvLayer("conv2_1", 64, 112, 128, kernel=3, padding=1),
            ConvLayer("conv2_2", 128, 112, 128, kernel=3, padding=1),
            ConvLayer("conv3_1", 128, 56, 256, kernel=3, padding=1),
            ConvLayer("conv3_x", 256, 56, 256, kernel=3, padding=1, repeat=3),
            ConvLayer("conv4_1", 256, 28, 512, kernel=3, padding=1),
            ConvLayer("conv4_x", 512, 28, 512, kernel=3, padding=1, repeat=3),
            ConvLayer("conv5_x", 512, 14, 512, kernel=3, padding=1, repeat=4),
        ),
    )


def _resnet(name: str, blocks: List[int]) -> ConvNet:
    """Basic-block ResNet (18 = [2,2,2,2], 34 = [3,4,6,3])."""
    layers: List[ConvLayer] = [
        ConvLayer("conv1", 3, 224, 64, kernel=7, stride=2, padding=3),
    ]
    stage_channels = (64, 128, 256, 512)
    stage_sizes = (56, 28, 14, 7)
    in_ch = 64
    for stage, (ch, size, n_blocks) in enumerate(zip(stage_channels, stage_sizes, blocks), start=2):
        first_stride = 1 if stage == 2 else 2
        in_size = size * first_stride
        # First block of the stage (may downsample / change channels).
        layers.append(
            ConvLayer(f"conv{stage}_1a", in_ch, in_size, ch, kernel=3, stride=first_stride, padding=1)
        )
        layers.append(ConvLayer(f"conv{stage}_1b", ch, size, ch, kernel=3, stride=1, padding=1))
        if first_stride != 1 or in_ch != ch:
            layers.append(
                ConvLayer(f"conv{stage}_proj", in_ch, in_size, ch, kernel=1, stride=first_stride)
            )
        # Remaining identity blocks of the stage: two 3x3 convs each.
        if n_blocks > 1:
            layers.append(
                ConvLayer(
                    f"conv{stage}_rest",
                    ch,
                    size,
                    ch,
                    kernel=3,
                    stride=1,
                    padding=1,
                    repeat=2 * (n_blocks - 1),
                )
            )
        in_ch = ch
    return ConvNet(name=name, layers=tuple(layers))


def resnet18() -> ConvNet:
    return _resnet("ResNet-18", [2, 2, 2, 2])


def resnet34() -> ConvNet:
    return _resnet("ResNet-34", [3, 4, 6, 3])


def squeezenet() -> ConvNet:
    """SqueezeNet v1.0: conv1 plus eight fire modules (squeeze + two expands)."""
    fire_specs = [
        # (name, in_ch, size, squeeze, expand)
        ("fire2", 96, 55, 16, 64),
        ("fire3", 128, 55, 16, 64),
        ("fire4", 128, 55, 32, 128),
        ("fire5", 256, 27, 32, 128),
        ("fire6", 256, 27, 48, 192),
        ("fire7", 384, 27, 48, 192),
        ("fire8", 384, 27, 64, 256),
        ("fire9", 512, 13, 64, 256),
    ]
    layers: List[ConvLayer] = [
        ConvLayer("conv1", 3, 224, 96, kernel=7, stride=2, padding=0),
    ]
    for name, in_ch, size, squeeze, expand in fire_specs:
        layers.append(ConvLayer(f"{name}_squeeze1x1", in_ch, size, squeeze, kernel=1))
        layers.append(ConvLayer(f"{name}_expand1x1", squeeze, size, expand, kernel=1))
        layers.append(ConvLayer(f"{name}_expand3x3", squeeze, size, expand, kernel=3, padding=1))
    layers.append(ConvLayer("conv10", 512, 13, 1000, kernel=1))
    return ConvNet(name="SqueezeNet", layers=tuple(layers))


def inception_v3() -> ConvNet:
    """Inception-v3 stem plus representative mixed blocks (convolutions only).

    The full architecture has ~94 convolutions; we keep the stem exactly and
    collapse the repeated mixed blocks into representative layers with repeat
    counts so that the total MAC count is close to the published ~5.7 GMACs.
    """
    layers = (
        ConvLayer("stem_conv1", 3, 299, 32, kernel=3, stride=2),
        ConvLayer("stem_conv2", 32, 149, 32, kernel=3),
        ConvLayer("stem_conv3", 32, 147, 64, kernel=3, padding=1),
        ConvLayer("stem_conv4", 64, 73, 80, kernel=1),
        ConvLayer("stem_conv5", 80, 73, 192, kernel=3),
        # Mixed 35x35 blocks (3 of them): 1x1, 5x5 and double-3x3 branches.
        ConvLayer("mixed35_1x1", 256, 35, 64, kernel=1, repeat=9),
        ConvLayer("mixed35_5x5", 64, 35, 64, kernel=5, padding=2, repeat=3),
        ConvLayer("mixed35_3x3", 64, 35, 96, kernel=3, padding=1, repeat=6),
        # Mixed 17x17 blocks (4 of them): factorised 7x1 / 1x7 branches modeled
        # as 3x3-equivalent work on 768 channels.
        ConvLayer("mixed17_1x1", 768, 17, 192, kernel=1, repeat=16),
        ConvLayer("mixed17_7x7", 192, 17, 192, kernel=3, padding=1, repeat=16),
        # Mixed 8x8 blocks (2 of them).
        ConvLayer("mixed8_1x1", 1280, 8, 320, kernel=1, repeat=4),
        ConvLayer("mixed8_3x3", 448, 8, 384, kernel=3, padding=1, repeat=4),
    )
    return ConvNet(name="Inception-v3", layers=layers)


MODEL_ZOO: Dict[str, callable] = {
    "alexnet": alexnet,
    "vgg19": vgg19,
    "resnet18": resnet18,
    "resnet34": resnet34,
    "squeezenet": squeezenet,
    "inception_v3": inception_v3,
}


def get_model(name: str) -> ConvNet:
    key = name.lower().replace("-", "").replace("_", "")
    for candidate, factory in MODEL_ZOO.items():
        if candidate.replace("_", "") == key:
            return factory()
    raise KeyError(f"unknown model {name!r}; known: {sorted(MODEL_ZOO)}")
