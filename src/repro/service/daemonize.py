"""Daemonised process wrapper around :class:`DaemonSocketServer`.

The deployment lifecycle the ROADMAP's daemon note promises, as one
module: double-fork/``setsid`` detachment (the daemon survives its
launching shell and controlling terminal), a pidfile with stale-pid
detection (a pidfile left behind by a SIGKILLed daemon never blocks the
next start), stdout/stderr redirection into a log file, and a SIGTERM
handler that drains gracefully — stop admissions, finish in-flight work,
stop the serving backend, snapshot the journal — before removing the
pidfile and exiting.

Two entry points:

* :func:`serve_forever` runs the server lifecycle **in the current
  process** (no forking): build daemon + server, write the pidfile, block
  until SIGTERM/SIGINT, drain, clean up.  This is the testable core, and
  what ``--foreground`` runs.
* :func:`daemonize` performs the classic double-fork/``setsid`` dance and
  then calls :func:`serve_forever` in the detached grandchild; the
  original caller returns immediately (the launching process, e.g. the
  CLI, exits 0 once the intermediate child has been reaped).

CLI (what ``make daemonize-smoke`` drives)::

    python -m repro.service.daemonize --journal /run/tuned.journal \\
        --socket /run/tuned.sock --pidfile /run/tuned.pid \\
        --log /var/log/tuned.log [--backend pool] [--workers 4]

The wrapper adds no fault-model machinery of its own: a SIGKILLed wrapper
is exactly a SIGKILLed daemon, recovered by the journal on the next start
(the stale pidfile is detected and replaced).
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
from typing import Optional

from ..obs import MonotonicClock, Observability
from .daemon import TuningDaemon
from .frontend import DaemonSocketServer

__all__ = ["PidfileError", "daemonize", "serve_forever"]


class PidfileError(RuntimeError):
    """Another live daemon already owns the pidfile."""


def _check_pidfile(path: str) -> None:
    """Refuse to start when the pidfile names a live process; remove it
    when stale (the previous daemon was SIGKILLed and never cleaned up)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            pid = int(handle.read().strip())
    except FileNotFoundError:
        return
    except (OSError, ValueError):
        # Unreadable or garbled pidfile: treat as stale.
        _remove_quietly(path)
        return
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        _remove_quietly(path)  # stale: the pid is gone
    except PermissionError:
        raise PidfileError(
            f"pidfile {path!r} names live pid {pid} (owned by another user)"
        )
    else:
        raise PidfileError(f"pidfile {path!r} names live pid {pid}; refusing to start")


def _remove_quietly(path: str) -> None:
    try:
        os.remove(path)
    except OSError:
        pass


def _write_pidfile(path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"{os.getpid()}\n")


def _redirect_std_streams(log_path: str) -> None:
    """Point stdout/stderr (and stdin from devnull) at the log file at the
    file-descriptor level, so even C-level writes land in the log."""
    sys.stdout.flush()
    sys.stderr.flush()
    log_fd = os.open(log_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    null_fd = os.open(os.devnull, os.O_RDONLY)
    os.dup2(null_fd, 0)
    os.dup2(log_fd, 1)
    os.dup2(log_fd, 2)
    os.close(log_fd)
    os.close(null_fd)


def serve_forever(
    journal: str,
    socket_path: str,
    pidfile: str,
    *,
    backend: str = "service",
    workers: int = 0,
    database_path: Optional[str] = None,
    max_active: int = 64,
    rate_limit: float = 0.0,
    burst: int = 16,
    default_timeout: Optional[float] = None,
    stop_event: Optional[threading.Event] = None,
    _daemon_factory=None,
) -> int:
    """The wrapper's in-process core: serve until SIGTERM, drain, exit.

    Claims the pidfile (stale-pid detection included), builds the daemon
    with a real ``MonotonicClock`` at this deployment edge, serves the
    socket, and blocks until SIGTERM or SIGINT arrives.  Graceful
    shutdown order — server stops accepting, daemon drains (in-flight
    work finishes, pool workers stop, journal snapshots), handles close,
    pidfile removed — so a SIGTERM'd wrapper leaves nothing behind but a
    compact journal.  Returns the process exit code.
    """
    # Accept pathlib.Path callers: AF_UNIX bind and the journal/pidfile io
    # below all want plain strings.
    journal = os.fspath(journal)
    socket_path = os.fspath(socket_path)
    pidfile = os.fspath(pidfile)
    _check_pidfile(pidfile)
    _write_pidfile(pidfile)
    terminated = stop_event if stop_event is not None else threading.Event()

    def _on_signal(signum, frame):  # noqa: ARG001 - signal handler shape
        terminated.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _on_signal)
        except ValueError:
            # Not the main thread (tests drive shutdown via stop_event).
            break
    try:
        obs = Observability(enabled=True, clock=MonotonicClock())
        if _daemon_factory is not None:
            daemon = _daemon_factory()
        else:
            from ..core.autotune.database import TuningDatabase
            from .pool import TuningWorkerPool

            database = (
                TuningDatabase(path=database_path)
                if database_path is not None
                else None
            )
            if backend == "pool-serial":
                resolved = _serial_pool(workers, obs=obs)
            elif backend == "pool" and workers:
                resolved = TuningWorkerPool(num_workers=workers, obs=obs)
            else:
                resolved = backend
            daemon = TuningDaemon(
                journal,
                backend=resolved,
                database=database,
                obs=obs,
                clock=obs.clock,
                max_active=max_active,
                rate_limit=rate_limit,
                burst=burst,
                default_timeout=default_timeout,
            )
        if os.path.exists(socket_path):
            _remove_quietly(socket_path)  # stale socket from a killed run
        server = DaemonSocketServer(daemon, socket_path).start()
        print(
            f"repro tuning daemon up: pid={os.getpid()} socket={socket_path} "
            f"journal={journal} backend={daemon.backend_kind}",
            flush=True,
        )
        terminated.wait()
        print("SIGTERM: draining...", flush=True)
        server.stop()
        summary = daemon.drain()
        daemon.close()
        print(f"drained cleanly: {summary}", flush=True)
        return 0
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        _remove_quietly(pidfile)
        _remove_quietly(socket_path)


def _serial_pool(workers: int, obs=None):
    """A deterministic in-process pool backend (used by tests/smoke runs
    where worker processes are unavailable or unwanted)."""
    from .pool import TuningWorkerPool

    return TuningWorkerPool(
        num_workers=max(1, workers), use_processes=False, obs=obs
    )


def daemonize(
    journal: str,
    socket_path: str,
    pidfile: str,
    log: str,
    **serve_kwargs,
) -> int:
    """Detach via double-fork/``setsid`` and serve in the grandchild.

    The first fork lets the caller continue (it reaps the intermediate
    child and returns 0); ``setsid`` in that child drops the controlling
    terminal; the second fork guarantees the grandchild can never
    reacquire one.  The grandchild redirects its std streams into ``log``
    and runs :func:`serve_forever`; its pidfile is the handle the outside
    world uses to SIGTERM it.
    """
    first = os.fork()
    if first > 0:
        os.waitpid(first, 0)  # reap the intermediate child immediately
        return 0
    # Intermediate child: new session, fork again, exit.
    os.setsid()
    second = os.fork()
    if second > 0:
        os._exit(0)
    # Grandchild: the daemon proper.
    exit_code = 1
    try:
        os.chdir("/")
        _redirect_std_streams(log)
        exit_code = serve_forever(journal, socket_path, pidfile, **serve_kwargs)
    except BaseException as exc:  # pragma: no cover - crash path
        try:
            print(f"daemon wrapper crashed: {type(exc).__name__}: {exc}", flush=True)
        except Exception:
            pass
    finally:
        os._exit(exit_code)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.daemonize",
        description="Run the tuning daemon as a detached background process.",
    )
    parser.add_argument("--journal", required=True, help="request journal path")
    parser.add_argument("--socket", required=True, help="AF_UNIX socket path")
    parser.add_argument("--pidfile", required=True, help="pidfile path")
    parser.add_argument("--log", help="log file (required unless --foreground)")
    parser.add_argument(
        "--backend",
        default="service",
        choices=["service", "pool", "pool-serial"],
        help="tuning backend (pool-serial = in-process shards, deterministic)",
    )
    parser.add_argument("--workers", type=int, default=0, help="pool worker count")
    parser.add_argument("--database", default=None, help="persistent database path")
    parser.add_argument("--max-active", type=int, default=64)
    parser.add_argument("--rate-limit", type=float, default=0.0)
    parser.add_argument("--burst", type=int, default=16)
    parser.add_argument("--timeout", type=float, default=None, dest="default_timeout")
    parser.add_argument(
        "--foreground",
        action="store_true",
        help="skip the double-fork; serve in this process (for supervisors)",
    )
    args = parser.parse_args(argv)
    serve_kwargs = dict(
        backend=args.backend,
        workers=args.workers,
        database_path=args.database,
        max_active=args.max_active,
        rate_limit=args.rate_limit,
        burst=args.burst,
        default_timeout=args.default_timeout,
    )
    if args.foreground:
        return serve_forever(args.journal, args.socket, args.pidfile, **serve_kwargs)
    if args.log is None:
        parser.error("--log is required when daemonizing (no terminal to write to)")
    return daemonize(args.journal, args.socket, args.pidfile, args.log, **serve_kwargs)


if __name__ == "__main__":
    raise SystemExit(main())
