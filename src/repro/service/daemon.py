"""The always-on tuning daemon: durable, admission-controlled, crash-safe.

:class:`TuningDaemon` wraps a tuning **backend** — the in-process
:class:`~repro.service.scheduler.TuningService` (the scheduling/coalescing/
batching engine, the default) or the sharded streaming
:class:`~repro.service.pool.TuningWorkerPool` in its long-lived serving mode
(``backend="pool"``) — with the deployment-shape machinery a long-lived
server needs:

* **Durable promises** — every accepted request is written to a
  :class:`~repro.service.journal.RequestJournal` *before* it is
  acknowledged, and every state transition (``accepted -> running ->
  done(result)/failed(error)``) is journaled, so the daemon's promises
  survive SIGKILL.
* **Crash recovery** — on construction the daemon folds the journal:
  terminal entries are re-served straight from their journaled payloads
  (bit-identical results, **zero re-measurement**); in-flight entries are
  resubmitted to the service, which the shared keep-better
  :class:`~repro.core.autotune.database.TuningDatabase` makes idempotent —
  a replayed run converges on the same final database records.
* **Admission control** — a bounded in-flight queue plus an optional
  token-bucket rate limit; overload answers a typed ``RETRY_AFTER``
  rejection immediately instead of queueing unboundedly, so a submit never
  hangs.  Requests whose ``deadline`` has already passed are rejected up
  front (``DEADLINE_EXPIRED``), never admitted and timed out later.
* **Per-request timeouts** — an expired request's run is cancelled cleanly
  through :meth:`TuningService.cancel` and journaled ``failed(TIMEOUT)``.
* **Graceful drain** — stop admissions, finish in-flight work, snapshot the
  journal and flush the database, so the next start replays a short tail.

The daemon is transport-agnostic: :meth:`handle` serves decoded wire ops
and :meth:`tick` advances scheduling, so the same object runs under the
socket server or the deterministic in-process ``FakeTransport`` (see
:mod:`repro.service.frontend`).  Time comes from an injected
:class:`~repro.obs.Clock` — ``FakeClock`` in tests, ``MonotonicClock`` at
real edges — never from wall-clock reads.

**Backend selection contract**: the journal fault model is identical under
either backend — accepted-before-ack, terminal entries re-serve
bit-identically with zero re-measurement, in-flight entries resubmit
idempotently on restart — because the journal sits *above* the backend and
both backends answer a submit with the same
:class:`~repro.service.futures.TuningFuture` surface.  The pool backend adds
the PR 5 worker fault model underneath: a SIGKILLed *worker* degrades to an
in-parent shard runner (durable shard logs salvaged, streamed records never
re-tuned) while the daemon itself stays up and keeps serving.  Every backend
crossing is counted in the ``daemon.backend.*`` metrics (``submits`` /
``steps`` / ``cancels``), folded with the backend's own fleet telemetry in
:meth:`TuningDaemon.fleet_snapshot`.

Telemetry follows the service's split: the counters behind
:attr:`TuningDaemon.stats` live on an always-on private registry
(``daemon.accepted`` / ``rejected_overload`` / ``rejected_deadline`` /
``rejected_draining`` / ``recovered`` / ``replayed`` / ``completed`` /
``failed`` / ``timeouts`` and the ``daemon.queue_depth`` gauge); the
``obs`` bundle adds the ``daemon.request_latency_seconds`` histogram and
everything the wrapped backend exports.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Union

from ..core.autotune.database import TuningDatabase
from ..obs import (
    LATENCY_BOUNDS,
    NULL_OBS,
    Clock,
    MetricsRegistry,
    MetricsSnapshot,
    Observability,
)
from .errors import (
    BadRequest,
    DaemonDraining,
    DeadlineExpired,
    NotReady,
    Overloaded,
    RequestError,
    RequestFailed,
    RequestTimeout,
    UnknownRequest,
    error_from_wire,
)
from .frontend import PROTOCOL_VERSION
from .futures import TuningFuture
from .journal import (
    RequestJournal,
    request_from_wire,
    request_id,
    request_to_wire,
    result_to_wire,
)
from .policy import SchedulingPolicy
from .pool import TuningWorkerPool
from .request import TuningRequest
from .scheduler import TuningService

__all__ = ["DaemonStats", "TuningDaemon"]


@dataclass
class DaemonStats:
    """Accounting snapshot of one daemon (see :attr:`TuningDaemon.stats`).

    Like :class:`~repro.service.scheduler.ServiceStats`, a point-in-time
    *view*: the live counts are thread-safe registry counters and each read
    materialises one consistent copy.
    """

    accepted: int = 0
    rejected_overload: int = 0
    rejected_deadline: int = 0
    rejected_draining: int = 0
    #: journal entries folded at the last recovery (terminal + in-flight).
    recovered: int = 0
    #: in-flight journal entries resubmitted to the service at recovery.
    replayed: int = 0
    completed: int = 0
    failed: int = 0
    timeouts: int = 0

    def describe(self) -> str:
        rejected = (
            self.rejected_overload + self.rejected_deadline + self.rejected_draining
        )
        return (
            f"DaemonStats[{self.accepted} accepted ({rejected} rejected), "
            f"{self.completed} done / {self.failed} failed "
            f"({self.timeouts} timeouts), {self.replayed} replayed of "
            f"{self.recovered} recovered]"
        )


class TuningDaemon:
    """Long-lived tuning server over a durable request journal.

    Thread-safe: :meth:`handle` may be called from any number of connection
    threads concurrently with a pump thread running :meth:`tick`.

    ``clock`` defaults to ``obs.clock`` (the null clock when observability
    is off), keeping the daemon deterministic by construction; pass a real
    ``MonotonicClock`` at deployment edges to arm rate limiting, timeouts
    and latency telemetry, or a ``FakeClock`` in tests.  ``rate_limit`` is
    tokens (requests) per clock second, 0 = unlimited; ``burst`` is the
    bucket depth.  ``max_active`` bounds in-flight (accepted, unfinished)
    requests.  ``default_timeout`` applies to submits that do not carry
    their own ``timeout``.

    ``backend`` picks the engine behind the journal: ``"service"`` (default)
    is one in-process :class:`TuningService`; ``"pool"`` builds a
    :class:`~repro.service.pool.TuningWorkerPool` and runs it in serving
    mode over the daemon's shared database; a ready-made
    ``TuningWorkerPool`` instance is adopted as-is (the daemon starts and
    owns its serving session — configure workers/durability on the pool).
    """

    def __init__(
        self,
        journal_path: Union[str, os.PathLike],
        *,
        backend: Union[str, TuningWorkerPool] = "service",
        database: Optional[TuningDatabase] = None,
        policy: Union[str, SchedulingPolicy, None] = None,
        obs: Optional[Observability] = None,
        clock: Optional[Clock] = None,
        max_active: int = 64,
        rate_limit: float = 0.0,
        burst: int = 16,
        default_timeout: Optional[float] = None,
        fsync_journal: bool = False,
        snapshot_min_entries: int = 4096,
    ) -> None:
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        if rate_limit < 0.0 or burst < 1:
            raise ValueError("rate_limit must be >= 0 and burst >= 1")
        self.obs = obs if obs is not None else NULL_OBS
        self.database = database if database is not None else TuningDatabase()
        self.service: Optional[TuningService] = None
        self.pool: Optional[TuningWorkerPool] = None
        if isinstance(backend, TuningWorkerPool):
            self.pool = backend
        elif backend == "pool":
            self.pool = TuningWorkerPool(policy=policy, obs=self.obs)
        elif backend == "service":
            self.service = TuningService(
                database=self.database, policy=policy, obs=self.obs
            )
        else:
            raise ValueError(
                f"backend must be 'service', 'pool' or a TuningWorkerPool, "
                f"got {backend!r}"
            )
        self.backend_kind = "pool" if self.pool is not None else "service"
        if self.pool is not None:
            self.pool.start(database=self.database)
        self.journal = RequestJournal(
            journal_path,
            fsync_appends=fsync_journal,
            snapshot_min_entries=snapshot_min_entries,
        )
        self.max_active = int(max_active)
        self.rate_limit = float(rate_limit)
        self.burst = int(burst)
        self.default_timeout = default_timeout
        # Always-live accounting registry (the DaemonStats source) plus the
        # obs extras; mirrors TuningService's split.
        self._metrics = MetricsRegistry()
        acc = self._metrics.scope("daemon")
        self._c_accepted = acc.counter("accepted")
        self._c_rejected_overload = acc.counter("rejected_overload")
        self._c_rejected_deadline = acc.counter("rejected_deadline")
        self._c_rejected_draining = acc.counter("rejected_draining")
        self._c_recovered = acc.counter("recovered")
        self._c_replayed = acc.counter("replayed")
        self._c_completed = acc.counter("completed")
        self._c_failed = acc.counter("failed")
        self._c_timeouts = acc.counter("timeouts")
        self._g_queue_depth = acc.gauge("queue_depth")
        bk = self._metrics.scope("daemon.backend")
        self._c_b_submits = bk.counter("submits")
        self._c_b_steps = bk.counter("steps")
        self._c_b_cancels = bk.counter("cancels")
        self._h_latency = self.obs.registry.histogram(
            "daemon.request_latency_seconds", LATENCY_BOUNDS
        )
        self._clock = clock if clock is not None else self.obs.clock
        self._futures: Dict[str, TuningFuture] = {}
        self._requests: Dict[str, TuningRequest] = {}
        self._expiry: Dict[str, float] = {}
        self._accepted_at: Dict[str, float] = {}
        self._draining = False
        self._tokens = float(self.burst)
        self._last_refill = self._clock.now()
        self._lock = threading.RLock()
        with self._lock:
            self._recover_locked()

    # -- accounting ------------------------------------------------------ #
    @property
    def stats(self) -> DaemonStats:
        """One consistent accounting snapshot (never a torn read)."""
        c = self._metrics.snapshot().counters
        return DaemonStats(
            accepted=c.get("daemon.accepted", 0),
            rejected_overload=c.get("daemon.rejected_overload", 0),
            rejected_deadline=c.get("daemon.rejected_deadline", 0),
            rejected_draining=c.get("daemon.rejected_draining", 0),
            recovered=c.get("daemon.recovered", 0),
            replayed=c.get("daemon.replayed", 0),
            completed=c.get("daemon.completed", 0),
            failed=c.get("daemon.failed", 0),
            timeouts=c.get("daemon.timeouts", 0),
        )

    def metrics_snapshot(self) -> MetricsSnapshot:
        """The ``daemon.*`` half of the telemetry; the obs extras (latency
        histogram, service/db instruments) snapshot via ``self.obs``."""
        return self._metrics.snapshot()

    def fleet_snapshot(self) -> MetricsSnapshot:
        """One merged snapshot of the whole serving stack: the daemon's
        always-on counters (including ``daemon.backend.*``) folded with the
        backend's fleet telemetry — :meth:`TuningWorkerPool.fleet_snapshot`
        for the pool backend (which already carries every shard's metrics
        and the shared ``obs`` registry), or the service's registry plus the
        ``obs`` extras for the in-process backend."""
        snapshot = self._metrics.snapshot()
        with self._lock:
            if self.pool is not None:
                # The pool snapshot already merges self.obs — merging it
                # again here would double-count every shared instrument.
                return snapshot.merged(self.pool.fleet_snapshot())
            return snapshot.merged(self.service.metrics_snapshot()).merged(
                self.obs.snapshot()
            )

    # -- backend bridge -------------------------------------------------- #
    def _backend_submit(self, request: TuningRequest) -> TuningFuture:
        """(lock held) One submit through whichever backend is configured.

        The pool's serving-mode :meth:`~TuningWorkerPool.submit` does not
        re-check deadlines (the daemon owns admission), so the recovery
        replay path gets the same up-front ``DEADLINE_EXPIRED`` the service
        backend raises natively."""
        self._c_b_submits.inc()
        if self.pool is not None:
            now = self._clock.now()
            if request.deadline is not None and request.deadline < now:
                raise DeadlineExpired(
                    f"deadline {request.deadline} already passed at submit "
                    f"(now {now}); rejected up front, not admitted"
                )
            return self.pool.submit(request)
        return self.service.submit(request)

    def _backend_step(self) -> bool:
        """(lock held) Advance the backend one scheduling round."""
        self._c_b_steps.inc()
        if self.pool is not None:
            return self.pool.step()
        return self.service.step()

    def _backend_cancel(
        self, rid: str, request: TuningRequest, exc: BaseException
    ) -> bool:
        """(lock held) Cancel ``rid``'s run without stranding coalesced
        twins: the service backend detaches only this daemon's future
        (``future=``), the pool backend fails every parent future for the
        request — under the daemon those are one and the same, because
        identical requests share a rid and never re-enter the backend."""
        cancelled = (
            self.pool.cancel(request, exc)
            if self.pool is not None
            else self.service.cancel(request, exc, future=self._futures.get(rid))
        )
        if cancelled:
            self._c_b_cancels.inc()
        return cancelled

    @property
    def queue_depth(self) -> int:
        """In-flight (accepted, unfinished) requests."""
        with self._lock:
            return len(self._futures)

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    # -- recovery -------------------------------------------------------- #
    def _recover_locked(self) -> None:
        """(lock held) Fold the journal back into serving state.

        Terminal entries stay journal-served (their results re-serve with
        zero measurements); in-flight entries — promises made before the
        crash — are resubmitted to the backend.  The shared database makes
        the replay idempotent: a run that had already stored its record
        before the crash is answered from the database at resubmit, and one
        that had not converges on the same record via keep-better.
        """
        for entry in self.journal.states().values():
            self._c_recovered.inc()
            if entry.terminal:
                continue
            try:
                request = request_from_wire(entry.request)
            except Exception as exc:
                self.journal.fail(
                    entry.rid, BadRequest(f"unreplayable request: {exc}").to_wire()
                )
                self._c_failed.inc()
                continue
            self.journal.mark_running(entry.rid)
            try:
                future = self._backend_submit(request)
            except RequestError as err:
                self.journal.fail(entry.rid, err.to_wire())
                self._c_failed.inc()
                continue
            self._futures[entry.rid] = future
            self._requests[entry.rid] = request
            self._accepted_at[entry.rid] = self._clock.now()
            if self.default_timeout is not None:
                self._expiry[entry.rid] = self._clock.now() + float(
                    self.default_timeout
                )
            self._c_replayed.inc()
        self._finalize_done_locked()
        self._g_queue_depth.set(len(self._futures))

    # -- wire dispatch --------------------------------------------------- #
    def handle(self, op: Dict[str, object]) -> Dict[str, object]:
        """Serve one decoded wire op; always returns a reply dict.

        Typed :class:`~repro.service.errors.RequestError` rejections become
        ``{"ok": false, "error": {...}}`` replies — the daemon never raises
        at a transport and never leaves an op unanswered.
        """
        try:
            if not isinstance(op, dict):
                raise BadRequest(f"op is {type(op).__name__}, expected an object")
            kind = op.get("op")
            if kind == "ping":
                return {"ok": True, "pong": True, "protocol": PROTOCOL_VERSION}
            if kind == "describe":
                return {"ok": True, "daemon": self.describe()}
            if kind == "submit":
                return self._op_submit(op)
            if kind == "status":
                return self._op_status(op)
            if kind == "result":
                return self._op_result(op)
            if kind == "drain":
                return {"ok": True, **self.drain()}
            raise BadRequest(f"unknown op {kind!r}")
        except RequestError as error:
            return {"ok": False, "error": error.to_wire()}

    def _op_submit(self, op: Dict[str, object]) -> Dict[str, object]:
        try:
            request = request_from_wire(dict(op["request"]))
        except Exception as exc:
            raise BadRequest(f"malformed tuning request: {exc}") from exc
        timeout = op.get("timeout")
        if timeout is not None:
            timeout = float(timeout)
            if timeout <= 0.0:
                raise BadRequest(f"timeout must be > 0, got {timeout}")
        rid = self.submit(request, timeout=timeout)
        with self._lock:
            entry = self.journal.get(rid)
            state = entry.status if entry is not None else "accepted"
        return {"ok": True, "rid": rid, "state": state}

    def _op_status(self, op: Dict[str, object]) -> Dict[str, object]:
        rid = str(op.get("rid", ""))
        with self._lock:
            entry = self.journal.get(rid)
            if entry is None:
                raise UnknownRequest(f"no journaled request {rid!r}")
            reply: Dict[str, object] = {
                "ok": True,
                "rid": rid,
                "state": entry.status,
                "queue_depth": len(self._futures),
            }
            if entry.error is not None:
                reply["error"] = entry.error
            return reply

    def _op_result(self, op: Dict[str, object]) -> Dict[str, object]:
        rid = str(op.get("rid", ""))
        with self._lock:
            self._finalize_done_locked()
            entry = self.journal.get(rid)
            if entry is None:
                raise UnknownRequest(f"no journaled request {rid!r}")
            if entry.status == "done":
                return {"ok": True, "rid": rid, "state": "done", "result": entry.result}
            if entry.status == "failed":
                raise _error_from_entry(entry.error)
            raise NotReady(
                f"request {rid} is {entry.status}; poll again", retry_after=0.01
            )

    # -- the native API (what the wire ops call) ------------------------- #
    def submit(
        self, request: TuningRequest, *, timeout: Optional[float] = None
    ) -> str:
        """Admit, durably journal, and start one request; returns its rid.

        Raises the typed rejections documented in the module docstring;
        acknowledgement (returning) strictly follows the journal append, so
        an acknowledged request is always recoverable.
        """
        rid = request_id(request)
        with self._lock:
            if timeout is None:
                timeout = self.default_timeout
            known = self.journal.get(rid)
            if known is not None:
                # Idempotent resubmit: the journal already holds this
                # promise (retried submit, or a restart re-serve) — no
                # re-admission, no re-measurement, same rid.  ``deadline``
                # is deliberately excluded from the rid digest (see
                # journal.request_id), so a retry with a fresh deadline or
                # timeout still lands here — but the retry's ``timeout``
                # must not be silently dropped: the effective expiry is the
                # *min* of the journaled promise's expiry and the retry's.
                # A promise can only ever tighten by being asked again,
                # never get laxer (a retried shorter timeout wins; a longer
                # one cannot resurrect an almost-expired run).
                if timeout is not None and not known.terminal and rid in self._futures:
                    retried = self._clock.now() + float(timeout)
                    current = self._expiry.get(rid)
                    self._expiry[rid] = (
                        retried if current is None else min(current, retried)
                    )
                return rid
            if self._draining:
                self._c_rejected_draining.inc()
                raise DaemonDraining("daemon is draining; submit elsewhere")
            now = self._clock.now()
            if request.deadline is not None and request.deadline < now:
                self._c_rejected_deadline.inc()
                raise DeadlineExpired(
                    f"deadline {request.deadline} already passed at submit "
                    f"(now {now}); rejected up front, not admitted"
                )
            if len(self._futures) >= self.max_active:
                self._c_rejected_overload.inc()
                raise Overloaded(
                    f"queue full ({len(self._futures)}/{self.max_active} in flight)",
                    retry_after=0.1,
                )
            if not self._take_token_locked(now):
                self._c_rejected_overload.inc()
                raise Overloaded(
                    f"rate limited ({self.rate_limit}/s, burst {self.burst})",
                    retry_after=(1.0 - self._tokens) / self.rate_limit,
                )
            # Durability point: the accept line is on disk (fsync'd when
            # configured) before the submit is acknowledged.
            self.journal.accept(rid, request_to_wire(request))
            try:
                future = self._backend_submit(request)
            except RequestError as err:
                self.journal.fail(rid, err.to_wire())
                self._c_failed.inc()
                raise
            except Exception as exc:
                err = RequestFailed(f"submit failed: {exc}")
                self.journal.fail(rid, err.to_wire())
                self._c_failed.inc()
                raise err from exc
            self.journal.mark_running(rid)
            self._futures[rid] = future
            self._requests[rid] = request
            self._accepted_at[rid] = now
            if timeout is not None:
                self._expiry[rid] = now + float(timeout)
            self._c_accepted.inc()
            # Database-served submits settle immediately: journal the
            # result now so even an instant crash re-serves it.
            self._finalize_done_locked()
            self._g_queue_depth.set(len(self._futures))
            return rid

    def _take_token_locked(self, now: float) -> bool:
        """(lock held) Token-bucket admission; True when a token was taken.

        Refills from the injected clock, so a null clock (no real time)
        with ``rate_limit=0`` — the default — never throttles, and tests
        drive refill deterministically by advancing a ``FakeClock``.

        The refill delta is clamped at zero: a clock that steps backwards
        (a restart handed a different clock epoch, a misbehaving injected
        clock) must never *subtract* tokens, and the refill watermark keeps
        the max-seen reading so the backwards excursion is not re-credited
        as elapsed time when the clock recovers."""
        if self.rate_limit <= 0.0:
            return True
        self._tokens = min(
            float(self.burst),
            self._tokens + max(0.0, now - self._last_refill) * self.rate_limit,
        )
        self._last_refill = max(self._last_refill, now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def status(self, rid: str) -> Dict[str, object]:
        return self._op_status({"op": "status", "rid": rid})

    def result(self, rid: str) -> Dict[str, object]:
        """The journaled result wire payload for a done request (raises the
        journaled typed error for failed, ``NotReady`` for in-flight)."""
        reply = self._op_result({"op": "result", "rid": rid})
        return dict(reply["result"])

    # -- progress -------------------------------------------------------- #
    def tick(self) -> bool:
        """Advance the daemon one round: expire timeouts, run one
        scheduling round, journal newly settled requests.  Returns True
        while in-flight work remains."""
        with self._lock:
            self._expire_timeouts_locked()
            progressed = self._backend_step()
            self._finalize_done_locked()
            self._g_queue_depth.set(len(self._futures))
            return progressed or bool(self._futures)

    def run_until_idle(self, max_ticks: int = 1_000_000) -> int:
        """Tick until no in-flight work remains; returns ticks run."""
        ticks = 0
        while self.tick():
            ticks += 1
            if ticks >= max_ticks:
                break
        return ticks

    def _expire_timeouts_locked(self) -> None:
        """(lock held) Cancel runs whose per-request timeout elapsed.

        Cancellation answers the future with :class:`RequestTimeout`;
        :meth:`_finalize_done_locked` then journals ``failed(TIMEOUT)``.
        The daemon is the run's only submitter (identical requests share a
        rid and never re-submit), so cancelling it strands nobody else."""
        now = self._clock.now()
        expired = [rid for rid, at in self._expiry.items() if at <= now]
        for rid in expired:
            del self._expiry[rid]
            future = self._futures.get(rid)
            if future is None or future.done():
                continue
            timeout_err = RequestTimeout(f"request {rid} timed out at {now}")
            if self._backend_cancel(rid, self._requests[rid], timeout_err):
                self._c_timeouts.inc()

    def _finalize_done_locked(self) -> None:
        """(lock held) Journal terminal states for settled futures.

        The journal write is the serving handoff: once ``done(result)`` /
        ``failed(error)`` is on disk the in-memory future is dropped and
        every later (or post-restart) ``result`` op is answered straight
        from the journal."""
        settled = [rid for rid, future in self._futures.items() if future.done()]
        now = self._clock.now()
        for rid in settled:
            future = self._futures.pop(rid)
            self._requests.pop(rid, None)
            self._expiry.pop(rid, None)
            accepted_at = self._accepted_at.pop(rid, None)
            if accepted_at is not None:
                self._h_latency.observe(now - accepted_at)
            try:
                result = future.result(timeout=0)
            except RequestError as err:
                self.journal.fail(rid, err.to_wire())
                self._c_failed.inc()
            except Exception as exc:
                self.journal.fail(rid, RequestFailed(str(exc)).to_wire())
                self._c_failed.inc()
            else:
                self.journal.complete(rid, result_to_wire(result))
                self._c_completed.inc()

    # -- lifecycle ------------------------------------------------------- #
    def drain(self) -> Dict[str, object]:
        """Graceful drain: stop admissions, finish in-flight work, stop the
        pool backend's serving fleet (workers drain, compact and report),
        snapshot the journal, flush the database.  Returns a summary; the
        daemon keeps serving ``status``/``result`` ops afterwards."""
        with self._lock:
            self._draining = True
        ticks = self.run_until_idle()
        with self._lock:
            if self.pool is not None:
                self.pool.stop()
            self.journal.snapshot()
            if self.database.path is not None:
                self.database.save()
            return {
                "drained": True,
                "ticks": ticks,
                "pending": len(self._futures),
                "journal_entries": len(self.journal),
            }

    def kill(self) -> None:
        """Simulate SIGKILL (tests/demos): drop file handles with no drain,
        no snapshot, no flush beyond the journal's per-append flush — a
        killed and a gracefully closed daemon recover through the identical
        journal path."""
        self.close()

    def close(self) -> None:
        """Release file handles without draining (idempotent).  The pool
        backend is terminated SIGKILL-style — no worker drain, no shard
        compaction — so a killed and a closed daemon recover identically."""
        with self._lock:
            if self.pool is not None:
                self.pool.terminate()
            self.journal.close()
            self.database.close()

    def describe(self) -> Dict[str, object]:
        """JSON-native status snapshot (served by the ``describe`` op)."""
        with self._lock:
            return {
                "kind": "TuningDaemon",
                "protocol": PROTOCOL_VERSION,
                "draining": self._draining,
                "queue_depth": len(self._futures),
                "admission": {
                    "max_active": self.max_active,
                    "rate_limit": self.rate_limit,
                    "burst": self.burst,
                    "default_timeout": self.default_timeout,
                },
                "stats": dataclasses.asdict(self.stats),
                "journal": self.journal.describe(),
                "backend": self.backend_kind,
                **(
                    {"pool": self.pool.describe()}
                    if self.pool is not None
                    else {"service": self.service.describe()}
                ),
            }


def _error_from_entry(error_wire: Optional[Dict[str, object]]) -> RequestError:
    return error_from_wire(error_wire if error_wire is not None else {})
