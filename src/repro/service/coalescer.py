"""Request coalescing: identical in-flight requests share one tuning run.

Concurrent clients tuning the same model zoo hammer the service with
duplicate work — every ResNet replica asks for the same 3x3 layers.  The
coalescer keeps one :class:`InFlightRun` per distinct
:class:`~repro.service.TuningRequest` (the request *is* the key — see
``request.py``); the first submission creates the entry and every identical
submission that arrives while it is still running just attaches its future.
When the run completes, the scheduler pops the entry and answers every
attached future, so N concurrent identical requests cost exactly one search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .futures import TuningFuture
from .request import TuningRequest

__all__ = ["InFlightRun", "RequestCoalescer"]


@dataclass
class InFlightRun:
    """All futures waiting on one distinct in-flight request."""

    request: TuningRequest
    futures: List[TuningFuture] = field(default_factory=list)

    @property
    def primary(self) -> TuningFuture:
        """The future that triggered the run (the first submission)."""
        return self.futures[0]

    @property
    def attached(self) -> List[TuningFuture]:
        """The coalesced futures (everyone but the primary)."""
        return self.futures[1:]


class RequestCoalescer:
    """Deduplicate in-flight tuning requests.

    Not thread-safe on its own — the owning
    :class:`~repro.service.scheduler.TuningService` serialises access under
    its lock.
    """

    def __init__(self) -> None:
        self._inflight: Dict[TuningRequest, InFlightRun] = {}

    def __len__(self) -> int:
        return len(self._inflight)

    def join(self, future: TuningFuture) -> Tuple[InFlightRun, bool]:
        """Attach ``future`` to its request's run, creating the run if it is
        the first in-flight submission.  Returns ``(run, created)``.

        Coalescing accounting lives in the owning service's
        :class:`~repro.service.scheduler.ServiceStats`, not here."""
        entry = self._inflight.get(future.request)
        if entry is not None:
            entry.futures.append(future)
            future.coalesced = True
            return entry, False
        entry = InFlightRun(request=future.request, futures=[future])
        self._inflight[future.request] = entry
        return entry, True

    def get(self, request: TuningRequest) -> Optional[InFlightRun]:
        return self._inflight.get(request)

    def discard(self, request: TuningRequest) -> None:
        """Retire a run's entry (idempotent: the scheduler's failure path
        may race a partially completed finalisation)."""
        self._inflight.pop(request, None)
