"""The daemon's front door: line-delimited JSON protocol, transports, client.

One request/reply pair per line.  Ops are JSON objects with an ``"op"``
discriminator (``ping`` / ``describe`` / ``submit`` / ``status`` /
``result`` / ``drain``); replies are ``{"ok": true, ...}`` or ``{"ok":
false, "error": {"code", "message"[, "retry_after"]}}`` with the typed
error codes of :mod:`repro.service.errors`.  The daemon never hangs a
client: every op gets exactly one reply line.

Two transports speak the identical wire format:

* :class:`SocketTransport` / :class:`DaemonSocketServer` — an ``AF_UNIX``
  stream socket for real deployments; the server runs accept/connection
  threads plus a pump thread that drives the daemon's scheduling ticks.
* :class:`FakeTransport` — the deterministic in-process mode the fault
  model is property-tested under: ops and replies make a full
  ``json.dumps``/``loads`` round trip (so anything that would not survive
  the socket does not survive the fake either), connection failures and
  daemon kills are injectable, and each call optionally pumps one daemon
  tick so client retry/poll loops make deterministic progress.

:class:`DaemonClient` is the thin submit/await API on top of either
transport: retryable errors (``RETRY_AFTER`` admission pushback,
``NOT_READY`` polls) and transport ``ConnectionError`` are retried with
exponential backoff + seeded jitter, and a resubmitted request is
idempotent by construction — the daemon keys its journal on
:func:`~repro.service.journal.request_id`, so a retried submit coalesces
onto the original journal entry instead of duplicating work.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from typing import Dict, Optional

from ..core.autotune.session import TuningResult
from .errors import RequestError, RequestTimeout, error_from_wire
from .journal import request_to_wire, result_from_wire
from .request import TuningRequest

__all__ = [
    "DaemonClient",
    "DaemonSocketServer",
    "FakeTransport",
    "SocketTransport",
    "decode_line",
    "encode_line",
]

#: wire protocol version, stamped into ping replies for handshake checks.
PROTOCOL_VERSION = 1

_MAX_LINE_BYTES = 16 * 1024 * 1024


def encode_line(payload: Dict[str, object]) -> bytes:
    """One wire line: canonical (sorted-keys) JSON + newline."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, object]:
    payload = json.loads(line.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError(
            f"wire payload is {type(payload).__name__}, expected an object"
        )
    return payload


# -- transports ---------------------------------------------------------- #
class FakeTransport:
    """Deterministic in-process transport over a live ``TuningDaemon``.

    Every call JSON round-trips the op and the reply, so wire-compatibility
    is enforced even without sockets.  ``auto_pump`` (default) runs one
    daemon tick before handling each op, so a client polling ``result``
    advances the daemon's scheduling deterministically — the property tests
    drive crash, overload and timeout scenarios this way with zero threads.

    Fault injection: :meth:`kill` makes every later call raise
    ``ConnectionError`` (the client sees exactly what a daemon SIGKILL
    looks like from outside); :meth:`fail_next` injects transient
    connection failures for retry-path tests.
    """

    def __init__(self, daemon, *, auto_pump: bool = True) -> None:
        self.daemon = daemon
        self.auto_pump = auto_pump
        self.calls = 0
        self._killed = False
        self._fail_next = 0

    def kill(self) -> None:
        """Simulate the daemon process dying under this transport."""
        self._killed = True

    def revive(self, daemon) -> None:
        """Point the transport at a restarted daemon (post-recovery)."""
        self.daemon = daemon
        self._killed = False

    def fail_next(self, count: int = 1) -> None:
        """Make the next ``count`` calls raise ``ConnectionError``."""
        self._fail_next += count

    def call(self, op: Dict[str, object]) -> Dict[str, object]:
        if self._killed:
            raise ConnectionError("tuning daemon is down")
        if self._fail_next > 0:
            self._fail_next -= 1
            raise ConnectionError("injected transport fault")
        self.calls += 1
        wire_op = decode_line(encode_line(op))
        if self.auto_pump:
            self.daemon.tick()
        reply = self.daemon.handle(wire_op)
        return decode_line(encode_line(reply))


class SocketTransport:
    """Client side of the ``AF_UNIX`` line protocol (one call per connect).

    Connection trouble surfaces as ``ConnectionError`` so
    :class:`DaemonClient` retries it like any other transient fault.
    """

    def __init__(self, path: str, *, timeout: float = 30.0) -> None:
        self.path = path
        self.timeout = timeout

    def call(self, op: Dict[str, object]) -> Dict[str, object]:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.settimeout(self.timeout)
            try:
                sock.connect(self.path)
                sock.sendall(encode_line(op))
                line = _read_line(sock)
            except (OSError, socket.timeout) as exc:
                raise ConnectionError(
                    f"tuning daemon at {self.path!r} unreachable: {exc}"
                ) from exc
            return decode_line(line)
        finally:
            sock.close()


def _read_line(sock: socket.socket) -> bytes:
    """Read one newline-terminated wire line; raise ``ConnectionError``
    for every truncated shape (no data, mid-line close, oversized line) so
    the client retry loop treats them all as transient transport faults —
    a half-delivered reply must never surface as a JSON decode error."""
    chunks = []
    total = 0
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            if chunks:
                raise ConnectionError(
                    f"connection closed mid-line after {total} bytes "
                    "(reply truncated)"
                )
            raise ConnectionError("connection closed before a reply line arrived")
        chunks.append(chunk)
        total += len(chunk)
        if chunk.endswith(b"\n"):
            break
        if total > _MAX_LINE_BYTES:
            raise ConnectionError("wire line exceeds the size limit")
    return b"".join(chunks)


class DaemonSocketServer:
    """Serve a ``TuningDaemon`` on an ``AF_UNIX`` socket.

    Three kinds of threads: one accept loop, one short-lived thread per
    connection (read op lines, write reply lines — the daemon's ``handle``
    is thread-safe), and one pump thread running ``daemon.tick()`` so
    tuning progresses while clients poll.  All threads are daemonic; the
    sleep in the pump loop is pacing between ticks, not a timing source.
    """

    def __init__(
        self,
        daemon,
        path: str,
        *,
        idle_sleep: float = 0.002,
        max_line_bytes: int = _MAX_LINE_BYTES,
    ) -> None:
        self.daemon = daemon
        self.path = path
        self._idle_sleep = idle_sleep
        #: per-connection buffer cap: a client that streams bytes without
        #: ever sending a newline is answered BAD_REQUEST and disconnected
        #: instead of growing the buffer unboundedly.
        self.max_line_bytes = int(max_line_bytes)
        self._stop = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads = []

    def start(self) -> "DaemonSocketServer":
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            listener.bind(self.path)
        except OSError:
            listener.close()
            raise
        listener.listen(16)
        listener.settimeout(0.1)
        self._listener = listener
        accept = threading.Thread(target=self._accept_loop, daemon=True)
        pump = threading.Thread(target=self._pump_loop, daemon=True)
        self._threads = [accept, pump]
        accept.start()
        pump.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=5.0)
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    # -- threads --------------------------------------------------------- #
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        """One client's read-dispatch-reply loop.

        Robust against misbehaving clients by construction: a mid-line
        disconnect just drops the partial buffer with the connection, an
        op line over ``max_line_bytes`` gets a BAD_REQUEST reply and a
        disconnect, and an undecodable line gets a BAD_REQUEST reply with
        the connection kept — none of these can take the thread down, so
        the accept loop keeps serving every other connection.
        """
        with conn:
            buffer = b""
            while not self._stop.is_set():
                try:
                    chunk = conn.recv(65536)
                except OSError:
                    return
                if not chunk:
                    return
                buffer += chunk
                if len(buffer) > self.max_line_bytes and b"\n" not in buffer:
                    reply = {
                        "ok": False,
                        "error": {
                            "code": "BAD_REQUEST",
                            "message": (
                                f"wire line exceeds {self.max_line_bytes} "
                                "bytes; disconnecting"
                            ),
                        },
                    }
                    try:
                        conn.sendall(encode_line(reply))
                    except OSError:
                        pass
                    return
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    try:
                        op = decode_line(line + b"\n")
                    except ValueError as exc:
                        reply = {
                            "ok": False,
                            "error": {
                                "code": "BAD_REQUEST",
                                "message": f"undecodable wire line: {exc}",
                            },
                        }
                    else:
                        reply = self.daemon.handle(op)
                    try:
                        conn.sendall(encode_line(reply))
                    except OSError:
                        return

    def _pump_loop(self) -> None:
        while not self._stop.is_set():
            if not self.daemon.tick():
                # Pacing between scheduling rounds, not a timing source.
                time.sleep(self._idle_sleep)


# -- client -------------------------------------------------------------- #
class DaemonClient:
    """Submit/await API over a transport, with idempotent retries.

    Backoff is exponential with multiplicative jitter from an explicitly
    seeded ``random.Random`` (deterministic under test, decorrelated in a
    fleet); a server-supplied ``retry_after`` hint floors the delay.
    ``sleep`` is injectable — tests pass ``FakeClock.advance`` so backoff
    *advances* simulated time (refilling the daemon's token bucket) instead
    of stalling the suite.

    Submits are safe to retry blindly: the daemon journals requests under
    their deadline-free idempotency key, so a retried submit — after a
    connection fault, an overload rejection, or even a daemon restart —
    coalesces onto the original journal entry and never duplicates a
    measurement.
    """

    def __init__(
        self,
        transport,
        *,
        max_attempts: int = 8,
        poll_attempts: int = 100_000,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        jitter_seed: int = 0,
        sleep=None,
    ) -> None:
        if max_attempts < 1 or poll_attempts < 1:
            raise ValueError("max_attempts and poll_attempts must be >= 1")
        self.transport = transport
        self.max_attempts = max_attempts
        self.poll_attempts = poll_attempts
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self._rng = random.Random(jitter_seed)
        # time.sleep is pacing between retries, never a measurement.
        self._sleep = time.sleep if sleep is None else sleep
        #: retries performed (transport faults + retryable rejections).
        self.retries = 0

    # -- plumbing -------------------------------------------------------- #
    def _backoff_delay(self, attempt: int, hint: Optional[float]) -> float:
        base = min(self.backoff_cap, self.backoff * (2.0**attempt))
        delay = base * (0.5 + self._rng.random())  # jitter in [0.5x, 1.5x)
        if hint is not None:
            delay = max(delay, float(hint))
        return delay

    def _call(
        self, op: Dict[str, object], *, attempts: Optional[int] = None
    ) -> Dict[str, object]:
        """One op with retries; returns the ok-reply or raises typed."""
        limit = self.max_attempts if attempts is None else attempts
        attempt = 0
        while True:
            try:
                reply = self.transport.call(op)
            except ConnectionError:
                if attempt + 1 >= limit:
                    raise
                self.retries += 1
                self._sleep(self._backoff_delay(attempt, None))
                attempt += 1
                continue
            if reply.get("ok"):
                return reply
            error = error_from_wire(reply.get("error", {}))
            if error.retryable and attempt + 1 < limit:
                self.retries += 1
                self._sleep(self._backoff_delay(attempt, error.retry_after))
                attempt += 1
                continue
            raise error

    # -- ops ------------------------------------------------------------- #
    def ping(self) -> bool:
        reply = self._call({"op": "ping"})
        return bool(reply.get("pong"))

    def describe(self) -> Dict[str, object]:
        return dict(self._call({"op": "describe"})["daemon"])

    def submit(
        self, request: TuningRequest, *, timeout: Optional[float] = None
    ) -> str:
        """Submit (retrying through overload pushback); returns the rid."""
        op: Dict[str, object] = {"op": "submit", "request": request_to_wire(request)}
        if timeout is not None:
            op["timeout"] = float(timeout)
        return str(self._call(op)["rid"])

    def status(self, rid: str) -> Dict[str, object]:
        return self._call({"op": "status", "rid": rid})

    def result(self, rid: str) -> TuningResult:
        """Poll until the journaled result is available, then decode it.

        ``NOT_READY`` replies are the poll loop (bounded by
        ``poll_attempts``); terminal failures raise their typed error."""
        try:
            reply = self._call({"op": "result", "rid": rid}, attempts=self.poll_attempts)
        except RequestError as error:
            if error.retryable:
                raise RequestTimeout(
                    f"request {rid} not ready after {self.poll_attempts} polls"
                ) from error
            raise
        return result_from_wire(dict(reply["result"]))

    def submit_and_wait(
        self, request: TuningRequest, *, timeout: Optional[float] = None
    ) -> TuningResult:
        return self.result(self.submit(request, timeout=timeout))

    def drain(self) -> Dict[str, object]:
        return self._call({"op": "drain"})
