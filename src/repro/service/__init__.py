"""Concurrent tuning service (the production front end of the auto-tuner).

Real deployments tune whole model zoos at once; this package schedules many
conv-tuning requests over the shared fast primitives so concurrent clients
never redundantly re-tune identical layers or under-fill measurement
batches:

* :class:`TuningRequest` / :class:`TuningFuture` — the submit/await API; a
  request pins down everything that determines a tuning outcome (search
  tuner and hyperparameters included), so equal requests are
  interchangeable.
* :class:`RequestCoalescer` — identical in-flight requests share one run.
* :class:`TuningService` — the scheduler: serves database hits at submit
  time, drives every active run's step-wise session (the ATE engine *and*
  every baseline tuner implement the same
  :class:`~repro.core.autotune.session.TuningSessionProtocol`), and packs
  proposal batches from different requests into shared executor calls
  (:meth:`~repro.gpusim.executor.GPUExecutor.run_batch_groups`).
* :class:`SchedulingPolicy` — which runs propose each round: uniform
  (default), budget-weighted fair share, earliest-deadline-first.
* :class:`TuningWorkerPool` — shards big workloads across long-lived worker
  processes that *stream* best-known records to each other mid-workload
  (parent folds each completed run's record into the shared database
  immediately and pushes it down every other shard's sync channel), with a
  merge-at-end batch mode and a deterministic serial fallback.
* :class:`TuningDaemon` / :class:`DaemonClient` — the always-on deployment
  shape: every accepted request is journaled durably (:class:`RequestJournal`)
  *before* acknowledgement, admission control answers overload with a typed
  ``RETRY_AFTER`` rejection, per-request timeouts cancel cleanly, and a
  SIGKILLed daemon recovers on restart — journaled-done results re-serve
  bit-identically with zero re-measurement, in-flight requests replay
  idempotently.  Served over a line-delimited JSON socket protocol
  (:class:`DaemonSocketServer`) or the deterministic in-process
  :class:`FakeTransport`.

Everything is bit-identical to driving each request's tuner directly
(:meth:`TuningRequest.tune_direct`) — the service only removes redundant and
per-call work, never changes the search.

**Mixed-algorithm submit** — one service schedules heterogeneous search
algorithms side by side, packing their measurement batches together::

    from repro.conv import ConvParams
    from repro.gpusim import V100
    from repro.service import TuningRequest, TuningService

    layer = ConvParams.square(28, 128, 128, kernel=3, stride=1, padding=1)
    service = TuningService(policy="fair_share")   # or "uniform" / "edf"
    futures = [
        # the ATE engine on the pruned Table-1 domain (database-backed)
        service.submit(TuningRequest(layer, V100, max_measurements=96)),
        # baselines on the unpruned space, hyperparameters in the key
        service.submit(TuningRequest(layer, V100, pruned=False, tuner="random")),
        service.submit(
            TuningRequest(
                layer, V100, pruned=False, tuner="sa_tempering",
                tuner_params={"chains": 8},
            )
        ),
        # an urgent request: EDF schedules it ahead of everything else
        service.submit(
            TuningRequest(layer, V100, pruned=False, tuner="genetic", deadline=1.0)
        ),
    ]
    service.drain()                     # or run step() from a driver thread
    results = [f.result() for f in futures]
"""

from .coalescer import InFlightRun, RequestCoalescer
from .daemon import DaemonStats, TuningDaemon
from .daemonize import PidfileError, daemonize, serve_forever
from .errors import (
    BadRequest,
    DaemonDraining,
    DeadlineExpired,
    NotReady,
    Overloaded,
    RequestCancelled,
    RequestError,
    RequestFailed,
    RequestTimeout,
    UnknownRequest,
    error_from_wire,
)
from .frontend import (
    DaemonClient,
    DaemonSocketServer,
    FakeTransport,
    SocketTransport,
)
from .futures import TuningFuture
from .journal import (
    RequestJournal,
    request_from_wire,
    request_id,
    request_to_wire,
    result_from_wire,
    result_to_wire,
)
from .policy import (
    EarliestDeadlinePolicy,
    FairSharePolicy,
    SchedulingPolicy,
    UniformPolicy,
    make_policy,
)
from .pool import PoolStats, TuningWorkerPool
from .request import TUNERS, TuningRequest
from .scheduler import ServiceStats, TuningService

__all__ = [
    "BadRequest",
    "DaemonClient",
    "DaemonDraining",
    "DaemonSocketServer",
    "DaemonStats",
    "DeadlineExpired",
    "EarliestDeadlinePolicy",
    "FairSharePolicy",
    "FakeTransport",
    "InFlightRun",
    "NotReady",
    "Overloaded",
    "PidfileError",
    "PoolStats",
    "RequestCancelled",
    "RequestCoalescer",
    "RequestError",
    "RequestFailed",
    "RequestJournal",
    "RequestTimeout",
    "SchedulingPolicy",
    "ServiceStats",
    "SocketTransport",
    "TUNERS",
    "TuningDaemon",
    "TuningFuture",
    "TuningRequest",
    "TuningService",
    "TuningWorkerPool",
    "UniformPolicy",
    "UnknownRequest",
    "daemonize",
    "error_from_wire",
    "make_policy",
    "serve_forever",
    "request_from_wire",
    "request_id",
    "request_to_wire",
    "result_from_wire",
    "result_to_wire",
]
