"""Concurrent tuning service (the production front end of the auto-tuner).

Real deployments tune whole model zoos at once; this package schedules many
conv-tuning requests over the shared fast primitives so concurrent clients
never redundantly re-tune identical layers or under-fill measurement
batches:

* :class:`TuningRequest` / :class:`TuningFuture` — the submit/await API; a
  request pins down everything that determines a tuning outcome, so equal
  requests are interchangeable.
* :class:`RequestCoalescer` — identical in-flight requests share one run.
* :class:`TuningService` — the scheduler: serves database hits at submit
  time, drives every active run's step-wise
  :class:`~repro.core.autotune.engine.TuningSession`, and packs proposal
  batches from different requests into shared executor calls
  (:meth:`~repro.gpusim.executor.GPUExecutor.run_batch_groups`).
* :class:`TuningWorkerPool` — shards big workloads across worker processes
  and merges the per-worker databases.

Everything is bit-identical to driving
:meth:`~repro.core.autotune.engine.AutoTuningEngine.tune` per request — the
service only removes redundant and per-call work, never changes the search.
"""

from .coalescer import InFlightRun, RequestCoalescer
from .futures import TuningFuture
from .pool import TuningWorkerPool
from .request import TuningRequest
from .scheduler import ServiceStats, TuningService

__all__ = [
    "InFlightRun",
    "RequestCoalescer",
    "ServiceStats",
    "TuningFuture",
    "TuningRequest",
    "TuningService",
    "TuningWorkerPool",
]
