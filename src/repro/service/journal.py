"""The daemon's durable request journal + request/result wire codecs.

:class:`RequestJournal` is the write-ahead state machine behind the
always-on :class:`~repro.service.daemon.TuningDaemon`: every accepted
request is journaled *before* it is acknowledged, and every state
transition (``accepted -> running -> done(result) / failed(error)``) is one
appended JSON line, so a SIGKILLed daemon reconstructs exactly which
promises it made — and which results it already computed — on restart.

The on-disk shape deliberately reuses the proven
:class:`~repro.core.autotune.store.LogStore` idioms:

* ``path`` is an append-only JSON-lines log: an atomically-installed header
  line ``{"format": 1, "kind": "journal", "snapshot_seq": S}`` followed by
  one event per line, flushed per append (fsync'd when ``fsync_appends``).
* ``path + ".snap"`` is the compaction snapshot (``kind:
  "journal-snapshot"``, fsync'd, atomically replaced): the folded per-request
  state map, written by :meth:`RequestJournal.snapshot` (a drain hook) or
  automatically once the log tail reaches ``snapshot_min_entries`` lines.
* Recovery folds the snapshot, then replays the log tail through the same
  monotonic fold, tolerating exactly one undecodable *trailing* line (the
  mid-append crash signature, truncated away); an undecodable line anywhere
  else is corruption and raises
  :class:`~repro.core.autotune.store.TuningDatabaseError`.

The fold is **monotonic and idempotent**: ``accepted < running < terminal``,
the first terminal event wins, and duplicate or stale events are no-ops —
which is what makes "replay twice == replay once" hold and lets a restarted
daemon re-apply a tail the snapshot already covers without harm.

This module also owns the wire codecs the journal and the line protocol
share: :func:`request_to_wire` / :func:`request_from_wire` (the full frozen
:class:`~repro.service.request.TuningRequest`, GPU spec inlined),
:func:`result_to_wire` / :func:`result_from_wire` (a faithful
:class:`~repro.core.autotune.session.TuningResult` round trip, invalid
infinite-time trials encoded as ``null``), and :func:`request_id` — the
idempotency key: a digest of the request's canonical wire form *minus* the
``deadline`` field, mirroring the frozen dataclass's coalescing equality.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import tempfile
import threading
from typing import Dict, List, Optional, Union

from ..core.autotune.config import Configuration
from ..core.autotune.session import TrialRecord, TuningResult
from ..core.autotune.store import (
    FORMAT_VERSION,
    TuningDatabaseError,
    _atomic_write_json,
    _check_format,
    _params_from_dict,
    _params_to_dict,
)
from ..gpusim.spec import GPUSpec
from .request import TuningRequest

__all__ = [
    "JournalEntry",
    "RequestJournal",
    "request_from_wire",
    "request_id",
    "request_to_wire",
    "result_from_wire",
    "result_to_wire",
]

#: request states a journal entry may hold, in lifecycle order.
_ORDER = {"accepted": 0, "running": 1, "done": 2, "failed": 2}
_TERMINAL = ("done", "failed")


# -- wire codecs --------------------------------------------------------- #
def request_to_wire(request: TuningRequest) -> Dict[str, object]:
    """JSON-native form of a :class:`TuningRequest`, GPU spec inlined.

    The spec is serialized field-by-field (it is a frozen dataclass of
    scalars), not by registry name, so a journal written against a custom
    GPU model replays without that GPU being registered."""
    return {
        "params": _params_to_dict(request.params),
        "spec": dataclasses.asdict(request.spec),
        "algorithm": request.algorithm,
        "max_measurements": request.max_measurements,
        "batch_size": request.batch_size,
        "initial_random": request.initial_random,
        "patience": request.patience,
        "seed": request.seed,
        "pruned": request.pruned,
        "noise": request.noise,
        "noise_seed": request.noise_seed,
        "tuner": request.tuner,
        "tuner_params": [list(pair) for pair in request.tuner_params],
        "deadline": request.deadline,
    }


def request_from_wire(wire: Dict[str, object]) -> TuningRequest:
    """Inverse of :func:`request_to_wire`; raises ``BadRequest``-worthy
    ``KeyError``/``ValueError``/``TypeError`` on malformed payloads (the
    daemon maps those to a typed rejection)."""
    deadline = wire.get("deadline")
    return TuningRequest(
        params=_params_from_dict(dict(wire["params"])),
        spec=GPUSpec(**dict(wire["spec"])),
        algorithm=str(wire.get("algorithm", "direct")),
        max_measurements=int(wire.get("max_measurements", 256)),
        batch_size=int(wire.get("batch_size", 16)),
        initial_random=int(wire.get("initial_random", 16)),
        patience=int(wire.get("patience", 6)),
        seed=int(wire.get("seed", 0)),
        pruned=bool(wire.get("pruned", True)),
        noise=float(wire["noise"]) if "noise" in wire else 0.05,
        noise_seed=int(wire.get("noise_seed", 2021)),
        tuner=str(wire.get("tuner", "ate")),
        tuner_params=tuple(
            (str(name), value) for name, value in wire.get("tuner_params", [])
        ),
        deadline=None if deadline is None else float(deadline),
    )


def request_id(request: TuningRequest) -> str:
    """The idempotency key: a digest of the canonical wire form minus
    ``deadline``.

    Mirrors the frozen dataclass's equality (``deadline`` is ``compare=False``
    scheduling metadata), so two requests coalesce in the service exactly
    when they share a request id at the daemon — a client retrying a submit
    (same request, any deadline) lands on the same journal entry instead of
    duplicating work.

    The exclusion is deliberate, not an oversight: ``deadline`` (and the
    daemon-level ``timeout``, which never reaches the wire form at all)
    describe *when* an answer stops being useful, not *which* answer is
    being asked for — two submits differing only in urgency want the same
    measurements.  Retry urgency is honoured separately: the daemon's
    idempotent-resubmit path takes the min of the journaled expiry and the
    retry's timeout (see :meth:`TuningDaemon.submit`).
    """
    wire = request_to_wire(request)
    del wire["deadline"]
    canonical = json.dumps(wire, sort_keys=True).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()[:32]


def result_to_wire(result: TuningResult) -> Dict[str, object]:
    """JSON-native form of a :class:`TuningResult` (trial list included).

    Invalid trials carry ``time_seconds: null`` on the wire (JSON has no
    portable ``Infinity``); :func:`result_from_wire` restores ``inf``, so
    the round trip is bit-identical — the property the daemon's re-serve
    guarantee is tested against."""
    trials = []
    for t in result.trials:
        trials.append(
            {
                "index": t.index,
                "config": t.config.as_dict(),
                "time_seconds": t.time_seconds if math.isfinite(t.time_seconds) else None,
                "gflops": t.gflops,
            }
        )
    return {
        "tuner": result.tuner,
        "params": _params_to_dict(result.params),
        "gpu": result.gpu,
        "space_size": result.space_size,
        "from_cache": result.from_cache,
        "trials": trials,
    }


def result_from_wire(wire: Dict[str, object]) -> TuningResult:
    """Inverse of :func:`result_to_wire`."""
    result = TuningResult(
        tuner=str(wire["tuner"]),
        params=_params_from_dict(dict(wire["params"])),
        gpu=str(wire["gpu"]),
        space_size=int(wire.get("space_size", 0)),
        from_cache=bool(wire.get("from_cache", False)),
    )
    for t in wire.get("trials", []):
        time_seconds = t.get("time_seconds")
        result.trials.append(
            TrialRecord(
                index=int(t["index"]),
                config=Configuration(**t["config"]),
                time_seconds=float("inf") if time_seconds is None else float(time_seconds),
                gflops=float(t.get("gflops", 0.0)),
            )
        )
    return result


# -- the journal --------------------------------------------------------- #
@dataclasses.dataclass
class JournalEntry:
    """Folded state of one journaled request (one id, one promise)."""

    rid: str
    request: Dict[str, object]
    status: str = "accepted"
    result: Optional[Dict[str, object]] = None
    error: Optional[Dict[str, object]] = None

    @property
    def terminal(self) -> bool:
        return self.status in _TERMINAL

    def to_dict(self) -> Dict[str, object]:
        return {
            "rid": self.rid,
            "request": self.request,
            "status": self.status,
            "result": self.result,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "JournalEntry":
        status = str(d.get("status", "accepted"))
        if status not in _ORDER:
            raise TuningDatabaseError(f"unknown journal entry status {status!r}")
        return cls(
            rid=str(d["rid"]),
            request=dict(d["request"]),
            status=status,
            result=None if d.get("result") is None else dict(d["result"]),
            error=None if d.get("error") is None else dict(d["error"]),
        )


class RequestJournal:
    """Append-only request-lifecycle journal with snapshot compaction.

    Thread-safe; every mutation happens under ``self._lock``.  Appends are
    flushed per line (fsync'd when ``fsync_appends``), so the durability
    unit against process death (SIGKILL) is one event line; snapshots are
    always fsync'd before their atomic replace, so compaction can never
    trade a recoverable log for an unrecoverable snapshot.  See the module
    docstring for the on-disk shape and the crash-window analysis inherited
    from ``LogStore._compact_locked``.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        *,
        fsync_appends: bool = False,
        snapshot_min_entries: int = 4096,
    ) -> None:
        self.path = os.fspath(path)
        self.snapshot_path = self.path + ".snap"
        self._fsync_appends = bool(fsync_appends)
        self._snapshot_min_entries = int(snapshot_min_entries)
        self._entries: Dict[str, JournalEntry] = {}
        self._log_file = None
        self._lines = 0  # event lines in the log tail since the last snapshot
        self._recoveries = 0
        self._lock = threading.RLock()
        with self._lock:
            self._recover_locked()

    # -- state machine --------------------------------------------------- #
    def _apply_locked(self, event: Dict[str, object]) -> bool:
        """(lock held) Monotonic fold of one event into the state map.

        Returns True when the event changed state.  Stale or duplicate
        events are no-ops — never errors — because recovery replays a tail
        the snapshot may already cover, and a retried client may resubmit a
        request the journal already holds.
        """
        kind = event.get("event")
        rid = str(event.get("rid", ""))
        if kind == "accepted":
            if rid in self._entries:
                return False
            self._entries[rid] = JournalEntry(rid=rid, request=dict(event["request"]))
            return True
        entry = self._entries.get(rid)
        if entry is None or entry.terminal:
            return False
        if kind == "running":
            if _ORDER["running"] <= _ORDER[entry.status]:
                return False
            entry.status = "running"
            return True
        if kind == "done":
            entry.status = "done"
            entry.result = dict(event["result"])
            return True
        if kind == "failed":
            entry.status = "failed"
            entry.error = dict(event["error"])
            return True
        raise TuningDatabaseError(
            f"{self.path!r}: unknown journal event kind {kind!r}"
        )

    def _append_locked(self, event: Dict[str, object]) -> bool:
        """(lock held) Fold an event and, when effective, write its line.

        The line hits the OS (and, with ``fsync_appends``, the disk) before
        this returns — the caller may acknowledge the event as durable.
        """
        if self._log_file is None:
            raise TuningDatabaseError(
                f"request journal {self.path!r} is closed; no further events"
            )
        if not self._apply_locked(event):
            return False
        self._log_file.write(json.dumps(event, sort_keys=True) + "\n")
        self._log_file.flush()
        if self._fsync_appends:
            os.fsync(self._log_file.fileno())
        self._lines += 1
        if self._lines >= self._snapshot_min_entries:
            self._snapshot_locked()
        return True

    # -- public recording API -------------------------------------------- #
    def accept(self, rid: str, request_wire: Dict[str, object]) -> bool:
        """Durably record an accepted request *before* it is acknowledged.

        Returns False (and writes nothing) when ``rid`` is already
        journaled — the idempotent-resubmit path."""
        with self._lock:
            return self._append_locked(
                {"event": "accepted", "rid": rid, "request": request_wire}
            )

    def mark_running(self, rid: str) -> bool:
        with self._lock:
            self._require_locked(rid)
            return self._append_locked({"event": "running", "rid": rid})

    def complete(self, rid: str, result_wire: Dict[str, object]) -> bool:
        """Record the request's result; re-served bit-identically forever after."""
        with self._lock:
            self._require_locked(rid)
            return self._append_locked(
                {"event": "done", "rid": rid, "result": result_wire}
            )

    def fail(self, rid: str, error_wire: Dict[str, object]) -> bool:
        with self._lock:
            self._require_locked(rid)
            return self._append_locked(
                {"event": "failed", "rid": rid, "error": error_wire}
            )

    def _require_locked(self, rid: str) -> None:
        """(lock held) Transitions require an accepted entry; an unknown rid
        is a daemon bug, not a replayable event, and raises."""
        if rid not in self._entries:
            raise TuningDatabaseError(
                f"request journal {self.path!r} holds no entry {rid!r}"
            )

    # -- reads ----------------------------------------------------------- #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, rid: str) -> Optional[JournalEntry]:
        """The folded entry for ``rid`` (a defensive copy), or None."""
        with self._lock:
            entry = self._entries.get(rid)
            return None if entry is None else dataclasses.replace(entry)

    def states(self) -> Dict[str, JournalEntry]:
        """Point-in-time copy of every folded entry, acceptance order."""
        with self._lock:
            return {rid: dataclasses.replace(e) for rid, e in self._entries.items()}

    def in_flight(self) -> List[JournalEntry]:
        """Entries whose promise is not yet settled (accepted/running) —
        exactly the requests a restarted daemon must resubmit."""
        with self._lock:
            return [
                dataclasses.replace(e)
                for e in self._entries.values()
                if not e.terminal
            ]

    def describe(self) -> Dict[str, object]:
        with self._lock:
            by_status: Dict[str, int] = {}
            for entry in self._entries.values():
                by_status[entry.status] = by_status.get(entry.status, 0) + 1
            return {
                "kind": "RequestJournal",
                "path": self.path,
                "snapshot_path": self.snapshot_path,
                "entries": len(self._entries),
                "log_lines": self._lines,
                "recoveries": self._recoveries,
                "by_status": by_status,
                "closed": self._log_file is None,
            }

    # -- durability ------------------------------------------------------ #
    def snapshot(self) -> str:
        """Compact now: fsync'd snapshot of the folded state + log reset.

        The drain hook — a journal snapshotted at drain time replays zero
        tail lines on the next start."""
        with self._lock:
            if self._log_file is None:
                raise TuningDatabaseError(
                    f"request journal {self.path!r} is closed; cannot snapshot"
                )
            self._snapshot_locked()
            return self.snapshot_path

    def _snapshot_locked(self) -> None:
        """(lock held) Snapshot the folded state, then reset the log.

        Same crash-window story as ``LogStore._compact_locked``: a death
        before the snapshot's atomic replace leaves old snapshot + full old
        log; between replace and reset leaves new snapshot + old log, whose
        replay is pure over-delivery (the fold is idempotent); a failed
        reset reopens the old log and keeps appending to it."""
        payload = {
            "format": FORMAT_VERSION,
            "kind": "journal-snapshot",
            "entries": [e.to_dict() for e in self._entries.values()],
        }
        _atomic_write_json(self.snapshot_path, payload, fsync=True)
        self._log_file.close()
        self._log_file = None
        try:
            self._write_fresh_log_locked()
        finally:
            self._log_file = open(self.path, "a", encoding="utf-8")
        self._lines = 0

    def _write_fresh_log_locked(self) -> None:
        """(lock held) Atomically install a header-only log file, so a
        half-written header can never exist on disk."""
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(self.path) + ".", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                header = {"format": FORMAT_VERSION, "kind": "journal"}
                fh.write(json.dumps(header, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # -- recovery -------------------------------------------------------- #
    def recover(self) -> int:
        """Rebuild the folded state from snapshot + log tail; returns the
        number of entries recovered.  Idempotent: recovering twice yields
        the same state map (replay twice == replay once)."""
        with self._lock:
            return self._recover_locked()

    def _recover_locked(self) -> int:
        """(lock held) The recovery fold shared by ``__init__`` and
        :meth:`recover`."""
        if self._log_file is not None:
            self._log_file.close()
            self._log_file = None
        self._entries = {}
        self._lines = 0
        if os.path.exists(self.snapshot_path):
            self._fold_snapshot_locked()
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            self._replay_log_locked()
        else:
            # Missing (or zero-byte, i.e. never-written) log: install a
            # fresh header so the file is well-formed from byte one.
            self._write_fresh_log_locked()
        self._log_file = open(self.path, "a", encoding="utf-8")
        self._recoveries += 1
        return len(self._entries)

    def _fold_snapshot_locked(self) -> None:
        """(lock held) Fold the compaction snapshot's folded entries."""
        name = self.snapshot_path
        with open(name, "r", encoding="utf-8") as fh:
            try:
                payload = json.load(fh)
            except ValueError as exc:
                raise TuningDatabaseError(
                    f"{name!r} is not a valid journal snapshot (it is written "
                    f"atomically, so this is corruption, not a crash): {exc}"
                ) from exc
        payload = _check_format(payload, name, kind="journal-snapshot")
        try:
            for d in payload.get("entries", []):
                entry = JournalEntry.from_dict(d)
                # First fold wins on terminal states — identical monotonic
                # story to event replay, so snapshot + over-delivered tail
                # converge on the same map.
                if entry.rid not in self._entries:
                    self._entries[entry.rid] = entry
        except TuningDatabaseError:
            raise
        except Exception as exc:
            raise TuningDatabaseError(
                f"{name!r} holds malformed journal entries: {exc}"
            ) from exc

    def _replay_log_locked(self) -> None:
        """(lock held) Replay the log tail through the monotonic fold.

        Tolerates exactly one undecodable trailing line (the mid-append
        crash signature), truncating it away so the next append starts on a
        clean line; anything else raises."""
        name = self.path
        with open(name, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        try:
            header = json.loads(lines[0])
        except ValueError as exc:
            raise TuningDatabaseError(
                f"{name!r} has an undecodable journal header (the header is "
                f"installed atomically, so this is not a crash artifact): {exc}"
            ) from exc
        _check_format(header, name, kind="journal")
        for index, line in enumerate(lines[1:], start=2):
            try:
                event = json.loads(line)
                if not isinstance(event, dict):
                    # Eligible for torn-tail tolerance below: a truncated
                    # line can decode to a bare JSON scalar.
                    raise ValueError(
                        f"journal event is {type(event).__name__}, expected object"
                    )
                self._apply_locked(event)
            except TuningDatabaseError:
                raise
            except Exception as exc:
                if index == len(lines):
                    # Truncated trailing line: the event that was in flight
                    # when the process died.  Only that event is lost — drop
                    # the partial line so later appends do not concatenate
                    # onto it (which would tear *them* too).
                    keep = sum(len(kept.encode("utf-8")) for kept in lines[:-1])
                    os.truncate(name, keep)
                    break
                raise TuningDatabaseError(
                    f"{name!r} line {index} is undecodable but not the last "
                    f"line; the journal is corrupt, not merely truncated: {exc}"
                ) from exc
            self._lines += 1

    def close(self) -> None:
        """Release the log handle without snapshotting (idempotent).

        Deliberately *not* a flush point beyond the per-append flush: a
        closed-then-reopened journal and a SIGKILLed-then-reopened journal
        recover identically, which is what the crash tests rely on."""
        with self._lock:
            if self._log_file is not None:
                self._log_file.close()
                self._log_file = None
