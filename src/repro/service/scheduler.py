"""The concurrent tuning service: coalesce, schedule, batch, serve.

:class:`TuningService` accepts conv-tuning requests
(:class:`~repro.service.request.TuningRequest`: layer parameters + GPU +
algorithm + budget) and answers each with a
:class:`~repro.service.futures.TuningFuture`.  Three mechanisms remove the
redundancy a naive per-request loop would pay:

1. **Database serving** — a request whose ``(params, GPU, algorithm)`` triple
   is already covered by the shared
   :class:`~repro.core.autotune.database.TuningDatabase` (budget and
   measurement conditions included) is answered at submit time with zero
   measurements.
2. **Request coalescing** — identical requests that arrive while a matching
   run is in flight attach to it instead of starting their own
   (:mod:`repro.service.coalescer`); N concurrent requests for the same
   layer cost exactly one search.
3. **Cross-request measurement batching** — every scheduling round
   (:meth:`TuningService.step`) collects the next proposal batch of *every*
   active tuning session, lowers each with its own
   :meth:`~repro.core.autotune.config.Measurer.prepare_batch`, and packs all
   slices that share a device and measurement conditions into one
   :meth:`~repro.gpusim.executor.GPUExecutor.run_batch_groups` call, keeping
   the vectorised executor's batches full even when individual requests
   propose small batches.

Results are **bit-identical** to driving
:meth:`~repro.core.autotune.engine.AutoTuningEngine.tune` directly for every
request: sessions own all randomness and consume measurements in proposal
order, and the packed executor call is element-wise (see
``GPUExecutor.run_batch_groups``).  For duplicate (coalesced) requests the
service mirrors the sequential shared-database semantics: the primary future
receives the full fresh :class:`~repro.core.autotune.engine.TuningResult`,
and each coalesced future is answered from the database record the run just
stored (a ``from_cache`` single-trial result — exactly what a later
sequential ``tune()`` against the shared database would have returned).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.autotune.database import TuningDatabase
from ..core.autotune.engine import AutoTuningEngine, TuningResult, TuningSession
from .coalescer import RequestCoalescer
from .futures import TuningFuture
from .request import TuningRequest

__all__ = ["ServiceStats", "TuningService"]


@dataclass
class ServiceStats:
    """Accounting of how the service's work was satisfied.

    ``measurements`` counts actual simulator executions across all finished
    runs — the coalescing tests assert that N identical requests leave this
    equal to a single direct run's count.
    """

    requests: int = 0
    coalesced: int = 0
    database_hits: int = 0
    tuning_runs: int = 0
    completed_runs: int = 0
    measurements: int = 0
    #: shared executor calls and how many lowered configs they carried.
    executor_calls: int = 0
    packed_configs: int = 0

    def describe(self) -> str:
        return (
            f"ServiceStats[{self.requests} requests -> {self.tuning_runs} runs "
            f"({self.coalesced} coalesced, {self.database_hits} db hits), "
            f"{self.measurements} measurements over {self.executor_calls} "
            f"executor calls]"
        )


@dataclass
class _ActiveRun:
    """One scheduled tuning run and its step-wise session."""

    request: TuningRequest
    engine: AutoTuningEngine
    session: TuningSession


class TuningService:
    """Schedule many tuning requests over shared measurement batches.

    Thread-safe: ``submit`` may be called from any thread, concurrently with
    a driver thread running :meth:`drain`.  Scheduling rounds serialise with
    submissions under one lock, so a request submitted mid-round joins the
    next round.
    """

    def __init__(self, database: Optional[TuningDatabase] = None) -> None:
        #: shared across all requests; pruned-domain results are stored here
        #: and repeat requests are answered from it.
        self.database = database if database is not None else TuningDatabase()
        self.coalescer = RequestCoalescer()
        self.stats = ServiceStats()
        self._active: List[_ActiveRun] = []
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    @property
    def num_active(self) -> int:
        with self._lock:
            return len(self._active)

    def submit(self, request: TuningRequest) -> TuningFuture:
        """Accept a request; returns immediately with a future.

        The request is answered from the database when covered, attached to
        an identical in-flight run when one exists, and scheduled as a new
        step-wise tuning session otherwise.
        """
        future = TuningFuture(request)
        with self._lock:
            self.stats.requests += 1
            entry = self.coalescer.get(request)
            if entry is not None:
                self.coalescer.join(future)
                self.stats.coalesced += 1
                return future
            if request.pruned:
                record = self.database.lookup(
                    request.params,
                    request.spec,
                    request.algorithm,
                    budget=request.max_measurements,
                    noise=request.noise,
                    noise_seed=request.noise_seed,
                )
                if record is not None:
                    self.stats.database_hits += 1
                    future.from_database = True
                    future._set_result(record.as_result())
                    return future
            self.coalescer.join(future)
            # The session consults no database itself — lookups and stores
            # are the service's job, so an in-flight run is never pre-empted.
            engine = request.make_engine(database=None)
            self._active.append(
                _ActiveRun(
                    request=request,
                    engine=engine,
                    session=engine.session(request.initial_random),
                )
            )
            self.stats.tuning_runs += 1
        return future

    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Run one scheduling round; returns False once no work remains.

        A round asks every active session for its next proposal batch,
        finalises the sessions that are done, and executes everyone else's
        lowered slices grouped per ``(GPU, noise conditions)`` through single
        packed executor calls.
        """
        with self._lock:
            if not self._active:
                return False
            # Phase 1: collect proposals; finalise finished sessions.
            work: List[Tuple[_ActiveRun, list, object]] = []
            for run in list(self._active):
                try:
                    configs = run.session.propose()
                    if not configs:
                        self._finalize(run)
                        continue
                    prepared = run.engine.measurer.prepare_batch(configs)
                except Exception as exc:  # defensive: fail only this run
                    self._fail(run, exc)
                    continue
                work.append((run, configs, prepared))

            # Phase 2: pack compatible slices into shared executor calls.
            groups: Dict[tuple, List[Tuple[_ActiveRun, list, object]]] = {}
            for item in work:
                groups.setdefault(item[0].request.executor_group(), []).append(item)
            for items in groups.values():
                to_run = [it for it in items if len(it[2]) > 0]
                executions_for = dict.fromkeys(map(id, items), ())
                if to_run:
                    executor = to_run[0][0].engine.measurer.executor
                    batches = [it[2].batch for it in to_run]
                    grouped = executor.run_batch_groups(batches)
                    self.stats.executor_calls += 1
                    self.stats.packed_configs += sum(len(b) for b in batches)
                    for it, executions in zip(to_run, grouped):
                        executions_for[id(it)] = executions
                # Phase 3: hand each session its own measurements back.
                for it in items:
                    run, configs, prepared = it
                    try:
                        results = run.engine.measurer.finish_batch(
                            prepared, executions_for[id(it)]
                        )
                        run.session.update(configs, results)
                    except Exception as exc:
                        self._fail(run, exc)
            return True

    def drain(self) -> None:
        """Run scheduling rounds until every submitted request is answered."""
        while self.step():
            pass

    def tune(self, requests: Sequence[TuningRequest]) -> List[TuningResult]:
        """Convenience: submit a workload, drain it, return results in order."""
        futures = [self.submit(r) for r in requests]
        self.drain()
        return [f.result() for f in futures]

    # ------------------------------------------------------------------ #
    def _finalize(self, run: _ActiveRun) -> None:
        """Store, answer and retire a finished run (lock held).

        The coalescer entry is popped only after every future is answered, so
        that a failure partway through (a raising database, say) leaves the
        entry reachable for :meth:`_fail` to answer the remaining futures
        with the exception.
        """
        result = run.session.result
        entry = self.coalescer.get(run.request)
        request = run.request
        stored = False
        if request.pruned and any(t.valid for t in result.trials):
            executor = run.engine.measurer.executor
            self.database.add_result(
                result,
                budget=request.max_measurements,
                noise=executor.noise,
                noise_seed=executor.seed,
            )
            stored = True
        entry.primary._set_result(result)
        for future in entry.attached:
            if stored:
                # Sequential shared-database semantics: a later identical
                # request would have been served the stored record.
                record = self.database.lookup(
                    request.params,
                    request.spec,
                    request.algorithm,
                    budget=request.max_measurements,
                    noise=request.noise,
                    noise_seed=request.noise_seed,
                )
                if record is not None:
                    future.from_database = True
                    future._set_result(record.as_result())
                    continue
            future._set_result(result)
        self.coalescer.discard(request)
        self._active.remove(run)
        self.stats.measurements += run.engine.measurer.num_measurements
        self.stats.completed_runs += 1

    def _fail(self, run: _ActiveRun, exc: BaseException) -> None:
        """Propagate a run's failure to all of its futures (lock held).

        Also reached when :meth:`_finalize` itself raises (e.g. a failing
        user-supplied database), so it must tolerate a run whose coalescer
        entry was already popped or whose futures are partially answered.
        """
        self.stats.completed_runs += 1
        self.stats.measurements += run.engine.measurer.num_measurements
        entry = self.coalescer.get(run.request)
        if entry is not None:
            self.coalescer.discard(run.request)
            for future in entry.futures:
                if not future.done():
                    future._set_exception(exc)
        if run in self._active:
            self._active.remove(run)

    def describe(self) -> str:
        return f"TuningService[{self.num_active} active, {self.stats.describe()}]"
