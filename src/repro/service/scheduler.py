"""The concurrent tuning service: coalesce, schedule, batch, serve.

:class:`TuningService` accepts conv-tuning requests
(:class:`~repro.service.request.TuningRequest`: layer parameters + GPU +
algorithm + **search tuner** + budget) and answers each with a
:class:`~repro.service.futures.TuningFuture`.  Every tuner in the repository
— the ATE engine, the TVM-style engine and all four baseline searches — runs
through the same step-wise session protocol
(:class:`~repro.core.autotune.session.TuningSessionProtocol`), so one
service schedules heterogeneous algorithms side by side.  Three mechanisms
remove the redundancy a naive per-request loop would pay:

1. **Database serving** — a pruned request whose ``(params, GPU, algorithm)``
   triple is already covered by the shared
   :class:`~repro.core.autotune.database.TuningDatabase` (budget and
   measurement conditions included) is answered at submit time with zero
   measurements.  The database is tuner-agnostic best-known-configuration
   storage; records carry the producing tuner's name.
2. **Request coalescing** — identical requests (tuner and hyperparameters
   included in the key) that arrive while a matching run is in flight attach
   to it instead of starting their own (:mod:`repro.service.coalescer`); N
   concurrent requests for the same search cost exactly one run.
3. **Cross-request measurement batching** — every scheduling round
   (:meth:`TuningService.step`) collects the next proposal batch of each
   *scheduled* tuning session, lowers each with its own
   :meth:`~repro.core.autotune.config.Measurer.prepare_batch`, and packs all
   slices that share a device and measurement conditions into one
   :meth:`~repro.gpusim.executor.GPUExecutor.run_batch_groups` call, keeping
   the vectorised executor's batches full even when individual requests
   propose small batches (a sequential SA chain proposes one configuration
   per round — packed with its neighbours it still rides full batches).

Which sessions are scheduled each round is a pluggable
:class:`~repro.service.policy.SchedulingPolicy` — uniform rounds (default),
budget-weighted fair share, or earliest-deadline-first — that controls
fairness and latency only, never trajectories.

Results are **bit-identical** to driving each request's tuner directly
(:meth:`~repro.service.request.TuningRequest.tune_direct`): sessions own all
randomness and consume measurements in proposal order, and the packed
executor call is element-wise (see ``GPUExecutor.run_batch_groups``).  For
duplicate (coalesced) requests the service mirrors the sequential
shared-database semantics: the primary future receives the full fresh
:class:`~repro.core.autotune.session.TuningResult`, and each coalesced
future is answered from the database record the run just stored (a
``from_cache`` single-trial result — exactly what a later sequential
``tune()`` against the shared database would have returned); duplicates of
runs that store nothing (unpruned requests) receive the full result.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.autotune.config import Measurer
from ..core.autotune.database import TuningDatabase, TuningRecord
from ..core.autotune.engine import TuningResult
from ..core.autotune.session import TuningSessionProtocol
from .coalescer import RequestCoalescer
from .futures import TuningFuture
from .policy import SchedulingPolicy, make_policy
from .request import TuningRequest

__all__ = ["ServiceStats", "TuningService"]


@dataclass
class ServiceStats:
    """Accounting of how the service's work was satisfied.

    ``measurements`` counts actual simulator executions across all finished
    runs — the coalescing tests assert that N identical requests leave this
    equal to a single direct run's count.
    """

    requests: int = 0
    coalesced: int = 0
    database_hits: int = 0
    tuning_runs: int = 0
    completed_runs: int = 0
    measurements: int = 0
    #: scheduling rounds the service has run (step() calls that found work).
    rounds: int = 0
    #: shared executor calls and how many lowered configs they carried.
    executor_calls: int = 0
    packed_configs: int = 0
    #: externally injected records (inject_records): how many arrived and how
    #: many actually improved the shared database (keep-better winners).
    records_injected: int = 0
    records_applied: int = 0

    def describe(self) -> str:
        return (
            f"ServiceStats[{self.requests} requests -> {self.tuning_runs} runs "
            f"({self.coalesced} coalesced, {self.database_hits} db hits), "
            f"{self.measurements} measurements over {self.executor_calls} "
            f"executor calls in {self.rounds} rounds]"
        )


@dataclass
class _ActiveRun:
    """One scheduled tuning run and its step-wise session.

    ``tuner`` is whatever the request named — an
    :class:`~repro.core.autotune.engine.AutoTuningEngine` or a
    :class:`~repro.core.autotune.baselines.BaselineTuner` — and only matters
    as the owner of the measurer the session's proposals are lowered with.
    """

    request: TuningRequest
    tuner: object
    session: TuningSessionProtocol

    @property
    def measurer(self) -> Measurer:
        return self.tuner.measurer


class TuningService:
    """Schedule many tuning requests over shared measurement batches.

    Thread-safe: ``submit`` may be called from any thread, concurrently with
    a driver thread running :meth:`drain`.  Scheduling rounds serialise with
    submissions under one lock, so a request submitted mid-round joins the
    next round.

    ``policy`` picks which active runs propose each round (see
    :mod:`repro.service.policy`); pass an instance or a registry name
    (``"uniform"``, ``"fair_share"``, ``"edf"``).
    """

    def __init__(
        self,
        database: Optional[TuningDatabase] = None,
        policy: Union[str, SchedulingPolicy, None] = None,
    ) -> None:
        #: shared across all requests; pruned-domain results are stored here
        #: and repeat requests are answered from it.
        self.database = database if database is not None else TuningDatabase()
        self.coalescer = RequestCoalescer()
        self.policy = make_policy(policy)
        self.stats = ServiceStats()
        self._active: List[_ActiveRun] = []
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    @property
    def num_active(self) -> int:
        with self._lock:
            return len(self._active)

    def submit(self, request: TuningRequest) -> TuningFuture:
        """Accept a request; returns immediately with a future.

        The request is answered from the database when covered, attached to
        an identical in-flight run when one exists, and scheduled as a new
        step-wise tuning session otherwise.
        """
        future = TuningFuture(request)
        with self._lock:
            self.stats.requests += 1
            entry = self.coalescer.get(request)
            if entry is not None:
                self.coalescer.join(future)
                self.stats.coalesced += 1
                return future
            if request.pruned:
                record = self.database.lookup(
                    request.params,
                    request.spec,
                    request.algorithm,
                    budget=request.max_measurements,
                    noise=request.noise,
                    noise_seed=request.noise_seed,
                )
                if record is not None:
                    self.stats.database_hits += 1
                    future.from_database = True
                    future._set_result(record.as_result())
                    return future
            self.coalescer.join(future)
            # The session consults no database itself — lookups and stores
            # are the service's job, so an in-flight run is never pre-empted.
            tuner, session = request.make_session()
            self._active.append(
                _ActiveRun(request=request, tuner=tuner, session=session)
            )
            self.stats.tuning_runs += 1
        return future

    def inject_records(
        self, records: Sequence[TuningRecord]
    ) -> List[TuningRecord]:
        """Fold externally produced records into the shared database.

        The streaming worker pool calls this between scheduling rounds with
        records tuned by *other* shards.  The fold is a monotonic keep-better
        :meth:`~repro.core.autotune.database.TuningDatabase.apply`, and it
        cannot perturb any in-flight run: sessions never consult the
        database mid-run (lookups happen only at :meth:`submit` time and when
        :meth:`_finalize` answers coalesced futures), so running trajectories
        stay bit-identical to :meth:`~repro.service.request.TuningRequest.tune_direct`
        whatever arrives here — only *new* submits (and coalesced duplicates
        of runs finishing after the injection, matching the sequential
        shared-database semantics) are served from injected records.

        Returns the records that actually changed the database.
        """
        with self._lock:
            records = list(records)
            applied = self.database.apply(records)
            self.stats.records_injected += len(records)
            self.stats.records_applied += len(applied)
            return applied

    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Run one scheduling round; returns False once no work remains.

        A round asks the :attr:`policy` which active sessions to schedule,
        collects those sessions' next proposal batches, finalises the ones
        that are done, and executes everyone else's lowered slices grouped
        per ``(GPU, noise conditions)`` through single packed executor calls.
        """
        with self._lock:
            if not self._active:
                return False
            self.stats.rounds += 1
            # Phase 0: the policy picks this round's runs.  Deduplicate,
            # drop anything the policy invented, and never accept an empty
            # selection — a policy bug must not stall the service.
            active = {id(run): run for run in self._active}
            selected: List[_ActiveRun] = []
            seen: set = set()
            for run in self.policy.select(list(self._active)):
                if id(run) in active and id(run) not in seen:
                    seen.add(id(run))
                    selected.append(run)
            if not selected:
                selected = list(self._active)

            # Phase 1: collect proposals; finalise finished sessions.
            work: List[Tuple[_ActiveRun, list, object]] = []
            for run in selected:
                try:
                    configs = run.session.propose()
                    if not configs:
                        self._finalize(run)
                        continue
                    prepared = run.measurer.prepare_batch(configs)
                except Exception as exc:  # defensive: fail only this run
                    self._fail(run, exc)
                    continue
                work.append((run, configs, prepared))

            # Phase 2: pack compatible slices into shared executor calls.
            groups: Dict[tuple, List[Tuple[_ActiveRun, list, object]]] = {}
            for item in work:
                groups.setdefault(item[0].request.executor_group(), []).append(item)
            for items in groups.values():
                to_run = [it for it in items if len(it[2]) > 0]
                executions_for = dict.fromkeys(map(id, items), ())
                if to_run:
                    executor = to_run[0][0].measurer.executor
                    batches = [it[2].batch for it in to_run]
                    grouped = executor.run_batch_groups(batches)
                    self.stats.executor_calls += 1
                    self.stats.packed_configs += sum(len(b) for b in batches)
                    for it, executions in zip(to_run, grouped):
                        executions_for[id(it)] = executions
                # Phase 3: hand each session its own measurements back.
                for it in items:
                    run, configs, prepared = it
                    try:
                        results = run.measurer.finish_batch(
                            prepared, executions_for[id(it)]
                        )
                        run.session.update(configs, results)
                    except Exception as exc:
                        self._fail(run, exc)
            return True

    def drain(self) -> None:
        """Run scheduling rounds until every submitted request is answered."""
        while self.step():
            pass

    def tune(self, requests: Sequence[TuningRequest]) -> List[TuningResult]:
        """Convenience: submit a workload, drain it, return results in order."""
        futures = [self.submit(r) for r in requests]
        self.drain()
        return [f.result() for f in futures]

    # ------------------------------------------------------------------ #
    def _finalize(self, run: _ActiveRun) -> None:
        """Store, answer and retire a finished run (lock held).

        The coalescer entry is popped only after every future is answered, so
        that a failure partway through (a raising database, say) leaves the
        entry reachable for :meth:`_fail` to answer the remaining futures
        with the exception.
        """
        result = run.session.result
        entry = self.coalescer.get(run.request)
        request = run.request
        stored = False
        if request.pruned and any(t.valid for t in result.trials):
            executor = run.measurer.executor
            self.database.add_result(
                result,
                budget=request.max_measurements,
                noise=executor.noise,
                noise_seed=executor.seed,
            )
            stored = True
        entry.primary._set_result(result)
        for future in entry.attached:
            if stored:
                # Sequential shared-database semantics: a later identical
                # request would have been served the stored record.
                record = self.database.lookup(
                    request.params,
                    request.spec,
                    request.algorithm,
                    budget=request.max_measurements,
                    noise=request.noise,
                    noise_seed=request.noise_seed,
                )
                if record is not None:
                    future.from_database = True
                    future._set_result(record.as_result())
                    continue
            future._set_result(result)
        self.coalescer.discard(request)
        self._active.remove(run)
        self.stats.measurements += run.measurer.num_measurements
        self.stats.completed_runs += 1

    def _fail(self, run: _ActiveRun, exc: BaseException) -> None:
        """Propagate a run's failure to all of its futures (lock held).

        Also reached when :meth:`_finalize` itself raises (e.g. a failing
        user-supplied database), so it must tolerate a run whose coalescer
        entry was already popped or whose futures are partially answered.
        """
        self.stats.completed_runs += 1
        self.stats.measurements += run.measurer.num_measurements
        entry = self.coalescer.get(run.request)
        if entry is not None:
            self.coalescer.discard(run.request)
            for future in entry.futures:
                if not future.done():
                    future._set_exception(exc)
        if run in self._active:
            self._active.remove(run)

    def describe(self) -> str:
        with self._lock:
            # The stats snapshot must not race a concurrent scheduling
            # round's counter updates (reprolint REPRO201); the re-entrant
            # lock keeps the nested num_active acquisition cheap.
            return f"TuningService[{self.num_active} active, {self.stats.describe()}]"
