"""The concurrent tuning service: coalesce, schedule, batch, serve.

:class:`TuningService` accepts conv-tuning requests
(:class:`~repro.service.request.TuningRequest`: layer parameters + GPU +
algorithm + **search tuner** + budget) and answers each with a
:class:`~repro.service.futures.TuningFuture`.  Every tuner in the repository
— the ATE engine, the TVM-style engine and all four baseline searches — runs
through the same step-wise session protocol
(:class:`~repro.core.autotune.session.TuningSessionProtocol`), so one
service schedules heterogeneous algorithms side by side.  Three mechanisms
remove the redundancy a naive per-request loop would pay:

1. **Database serving** — a pruned request whose ``(params, GPU, algorithm)``
   triple is already covered by the shared
   :class:`~repro.core.autotune.database.TuningDatabase` (budget and
   measurement conditions included) is answered at submit time with zero
   measurements.  The database is tuner-agnostic best-known-configuration
   storage; records carry the producing tuner's name.
2. **Request coalescing** — identical requests (tuner and hyperparameters
   included in the key) that arrive while a matching run is in flight attach
   to it instead of starting their own (:mod:`repro.service.coalescer`); N
   concurrent requests for the same search cost exactly one run.
3. **Cross-request measurement batching** — every scheduling round
   (:meth:`TuningService.step`) collects the next proposal batch of each
   *scheduled* tuning session, lowers each with its own
   :meth:`~repro.core.autotune.config.Measurer.prepare_batch`, and packs all
   slices that share a device and measurement conditions into one
   :meth:`~repro.gpusim.executor.GPUExecutor.run_batch_groups` call, keeping
   the vectorised executor's batches full even when individual requests
   propose small batches (a sequential SA chain proposes one configuration
   per round — packed with its neighbours it still rides full batches).

Which sessions are scheduled each round is a pluggable
:class:`~repro.service.policy.SchedulingPolicy` — uniform rounds (default),
budget-weighted fair share, or earliest-deadline-first — that controls
fairness and latency only, never trajectories.

Results are **bit-identical** to driving each request's tuner directly
(:meth:`~repro.service.request.TuningRequest.tune_direct`): sessions own all
randomness and consume measurements in proposal order, and the packed
executor call is element-wise (see ``GPUExecutor.run_batch_groups``).  For
duplicate (coalesced) requests the service mirrors the sequential
shared-database semantics: the primary future receives the full fresh
:class:`~repro.core.autotune.session.TuningResult`, and each coalesced
future is answered from the database record the run just stored (a
``from_cache`` single-trial result — exactly what a later sequential
``tune()`` against the shared database would have returned); duplicates of
runs that store nothing (unpruned requests) receive the full result.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.autotune.config import Measurer
from ..core.autotune.database import TuningDatabase, TuningRecord
from ..core.autotune.engine import TuningResult
from ..core.autotune.session import TuningSessionProtocol
from ..obs import (
    FILL_RATIO_BOUNDS,
    GROUP_COUNT_BOUNDS,
    LATENCY_BOUNDS,
    NULL_OBS,
    BATCH_SIZE_BOUNDS,
    MetricsRegistry,
    MetricsSnapshot,
    Observability,
)
from .coalescer import RequestCoalescer
from .errors import DeadlineExpired, RequestCancelled
from .futures import TuningFuture
from .policy import SchedulingPolicy, make_policy
from .request import TuningRequest

__all__ = ["ServiceStats", "TuningService"]


@dataclass
class ServiceStats:
    """Accounting of how the service's work was satisfied.

    ``measurements`` counts actual simulator executions across all finished
    runs — the coalescing tests assert that N identical requests leave this
    equal to a single direct run's count.

    Since the registry migration this dataclass is a *snapshot view*: the
    live counts are thread-safe :class:`~repro.obs.metrics.Counter`
    instruments on the service's accounting registry, and
    :attr:`TuningService.stats` materialises one consistent copy per read —
    mutating the returned object changes nothing in the service.
    """

    requests: int = 0
    coalesced: int = 0
    database_hits: int = 0
    tuning_runs: int = 0
    completed_runs: int = 0
    measurements: int = 0
    #: scheduling rounds the service has run (step() calls that found work).
    rounds: int = 0
    #: shared executor calls and how many lowered configs they carried.
    executor_calls: int = 0
    packed_configs: int = 0
    #: externally injected records (inject_records): how many arrived and how
    #: many actually improved the shared database (keep-better winners).
    records_injected: int = 0
    records_applied: int = 0

    def describe(self) -> str:
        return (
            f"ServiceStats[{self.requests} requests -> {self.tuning_runs} runs "
            f"({self.coalesced} coalesced, {self.database_hits} db hits), "
            f"{self.measurements} measurements over {self.executor_calls} "
            f"executor calls in {self.rounds} rounds]"
        )


@dataclass
class _ActiveRun:
    """One scheduled tuning run and its step-wise session.

    ``tuner`` is whatever the request named — an
    :class:`~repro.core.autotune.engine.AutoTuningEngine` or a
    :class:`~repro.core.autotune.baselines.BaselineTuner` — and only matters
    as the owner of the measurer the session's proposals are lowered with.
    """

    request: TuningRequest
    tuner: object
    session: TuningSessionProtocol

    @property
    def measurer(self) -> Measurer:
        return self.tuner.measurer


class TuningService:
    """Schedule many tuning requests over shared measurement batches.

    Thread-safe: ``submit`` may be called from any thread, concurrently with
    a driver thread running :meth:`drain`.  Scheduling rounds serialise with
    submissions under one lock, so a request submitted mid-round joins the
    next round.

    ``policy`` picks which active runs propose each round (see
    :mod:`repro.service.policy`); pass an instance or a registry name
    (``"uniform"``, ``"fair_share"``, ``"edf"``).

    ``obs`` is an optional :class:`~repro.obs.Observability` bundle.  The
    accounting behind :attr:`stats` is always live (a private registry of
    thread-safe counters — that is what makes :attr:`stats` reads race-free);
    ``obs`` only adds the extras: packing histograms, per-policy pick
    latency, spans, and database/measurer/engine telemetry.  Observability
    is write-only — it never touches session RNG or database state, so
    trajectories stay bit-identical with it enabled or disabled.
    """

    def __init__(
        self,
        database: Optional[TuningDatabase] = None,
        policy: Union[str, SchedulingPolicy, None] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        #: shared across all requests; pruned-domain results are stored here
        #: and repeat requests are answered from it.
        self.database = database if database is not None else TuningDatabase()
        self.coalescer = RequestCoalescer()
        self.policy = make_policy(policy)
        self.obs = obs if obs is not None else NULL_OBS
        # Always-live accounting registry: one counter per ServiceStats
        # field, pre-bound so the scheduling hot paths pay one attribute
        # load + one locked increment each.
        self._metrics = MetricsRegistry()
        acc = self._metrics.scope("service")
        self._c_requests = acc.counter("requests")
        self._c_coalesced = acc.counter("coalesced")
        self._c_database_hits = acc.counter("database_hits")
        self._c_tuning_runs = acc.counter("tuning_runs")
        self._c_completed_runs = acc.counter("completed_runs")
        self._c_measurements = acc.counter("measurements")
        self._c_rounds = acc.counter("rounds")
        self._c_executor_calls = acc.counter("executor_calls")
        self._c_packed_configs = acc.counter("packed_configs")
        self._c_records_injected = acc.counter("records_injected")
        self._c_records_applied = acc.counter("records_applied")
        # Observability extras (null no-op instruments when obs is disabled).
        reg = self.obs.registry
        self._h_fill_ratio = reg.histogram("service.pack.fill_ratio", FILL_RATIO_BOUNDS)
        self._h_call_configs = reg.histogram(
            "service.pack.configs_per_call", BATCH_SIZE_BOUNDS
        )
        self._h_call_sessions = reg.histogram(
            "service.pack.sessions_per_call", GROUP_COUNT_BOUNDS
        )
        self._h_policy_select = reg.histogram(
            f"service.policy.{self.policy.name}.select_seconds", LATENCY_BOUNDS
        )
        self._tracer = self.obs.tracer
        self._clock = self.obs.clock
        if self.obs.enabled:
            self.database.attach_metrics(reg.scope("db"))
        self._active: List[_ActiveRun] = []
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> ServiceStats:
        """One consistent accounting snapshot (see :class:`ServiceStats`).

        Reads go through the registry's locked snapshot, so a caller reading
        stats while a scheduling round or a submitting thread mutates them
        sees a coherent point-in-time copy, never a torn read.
        """
        c = self._metrics.snapshot().counters
        return ServiceStats(
            requests=c.get("service.requests", 0),
            coalesced=c.get("service.coalesced", 0),
            database_hits=c.get("service.database_hits", 0),
            tuning_runs=c.get("service.tuning_runs", 0),
            completed_runs=c.get("service.completed_runs", 0),
            measurements=c.get("service.measurements", 0),
            rounds=c.get("service.rounds", 0),
            executor_calls=c.get("service.executor_calls", 0),
            packed_configs=c.get("service.packed_configs", 0),
            records_injected=c.get("service.records_injected", 0),
            records_applied=c.get("service.records_applied", 0),
        )

    def metrics_snapshot(self) -> MetricsSnapshot:
        """Point-in-time snapshot of the service's accounting registry.

        The ``service.*``-named half of the telemetry; the observability
        extras live on ``self.obs`` and are snapshotted separately (a worker
        shard ships both merged — see ``TuningWorkerPool``).
        """
        return self._metrics.snapshot()

    @property
    def num_active(self) -> int:
        with self._lock:
            return len(self._active)

    def submit(self, request: TuningRequest) -> TuningFuture:
        """Accept a request; returns immediately with a future.

        The request is answered from the database when covered, attached to
        an identical in-flight run when one exists, and scheduled as a new
        step-wise tuning session otherwise.

        A request whose ``deadline`` has already passed (measured against
        the service clock — a real clock only when one was injected at the
        edge) raises :class:`~repro.service.errors.DeadlineExpired` up
        front: it is never admitted only to be timed out later.
        """
        future = TuningFuture(request)
        with self._lock:
            if request.deadline is not None and request.deadline < self._clock.now():
                raise DeadlineExpired(
                    f"deadline {request.deadline} already passed at submit "
                    f"(now {self._clock.now()}); rejected up front, not admitted"
                )
            self._c_requests.inc()
            entry = self.coalescer.get(request)
            if entry is not None:
                self.coalescer.join(future)
                self._c_coalesced.inc()
                return future
            if request.pruned:
                record = self.database.lookup(
                    request.params,
                    request.spec,
                    request.algorithm,
                    budget=request.max_measurements,
                    noise=request.noise,
                    noise_seed=request.noise_seed,
                )
                if record is not None:
                    self._c_database_hits.inc()
                    future.from_database = True
                    future._set_result(record.as_result())
                    return future
            self.coalescer.join(future)
            # The session consults no database itself — lookups and stores
            # are the service's job, so an in-flight run is never pre-empted.
            tuner, session = request.make_session()
            if self.obs.enabled:
                # Fleet-aggregated telemetry for the run's measurement and
                # search machinery; attached before the first proposal so
                # nothing is missed, and write-only so nothing is perturbed.
                run_tuner_attach = getattr(tuner, "attach_metrics", None)
                if run_tuner_attach is not None:
                    run_tuner_attach(self.obs.scope("engine"))
                tuner.measurer.attach_metrics(self.obs.scope("measurer"))
            self._active.append(
                _ActiveRun(request=request, tuner=tuner, session=session)
            )
            self._c_tuning_runs.inc()
        return future

    def inject_records(
        self, records: Sequence[TuningRecord]
    ) -> List[TuningRecord]:
        """Fold externally produced records into the shared database.

        The streaming worker pool calls this between scheduling rounds with
        records tuned by *other* shards.  The fold is a monotonic keep-better
        :meth:`~repro.core.autotune.database.TuningDatabase.apply`, and it
        cannot perturb any in-flight run: sessions never consult the
        database mid-run (lookups happen only at :meth:`submit` time and when
        :meth:`_finalize` answers coalesced futures), so running trajectories
        stay bit-identical to :meth:`~repro.service.request.TuningRequest.tune_direct`
        whatever arrives here — only *new* submits (and coalesced duplicates
        of runs finishing after the injection, matching the sequential
        shared-database semantics) are served from injected records.

        Returns the records that actually changed the database.
        """
        with self._lock:
            records = list(records)
            applied = self.database.apply(records)
            self._c_records_injected.inc(len(records))
            self._c_records_applied.inc(len(applied))
            return applied

    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Run one scheduling round; returns False once no work remains.

        A round asks the :attr:`policy` which active sessions to schedule,
        collects those sessions' next proposal batches, finalises the ones
        that are done, and executes everyone else's lowered slices grouped
        per ``(GPU, noise conditions)`` through single packed executor calls.
        """
        with self._lock:
            if not self._active:
                return False
            self._c_rounds.inc()
            with self._tracer.span("service.step", active=len(self._active)):
                # Phase 0: the policy picks this round's runs.  Deduplicate,
                # drop anything the policy invented, and never accept an empty
                # selection — a policy bug must not stall the service.
                active = {id(run): run for run in self._active}
                selected: List[_ActiveRun] = []
                seen: set = set()
                select_start = self._clock.now()
                picked = self.policy.select(list(self._active))
                self._h_policy_select.observe(self._clock.now() - select_start)
                for run in picked:
                    if id(run) in active and id(run) not in seen:
                        seen.add(id(run))
                        selected.append(run)
                if not selected:
                    selected = list(self._active)

                # Phase 1: collect proposals; finalise finished sessions.
                work: List[Tuple[_ActiveRun, list, object]] = []
                for run in selected:
                    try:
                        configs = run.session.propose()
                        if not configs:
                            self._finalize(run)
                            continue
                        prepared = run.measurer.prepare_batch(configs)
                    except Exception as exc:  # defensive: fail only this run
                        self._fail(run, exc)
                        continue
                    work.append((run, configs, prepared))

                # Phase 2: pack compatible slices into shared executor calls.
                groups: Dict[tuple, List[Tuple[_ActiveRun, list, object]]] = {}
                for item in work:
                    groups.setdefault(item[0].request.executor_group(), []).append(item)
                for items in groups.values():
                    to_run = [it for it in items if len(it[2]) > 0]
                    executions_for = dict.fromkeys(map(id, items), ())
                    if to_run:
                        executor = to_run[0][0].measurer.executor
                        batches = [it[2].batch for it in to_run]
                        grouped = executor.run_batch_groups(batches)
                        self._c_executor_calls.inc()
                        packed = sum(len(b) for b in batches)
                        self._c_packed_configs.inc(packed)
                        # Packing telemetry: how full the shared call was
                        # relative to its largest single slice (1.0 = no
                        # cross-request benefit, higher = better packing).
                        self._h_call_configs.observe(packed)
                        self._h_call_sessions.observe(len(to_run))
                        self._h_fill_ratio.observe(
                            packed / max(len(b) for b in batches)
                        )
                        for it, executions in zip(to_run, grouped):
                            executions_for[id(it)] = executions
                    # Phase 3: hand each session its own measurements back.
                    for it in items:
                        run, configs, prepared = it
                        try:
                            results = run.measurer.finish_batch(
                                prepared, executions_for[id(it)]
                            )
                            run.session.update(configs, results)
                        except Exception as exc:
                            self._fail(run, exc)
            return True

    def cancel(
        self,
        request: TuningRequest,
        exc: Optional[BaseException] = None,
        *,
        future: Optional[TuningFuture] = None,
    ) -> bool:
        """Cancel ``request``'s in-flight run — or just one waiter on it.

        Without ``future`` the whole run is cancelled: every future attached
        to it (the primary and any coalesced duplicates) receives ``exc`` —
        default :class:`~repro.service.errors.RequestCancelled` — and the
        run's measurements-so-far are accounted exactly like a failed run.

        With ``future`` (the cancelling submitter's own future) only *that*
        waiter is detached and answered with ``exc`` while other undone
        waiters remain — their deadlines have not expired just because one
        submitter's did, so the run keeps going for them.  The run is failed
        outright only when the cancelling future is its last surviving
        waiter.  The daemon's per-request timeouts pass their future here;
        the daemon is its run's only submitter (identical requests share a
        rid), so for it the two shapes coincide.

        Returns False when nothing was cancelled: no matching active run,
        or ``future`` was given but is already answered or detached.
        """
        with self._lock:
            for run in self._active:
                if run.request == request:
                    error = (
                        exc
                        if exc is not None
                        else RequestCancelled(f"cancelled: {request.describe()}")
                    )
                    if future is not None:
                        entry = self.coalescer.get(request)
                        if (
                            entry is None
                            or future not in entry.futures
                            or future.done()
                        ):
                            return False
                        survivors = [
                            f
                            for f in entry.futures
                            if f is not future and not f.done()
                        ]
                        if survivors:
                            # Detach just this waiter; the run (and every
                            # other waiter's future) is untouched.
                            entry.futures.remove(future)
                            future._set_exception(error)
                            return True
                    self._fail(run, error)
                    return True
            return False

    def drain(self) -> None:
        """Run scheduling rounds until every submitted request is answered."""
        while self.step():
            pass

    def tune(self, requests: Sequence[TuningRequest]) -> List[TuningResult]:
        """Convenience: submit a workload, drain it, return results in order."""
        futures = [self.submit(r) for r in requests]
        self.drain()
        return [f.result() for f in futures]

    # ------------------------------------------------------------------ #
    def _finalize(self, run: _ActiveRun) -> None:
        """Store, answer and retire a finished run (lock held).

        The coalescer entry is popped only after every future is answered, so
        that a failure partway through (a raising database, say) leaves the
        entry reachable for :meth:`_fail` to answer the remaining futures
        with the exception.
        """
        result = run.session.result
        entry = self.coalescer.get(run.request)
        request = run.request
        stored = False
        if request.pruned and any(t.valid for t in result.trials):
            executor = run.measurer.executor
            self.database.put(
                TuningRecord.from_result(
                    result,
                    budget=request.max_measurements,
                    noise=executor.noise,
                    noise_seed=executor.seed,
                )
            )
            stored = True
        entry.primary._set_result(result)
        for future in entry.attached:
            if stored:
                # Sequential shared-database semantics: a later identical
                # request would have been served the stored record.
                record = self.database.lookup(
                    request.params,
                    request.spec,
                    request.algorithm,
                    budget=request.max_measurements,
                    noise=request.noise,
                    noise_seed=request.noise_seed,
                )
                if record is not None:
                    future.from_database = True
                    future._set_result(record.as_result())
                    continue
            future._set_result(result)
        self.coalescer.discard(request)
        self._active.remove(run)
        self._c_measurements.inc(run.measurer.num_measurements)
        self._c_completed_runs.inc()

    def _fail(self, run: _ActiveRun, exc: BaseException) -> None:
        """Propagate a run's failure to all of its futures (lock held).

        Also reached when :meth:`_finalize` itself raises (e.g. a failing
        user-supplied database), so it must tolerate a run whose coalescer
        entry was already popped or whose futures are partially answered.
        """
        self._c_completed_runs.inc()
        self._c_measurements.inc(run.measurer.num_measurements)
        entry = self.coalescer.get(run.request)
        if entry is not None:
            self.coalescer.discard(run.request)
            for future in entry.futures:
                if not future.done():
                    future._set_exception(exc)
        if run in self._active:
            self._active.remove(run)

    def describe(self) -> Dict[str, object]:
        """JSON-native status snapshot (see the satellite redesign: the
        future daemon serves this over the wire; render it with
        :func:`repro.obs.format_describe` for humans)."""
        with self._lock:
            # num_active under the lock for a coherent pairing with the
            # stats snapshot (itself race-free: the property reads a locked
            # registry snapshot, satisfying reprolint REPRO201 by design).
            return {
                "kind": "TuningService",
                "active": self.num_active,
                "policy": self.policy.name,
                "stats": dataclasses.asdict(self.stats),
                "database": self.database.describe(),
            }
