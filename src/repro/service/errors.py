"""Typed request-lifecycle errors shared by the scheduler, daemon and client.

The always-on daemon's robustness contract is that a submit can never hang
or fail anonymously: every outcome is either a result or one of these typed
errors, each carrying a stable wire ``code`` so the error survives a JSON
round trip (:meth:`RequestError.to_wire` / :func:`error_from_wire`) and the
client can branch on class, not on message text.

``retryable`` encodes the retry policy the daemon promises:

* :class:`Overloaded` (code ``RETRY_AFTER``) — admission control pushed
  back; retrying after ``retry_after`` seconds (with backoff + jitter) is
  expected to succeed.  Idempotent resubmits coalesce on the request id, so
  retrying is always safe.
* :class:`NotReady` — the request is journaled and in flight; polling again
  is the protocol, not an error condition.
* Everything else is terminal for the attempt: a malformed request, an
  already-passed deadline, a draining daemon, a per-request timeout, or the
  run itself failing.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

__all__ = [
    "BadRequest",
    "DaemonDraining",
    "DeadlineExpired",
    "NotReady",
    "Overloaded",
    "RequestCancelled",
    "RequestError",
    "RequestFailed",
    "RequestTimeout",
    "UnknownRequest",
    "error_from_wire",
]


class RequestError(Exception):
    """Base of every typed request-lifecycle error.

    ``code`` is the stable wire discriminator; ``retry_after`` (seconds,
    optional) is the server's hint for when a retry could succeed — only
    meaningful on retryable errors.
    """

    code = "ERROR"
    retryable = False

    def __init__(self, message: str = "", *, retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after

    @property
    def message(self) -> str:
        return str(self)

    def to_wire(self) -> Dict[str, object]:
        """JSON-native form: ``{"code", "message"[, "retry_after"]}``."""
        wire: Dict[str, object] = {"code": self.code, "message": self.message}
        if self.retry_after is not None:
            wire["retry_after"] = float(self.retry_after)
        return wire


class BadRequest(RequestError):
    """The payload is not a decodable/valid tuning request or wire op."""

    code = "BAD_REQUEST"


class DeadlineExpired(RequestError):
    """The request's deadline had already passed at submit time.

    Rejected up front — never admitted, journaled, or timed out later."""

    code = "DEADLINE_EXPIRED"


class Overloaded(RequestError):
    """Admission control rejected the submit (queue depth or rate limit).

    The typed ``RETRY_AFTER`` rejection: the daemon answers immediately
    instead of queueing unboundedly, and the client backs off and retries."""

    code = "RETRY_AFTER"
    retryable = True


class DaemonDraining(RequestError):
    """The daemon is draining: in-flight work finishes, admissions stop."""

    code = "DRAINING"


class RequestTimeout(RequestError):
    """The per-request timeout elapsed; the run was cancelled cleanly."""

    code = "TIMEOUT"


class RequestCancelled(RequestError):
    """The run was cancelled before finishing (no more specific cause)."""

    code = "CANCELLED"


class NotReady(RequestError):
    """The request is journaled and in flight; poll again for the result."""

    code = "NOT_READY"
    retryable = True


class UnknownRequest(RequestError):
    """No journal entry for this request id (never accepted here)."""

    code = "UNKNOWN_REQUEST"


class RequestFailed(RequestError):
    """The tuning run itself raised; the message carries the cause."""

    code = "FAILED"


_BY_CODE: Dict[str, Type[RequestError]] = {
    cls.code: cls
    for cls in (
        BadRequest,
        DeadlineExpired,
        Overloaded,
        DaemonDraining,
        RequestTimeout,
        RequestCancelled,
        NotReady,
        UnknownRequest,
        RequestFailed,
    )
}


def error_from_wire(wire: Dict[str, object]) -> RequestError:
    """Reconstruct the typed error a reply's ``error`` dict encodes.

    Unknown codes decode to the :class:`RequestError` base (with the code
    preserved in the message) rather than raising — a newer daemon must be
    able to reject an older client intelligibly.
    """
    code = str(wire.get("code", "ERROR"))
    message = str(wire.get("message", ""))
    retry_after = wire.get("retry_after")
    cls = _BY_CODE.get(code)
    if cls is None:
        return RequestError(
            f"[{code}] {message}",
            retry_after=None if retry_after is None else float(retry_after),
        )
    return cls(
        message, retry_after=None if retry_after is None else float(retry_after)
    )
