"""Futures: the result-delivery half of the tuning service's API.

:meth:`~repro.service.scheduler.TuningService.submit` returns immediately
with a :class:`TuningFuture`; the caller blocks on :meth:`TuningFuture.result`
(or polls :meth:`TuningFuture.done`) while the service coalesces, schedules
and batch-measures the request.  The flags record how the request was
satisfied — served straight from the database at submit time, coalesced onto
an identical in-flight request, or tuned by its own run.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.autotune.engine import TuningResult
    from .request import TuningRequest

__all__ = ["TuningFuture"]


class TuningFuture:
    """Pending outcome of one submitted :class:`~repro.service.TuningRequest`."""

    def __init__(self, request: "TuningRequest") -> None:
        self.request = request
        #: True when this request joined an identical in-flight run instead
        #: of starting its own.
        self.coalesced = False
        #: True when the result came from the shared TuningDatabase (either a
        #: submit-time hit or a coalesced request answered by the record the
        #: primary run stored).
        self.from_database = False
        self._event = threading.Event()
        self._result: Optional["TuningResult"] = None
        self._exception: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> "TuningResult":
        """Block until the result is available and return it.

        Raises the run's exception if tuning failed, or ``TimeoutError`` if
        ``timeout`` (seconds) elapses first.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"tuning result not ready within {timeout}s for {self.request.describe()}"
            )
        if self._exception is not None:
            raise self._exception
        assert self._result is not None
        return self._result

    # -- service-side completion ---------------------------------------- #
    def _set_result(self, result: "TuningResult") -> None:
        self._result = result
        self._event.set()

    def _set_exception(self, exc: BaseException) -> None:
        self._exception = exc
        self._event.set()
