"""Scheduling policies: which active runs propose in each service round.

Every :meth:`~repro.service.scheduler.TuningService.step` asks its
:class:`SchedulingPolicy` to pick the subset of active runs that propose
(and therefore measure) this round.  The policy decides *fairness and
latency only* — it never changes any run's trajectory, because each session
owns its randomness and consumes measurements strictly in its own proposal
order; scheduling merely interleaves whole rounds of different sessions.

Three policies ship:

* :class:`UniformPolicy` (default) — every active run proposes every round,
  maximising cross-request packing (the pre-policy behaviour);
* :class:`FairSharePolicy` — budget-weighted fair share: each round steps
  the run(s) with the lowest fraction of their measurement budget spent, so
  concurrent requests make progress proportional to their budgets (a
  64-measurement request gets 4x the measurements of a 16-measurement
  request at any instant) and heterogeneous workloads finish together
  instead of small requests draining first;
* :class:`EarliestDeadlinePolicy` — earliest-deadline-first over the
  optional :attr:`~repro.service.request.TuningRequest.deadline` field
  (smaller = more urgent, ``None`` = no deadline): the most urgent run(s)
  monopolise the measurement pipeline until they finish; with no deadlines
  anywhere it degrades to the uniform policy.

Policies are stateless and picklable, so a
:class:`~repro.service.pool.TuningWorkerPool` can forward one to its worker
processes; pass either an instance or its :attr:`~SchedulingPolicy.name`
string to ``TuningService(policy=...)``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Dict, List, Sequence, Type, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .scheduler import _ActiveRun

__all__ = [
    "SchedulingPolicy",
    "UniformPolicy",
    "FairSharePolicy",
    "EarliestDeadlinePolicy",
    "make_policy",
]


class SchedulingPolicy:
    """Chooses which active runs propose in a scheduling round.

    :meth:`select` receives the service's active runs (objects exposing
    ``request`` and ``session``) and returns the non-empty subset that should
    propose this round; the scheduler ignores duplicates and entries it does
    not recognise, and falls back to stepping everyone if a policy returns
    nothing — a policy bug must never stall the service.
    """

    #: registry name accepted by ``TuningService(policy=...)``.
    name = "uniform"

    def select(self, runs: Sequence["_ActiveRun"]) -> List["_ActiveRun"]:
        """Default: everybody proposes (maximum packing)."""
        return list(runs)

    def describe(self) -> str:
        return f"{type(self).__name__}[{self.name}]"


class UniformPolicy(SchedulingPolicy):
    """Every active run proposes every round — the throughput-first default."""


class FairSharePolicy(SchedulingPolicy):
    """Budget-weighted fair share (progress-proportional rounds).

    A run's *progress* is ``measurements_taken / max_measurements`` — kept as
    an exact :class:`~fractions.Fraction` so ties are deterministic — and
    each round steps exactly the runs whose progress is minimal.  Equal
    budgets therefore round-robin in lockstep, while a request with 4x the
    budget of its neighbour is scheduled 4x as often, keeping every client's
    normalised progress within one proposal batch of the others.
    """

    name = "fair_share"

    def select(self, runs: Sequence["_ActiveRun"]) -> List["_ActiveRun"]:
        progress: Dict[int, Fraction] = {
            id(run): Fraction(
                run.session.result.num_measurements,
                max(1, run.request.max_measurements),
            )
            for run in runs
        }
        lowest = min(progress.values(), default=Fraction(0))
        return [run for run in runs if progress[id(run)] == lowest]


class EarliestDeadlinePolicy(SchedulingPolicy):
    """Earliest-deadline-first over ``TuningRequest.deadline``.

    The run(s) with the smallest deadline get the whole measurement pipeline
    until they finish; runs without a deadline (``None``) only proceed once
    no deadlined run remains.  A workload with no deadlines at all behaves
    exactly like :class:`UniformPolicy`.
    """

    name = "edf"

    @staticmethod
    def _deadline(run: "_ActiveRun") -> float:
        deadline = run.request.deadline
        return float("inf") if deadline is None else float(deadline)

    def select(self, runs: Sequence["_ActiveRun"]) -> List["_ActiveRun"]:
        if not runs:
            return []
        earliest = min(self._deadline(run) for run in runs)
        return [run for run in runs if self._deadline(run) == earliest]


_REGISTRY: Dict[str, Type[SchedulingPolicy]] = {
    cls.name: cls for cls in (UniformPolicy, FairSharePolicy, EarliestDeadlinePolicy)
}


def make_policy(policy: Union[str, SchedulingPolicy, None]) -> SchedulingPolicy:
    """Normalise a policy argument: instance, registry name, or None."""
    if policy is None:
        return UniformPolicy()
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return _REGISTRY[policy]()
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {policy!r}; expected one of {sorted(_REGISTRY)}"
        ) from None
