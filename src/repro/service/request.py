"""Tuning requests: the unit of work the tuning service schedules.

A :class:`TuningRequest` pins down *everything* that determines the outcome
of an auto-tuning run — the convolution problem, the target GPU, the
algorithm template, the **search algorithm** (any tuner: the ATE engine or
one of the baseline tuners, plus its hyperparameters), the search budget and
batch shape, the RNG seed, and the measurement conditions (executor noise
amplitude/seed).  Because the request is a frozen dataclass of hashable
fields, the request itself is the coalescing key: two requests compare equal
exactly when running their tuner directly would produce bit-identical
results, so the service can safely answer both from one tuning run.

The only non-identity field is ``deadline`` — pure scheduling metadata for
deadline-aware policies (see :mod:`repro.service.policy`); two requests that
differ only in urgency still coalesce onto one run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Tuple, Union

from ..conv.tensor import ConvParams
from ..core.autotune.baselines import (
    BaselineTuner,
    GeneticTuner,
    ParallelTemperingSATuner,
    RandomSearchTuner,
    SimulatedAnnealingTuner,
    TVMStyleTuner,
)
from ..core.autotune.config import Measurer
from ..core.autotune.engine import AutoTuningEngine, TuningResult
from ..core.autotune.session import TuningSessionProtocol
from ..gpusim.spec import GPUSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.autotune.database import TuningDatabase

__all__ = ["TUNERS", "TuningRequest"]

#: defaults mirroring Measurer's measurement conditions.
_DEFAULT_NOISE = 0.05
_DEFAULT_NOISE_SEED = 2021

#: search algorithms a request may name.  ``"ate"`` and ``"tvm_style"`` are
#: engine-backed (cost model + explorer); the rest are baseline tuners.
TUNERS = ("ate", "tvm_style", "random", "simulated_annealing", "sa_tempering", "genetic")

_BASELINE_CLASSES = {
    "random": RandomSearchTuner,
    "simulated_annealing": SimulatedAnnealingTuner,
    "sa_tempering": ParallelTemperingSATuner,
    "genetic": GeneticTuner,
}


@dataclass(frozen=True)
class TuningRequest:
    """One conv-tuning request: problem + GPU + algorithm + tuner + budget.

    ``tuner`` names the search algorithm (see :data:`TUNERS`) and
    ``tuner_params`` its hyperparameters as a sorted tuple of ``(name,
    value)`` pairs — a plain dict is accepted and normalised, and both join
    the frozen coalescing key, so requests running different searches (or
    the same search with different knobs) never share a run.  ``pruned``
    selects the searching domain (the ATE's Table 1 domain when True, the
    unpruned TVM-style space when False; only pruned requests may be served
    from or stored to a shared
    :class:`~repro.core.autotune.database.TuningDatabase` — the database is
    tuner-agnostic "best known configuration" storage, its records carry the
    producing tuner's name).  ``noise`` and ``noise_seed`` are the executor's
    measurement conditions — requests measured under different conditions
    never coalesce because their times would not be comparable.  ``deadline``
    (optional, smaller = more urgent) is scheduling metadata only: it is
    excluded from equality/hash, so identical requests with different
    deadlines still coalesce.
    """

    params: ConvParams
    spec: GPUSpec
    algorithm: str = "direct"
    max_measurements: int = 256
    batch_size: int = 16
    initial_random: int = 16
    patience: int = 6
    seed: int = 0
    pruned: bool = True
    noise: float = _DEFAULT_NOISE
    noise_seed: int = _DEFAULT_NOISE_SEED
    tuner: str = "ate"
    tuner_params: Tuple[Tuple[str, Union[int, float]], ...] = ()
    deadline: Optional[float] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.algorithm not in ("direct", "winograd"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.max_measurements < 1 or self.batch_size < 1:
            raise ValueError("max_measurements and batch_size must be >= 1")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if self.tuner not in TUNERS:
            raise ValueError(f"unknown tuner {self.tuner!r}; expected one of {TUNERS}")
        if isinstance(self.tuner_params, Mapping):
            items = self.tuner_params.items()
        else:
            items = (tuple(pair) for pair in self.tuner_params)
        # Sorted canonical form whatever the input order: two requests with
        # the same hyperparameters must share one coalescing key.
        object.__setattr__(self, "tuner_params", tuple(sorted(items)))
        if self.tuner in ("ate", "tvm_style") and self.tuner_params:
            raise ValueError(
                f"{self.tuner!r} takes its hyperparameters from the request fields "
                "(batch_size / initial_random / patience); tuner_params must be empty"
            )
        if self.tuner == "tvm_style" and self.pruned:
            raise ValueError("tvm_style tunes the unpruned space; pass pruned=False")
        if self.deadline is not None:
            if not isinstance(self.deadline, (int, float)) or self.deadline != self.deadline:
                raise ValueError("deadline must be a number or None")

    # ------------------------------------------------------------------ #
    def executor_group(self) -> tuple:
        """Measurement-compatibility key: requests in the same group may be
        packed into one executor call (same device, same noise conditions)."""
        return (self.spec, self.noise, self.noise_seed)

    def make_measurer(self) -> Measurer:
        return Measurer(self.params, self.spec, noise=self.noise, seed=self.noise_seed)

    def make_engine(
        self, database: Optional["TuningDatabase"] = None
    ) -> AutoTuningEngine:
        """Instantiate the engine an ``"ate"``/``"tvm_style"`` request names.

        Driving ``engine.tune(initial_random=self.initial_random)`` directly
        and scheduling the request through the service yield bit-identical
        results — that equivalence is the service's core contract.
        """
        cls = TVMStyleTuner if self.tuner == "tvm_style" else AutoTuningEngine
        return cls(
            self.params,
            self.spec,
            algorithm=self.algorithm,
            batch_size=self.batch_size,
            max_measurements=self.max_measurements,
            patience=self.patience,
            seed=self.seed,
            pruned=self.pruned,
            measurer=self.make_measurer(),
            database=database,
        )

    def make_tuner(
        self, database: Optional["TuningDatabase"] = None
    ) -> Union[AutoTuningEngine, BaselineTuner]:
        """Instantiate whatever tuner this request names.

        Engine-backed tuners accept the optional ``database``; baseline
        tuners never consult one (their direct ``tune()`` has no database
        semantics), so it is ignored for them.
        """
        if self.tuner in ("ate", "tvm_style"):
            return self.make_engine(database=database)
        cls = _BASELINE_CLASSES[self.tuner]
        return cls(
            self.params,
            self.spec,
            algorithm=self.algorithm,
            max_measurements=self.max_measurements,
            seed=self.seed,
            pruned=self.pruned,
            measurer=self.make_measurer(),
            **dict(self.tuner_params),
        )

    def make_session(
        self,
    ) -> Tuple[Union[AutoTuningEngine, BaselineTuner], TuningSessionProtocol]:
        """A fresh tuner plus its step-wise session, ready for a scheduler.

        The tuner owns the measurer the session's proposals must be measured
        with (``tuner.measurer``); the session consults no database — lookups
        and stores are the driving service's job.
        """
        tuner = self.make_tuner(database=None)
        if isinstance(tuner, AutoTuningEngine):
            return tuner, tuner.session(self.initial_random)
        return tuner, tuner.session()

    def tune_direct(self) -> TuningResult:
        """Reference run: drive this request's tuner synchronously.

        No service, no shared database — exactly what a standalone caller
        would get.  The service's bit-identity property is defined (and
        tested) against this function.
        """
        tuner = self.make_tuner(database=None)
        if isinstance(tuner, AutoTuningEngine):
            return tuner.tune(initial_random=self.initial_random)
        return tuner.tune()

    def describe(self) -> str:
        return (
            f"TuningRequest[{self.tuner} {self.algorithm} {self.params.describe()} on "
            f"{self.spec.name}, budget={self.max_measurements}, seed={self.seed}]"
        )
