"""Tuning requests: the unit of work the tuning service schedules.

A :class:`TuningRequest` pins down *everything* that determines the outcome
of an auto-tuning run — the convolution problem, the target GPU, the
algorithm template, the search budget and batch shape, the RNG seed, and the
measurement conditions (executor noise amplitude/seed).  Because the request
is a frozen dataclass of hashable fields, the request itself is the
coalescing key: two requests compare equal exactly when driving
:class:`~repro.core.autotune.engine.AutoTuningEngine` with their parameters
would produce bit-identical results, so the service can safely answer both
from one tuning run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..conv.tensor import ConvParams
from ..core.autotune.config import Measurer
from ..core.autotune.engine import AutoTuningEngine
from ..gpusim.spec import GPUSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.autotune.database import TuningDatabase

__all__ = ["TuningRequest"]

#: defaults mirroring Measurer's measurement conditions.
_DEFAULT_NOISE = 0.05
_DEFAULT_NOISE_SEED = 2021


@dataclass(frozen=True)
class TuningRequest:
    """One conv-tuning request: layer parameters + GPU + algorithm + budget.

    ``pruned`` selects the searching domain (the ATE's Table 1 domain when
    True, the unpruned TVM-style space when False; only pruned requests may
    be served from or stored to a shared
    :class:`~repro.core.autotune.database.TuningDatabase`).  ``noise`` and
    ``noise_seed`` are the executor's measurement conditions — requests
    measured under different conditions never coalesce because their times
    would not be comparable.
    """

    params: ConvParams
    spec: GPUSpec
    algorithm: str = "direct"
    max_measurements: int = 256
    batch_size: int = 16
    initial_random: int = 16
    patience: int = 6
    seed: int = 0
    pruned: bool = True
    noise: float = _DEFAULT_NOISE
    noise_seed: int = _DEFAULT_NOISE_SEED

    def __post_init__(self) -> None:
        if self.algorithm not in ("direct", "winograd"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.max_measurements < 1 or self.batch_size < 1:
            raise ValueError("max_measurements and batch_size must be >= 1")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")

    # ------------------------------------------------------------------ #
    def executor_group(self) -> tuple:
        """Measurement-compatibility key: requests in the same group may be
        packed into one executor call (same device, same noise conditions)."""
        return (self.spec, self.noise, self.noise_seed)

    def make_measurer(self) -> Measurer:
        return Measurer(self.params, self.spec, noise=self.noise, seed=self.noise_seed)

    def make_engine(
        self, database: Optional["TuningDatabase"] = None
    ) -> AutoTuningEngine:
        """Instantiate the engine this request describes.

        Driving ``engine.tune(initial_random=self.initial_random)`` directly
        and scheduling the request through the service yield bit-identical
        results — that equivalence is the service's core contract.
        """
        return AutoTuningEngine(
            self.params,
            self.spec,
            algorithm=self.algorithm,
            batch_size=self.batch_size,
            max_measurements=self.max_measurements,
            patience=self.patience,
            seed=self.seed,
            pruned=self.pruned,
            measurer=self.make_measurer(),
            database=database,
        )

    def describe(self) -> str:
        return (
            f"TuningRequest[{self.algorithm} {self.params.describe()} on "
            f"{self.spec.name}, budget={self.max_measurements}, seed={self.seed}]"
        )
