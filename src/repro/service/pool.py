"""Sharded tuning across a multiprocessing worker pool.

For workloads whose search spaces are too large for one process, the pool
shards a batch of :class:`~repro.service.TuningRequest` across worker
processes.  Each worker runs its own :class:`~repro.service.TuningService`
(so coalescing and cross-request batching still apply *within* a shard) with
its own private :class:`~repro.core.autotune.database.TuningDatabase`; the
parent merges the worker databases into the caller's database when the
workload finishes (``TuningDatabase.merge`` keeps the best record per
problem).

Sharding is by request identity: identical requests always land in the same
shard, so duplicates coalesce in-process instead of being tuned twice in two
workers.  Results are therefore bit-identical to running the whole workload
through one in-process service.

Worker processes are started with the ``fork`` method where available (the
requests and results are plain picklable dataclasses, so ``spawn`` works too
when the caller's ``__main__`` is importable).  When no worker processes can
be created at all — restricted sandboxes, missing semaphores — the pool
degrades to running the shards serially in-process, producing the same
results.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence, Tuple

from ..core.autotune.database import TuningDatabase, TuningRecord
from ..core.autotune.engine import TuningResult
from .policy import SchedulingPolicy, make_policy
from .request import TuningRequest
from .scheduler import TuningService

__all__ = ["TuningWorkerPool"]


def _tune_shard(
    requests: Sequence[TuningRequest],
    policy: Optional[SchedulingPolicy] = None,
) -> Tuple[List[TuningResult], List[dict]]:
    """Worker entry point: run one shard through a private service.

    Module-level so it pickles under every start method (policies are
    stateless module-level classes, so they pickle too).  Returns the
    shard's results (in shard submission order) plus the worker database as
    plain dicts, ready for the parent to merge.
    """
    service = TuningService(policy=policy)
    results = service.tune(list(requests))
    return results, [r.to_dict() for r in service.database.records()]


class TuningWorkerPool:
    """Shard tuning workloads across processes and merge the databases."""

    def __init__(
        self,
        num_workers: int = 0,
        start_method: Optional[str] = None,
        allow_serial_fallback: bool = True,
        policy: "Optional[object]" = None,
    ) -> None:
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0 (0 = one per CPU, capped)")
        self.num_workers = num_workers or min(4, os.cpu_count() or 1)
        self.start_method = start_method
        self.allow_serial_fallback = allow_serial_fallback
        #: scheduling policy every worker's in-process service runs with
        #: (instance or registry name; normalised here so bad names fail fast).
        self.policy = make_policy(policy)
        #: True when the last workload ran in worker processes (False = the
        #: serial in-process fallback was used).
        self.used_processes = False

    # ------------------------------------------------------------------ #
    def _shard(
        self, requests: Sequence[TuningRequest]
    ) -> Tuple[List[List[TuningRequest]], List[Tuple[int, int]]]:
        """Round-robin distinct requests over shards; duplicates follow their
        first occurrence so they coalesce inside one worker.

        ``placement`` indexes into the returned shard list, so every shard is
        returned even in the (currently impossible: the shard count never
        exceeds the distinct-request count) case of an empty one.
        """
        num_shards = max(1, min(self.num_workers, len(set(requests)) or 1))
        shards: List[List[TuningRequest]] = [[] for _ in range(num_shards)]
        shard_of: dict = {}
        placement: List[Tuple[int, int]] = []
        for request in requests:
            shard = shard_of.get(request)
            if shard is None:
                shard = len(shard_of) % num_shards
                shard_of[request] = shard
            shards[shard].append(request)
            placement.append((shard, len(shards[shard]) - 1))
        return shards, placement

    def _context(self):
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else None)

    def tune(
        self,
        requests: Sequence[TuningRequest],
        database: Optional[TuningDatabase] = None,
    ) -> List[TuningResult]:
        """Tune a workload across the pool; results in submission order.

        ``database`` (optional) plays the same role as the in-process
        service's shared database: requests it already covers are served in
        the parent with zero measurements (workers never see them), and when
        the workload finishes it receives every worker's records via
        :meth:`~repro.core.autotune.database.TuningDatabase.merge`.
        """
        requests = list(requests)
        if not requests:
            return []
        # Serve covered requests from the caller's database up front, exactly
        # like TuningService.submit does — workers start with empty private
        # databases and must not re-tune what the caller already knows.
        served: dict = {}
        pending_indices: List[int] = []
        for i, request in enumerate(requests):
            record = None
            if database is not None and request.pruned:
                record = database.lookup(
                    request.params,
                    request.spec,
                    request.algorithm,
                    budget=request.max_measurements,
                    noise=request.noise,
                    noise_seed=request.noise_seed,
                )
            if record is not None:
                served[i] = record.as_result()
            else:
                pending_indices.append(i)
        if not pending_indices:
            self.used_processes = False
            return [served[i] for i in range(len(requests))]
        pending = [requests[i] for i in pending_indices]
        shards, placement = self._shard(pending)
        try:
            if len(shards) == 1:
                raise _SerialShortcut  # one shard: a pool buys nothing
            ctx = self._context()
            with ctx.Pool(processes=len(shards)) as pool:
                shard_outputs = pool.starmap(
                    _tune_shard, [(s, self.policy) for s in shards]
                )
            self.used_processes = True
        except _SerialShortcut:
            shard_outputs = [_tune_shard(s, self.policy) for s in shards]
            self.used_processes = False
        except (OSError, PermissionError, ImportError):
            if not self.allow_serial_fallback:
                raise
            shard_outputs = [_tune_shard(s, self.policy) for s in shards]
            self.used_processes = False

        if database is not None:
            for _, record_dicts in shard_outputs:
                database.merge(TuningRecord.from_dict(d) for d in record_dicts)
        for i, (shard, pos) in zip(pending_indices, placement):
            served[i] = shard_outputs[shard][0][pos]
        return [served[i] for i in range(len(requests))]


class _SerialShortcut(Exception):
    """Internal control flow: the workload fits one shard."""
