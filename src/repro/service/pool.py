"""Sharded tuning across a long-lived worker pool with record streaming.

For workloads whose search spaces are too large for one process, the pool
shards a batch of :class:`~repro.service.TuningRequest` across worker
processes.  Each worker runs its own :class:`~repro.service.TuningService`
(so coalescing and cross-request batching still apply *within* a shard) with
its own private :class:`~repro.core.autotune.database.TuningDatabase`.

Unlike a batch pool that only merges worker databases at workload
completion, the workers here are **streaming**: every time a run completes,
the worker captures the records that changed its database
(:meth:`~repro.core.autotune.database.TuningDatabase.changes_since`) and
ships them to the parent over a results queue as serializable
:class:`~repro.core.autotune.database.RecordEnvelope` payloads.  The parent
folds each arriving record into the shared database immediately (monotonic
keep-better ``apply``) and pushes the winners down every *other* shard's
sync queue; workers drain their sync queue between scheduling rounds
(:meth:`~repro.service.scheduler.TuningService.inject_records`), so their
submit-time database serving sees cross-shard bests mid-workload: a problem
shard A already solved is never re-tuned by shard B's not-yet-admitted
requests.  Workers admit their backlog incrementally (``admit_window`` runs
at a time) precisely so that later requests still *are* "new submits" when a
cross-shard record lands.

Invariants the streaming layer preserves:

* **Bit-identity of fresh runs** — injected records never touch an in-flight
  session (sessions do not consult the database mid-run), so every freshly
  tuned result remains bit-identical to
  :meth:`~repro.service.request.TuningRequest.tune_direct`.
* **Monotonic database** — all folds go through keep-better ``apply``;
  records can only improve, whatever order they arrive in (streaming apply
  of any arrival permutation equals one bulk ``merge`` of the same records).
* **Loop-free exchange** — only records that *changed* a database are
  re-broadcast, so an echoed record dies at the first database that already
  holds it.

Sharding is by request identity: identical requests always land in the same
shard, so duplicates coalesce in-process instead of being tuned twice in two
workers.

Fault tolerance: a worker that dies mid-workload (killed, crashed) is
detected by the parent, which degrades gracefully — the dead worker's shard
is re-run in-process against the shared database (so records the worker
streamed before dying are not re-tuned) and the failure is counted in
:attr:`TuningWorkerPool.stats`.  Malformed sync payloads ("poisoned
envelopes") are dropped and counted, never applied.  When no worker
processes can be created at all — restricted sandboxes, missing semaphores —
the pool degrades to a deterministic in-process serial interleaving of the
shards with the same streaming semantics, producing the same results.

**Serving mode** (the daemon's deployment shape): besides the batch entry
point :meth:`TuningWorkerPool.tune`, the pool has a long-lived
submit/drain-incremental mode — :meth:`~TuningWorkerPool.start` brings up
the shard fleet with empty backlogs, :meth:`~TuningWorkerPool.submit`
routes one request at a time to its shard and returns a per-request
:class:`~repro.service.futures.TuningFuture` immediately, and
:meth:`~TuningWorkerPool.step` pumps the fleet one round (drain streamed
records and per-request completions, advance in-parent shards, detect dead
workers).  Serving-mode shard assignment is a stable hash of the request's
idempotency digest (:func:`~repro.service.journal.request_id` — the
coalescing key minus ``deadline``), so identical rids always land in the
same shard and coalesce there, across submits and restarts; Python's
per-process salted ``hash()`` could guarantee neither.  The fault model is
the batch one, made incremental: a SIGKILLed serving worker fails over to
an in-parent runner against the shared database (durable shard logs are
salvaged first), unresolved tickets re-enqueue there, and the pool — and
whatever daemon sits above it — keeps serving throughout.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import queue
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..core.autotune.database import (
    RecordEnvelope,
    TuningDatabase,
    TuningDatabaseError,
    TuningRecord,
)
from ..core.autotune.store import LogStore
from ..core.autotune.engine import TuningResult
from ..obs import (
    NULL_OBS,
    MetricsRegistry,
    MetricsSnapshot,
    MonotonicClock,
    Observability,
)
from .errors import RequestCancelled, RequestError, RequestFailed, error_from_wire
from .futures import TuningFuture
from .journal import request_id
from .policy import SchedulingPolicy, make_policy
from .request import TuningRequest
from .scheduler import ServiceStats, TuningService

__all__ = ["PoolStats", "TuningWorkerPool"]

#: parent's poll interval on the results queue while workers run.
_POLL_SECONDS = 0.2
#: empty polls after noticing a dead worker before declaring its shard lost
#: (a worker may exit healthily with its "done" message still in the pipe).
_DEATH_GRACE_POLLS = 3
#: serving worker's idle pacing between loop iterations (pacing only).
_SERVE_IDLE_SLEEP = 0.005
#: serving parent's bounded wait on the results queue when a step would
#: otherwise report no progress while workers still owe completions — keeps
#: a drain loop above (the daemon's run_until_idle) paced instead of hot.
_SERVE_PARENT_WAIT = 0.005


@dataclass
class PoolStats:
    """Accounting of one :meth:`TuningWorkerPool.tune` workload.

    Like :class:`~repro.service.scheduler.ServiceStats`, this is a *snapshot
    view* since the registry migration: the live counts are thread-safe
    registry counters and :attr:`TuningWorkerPool.stats` materialises one
    coherent copy per read.
    """

    requests: int = 0
    #: requests answered from the caller's database before sharding.
    pre_served: int = 0
    shards: int = 0
    #: "serial" or "processes" ("unused" until a workload ran).
    mode: str = "unused"
    streaming: bool = False
    #: record envelopes received by the parent mid-workload ...
    records_streamed: int = 0
    #: ... of which improved the shared database (and were re-broadcast).
    records_applied: int = 0
    #: malformed payloads dropped by the parent or a worker.
    poisoned_envelopes: int = 0
    #: workers that died mid-workload (their shards re-ran in the parent).
    worker_failures: int = 0
    #: records recovered from a dead worker's shard log (``store_dir``
    #: pools only): work the worker persisted but never got to stream.
    records_recovered: int = 0
    # Aggregates over every shard service (plus in-parent recovery reruns):
    measurements: int = 0
    tuning_runs: int = 0
    database_hits: int = 0
    coalesced: int = 0

    def describe(self) -> str:
        return (
            f"PoolStats[{self.requests} requests over {self.shards} {self.mode} "
            f"shards ({self.pre_served} pre-served), {self.tuning_runs} runs / "
            f"{self.measurements} measurements, {self.records_streamed} records "
            f"streamed ({self.records_applied} applied, "
            f"{self.poisoned_envelopes} poisoned), "
            f"{self.worker_failures} worker failures / "
            f"{self.records_recovered} records recovered]"
        )


def _shard_for_request(request: TuningRequest, num_shards: int) -> int:
    """Serving-mode shard assignment: a stable hash of the coalescing key.

    Hashes the daemon's idempotency digest (:func:`request_id` — canonical
    wire form minus ``deadline``), so identical rids always map to the same
    shard and coalesce inside that shard's service, across submits,
    restarts and processes.  Python's builtin ``hash()`` is salted per
    process and would guarantee none of that.
    """
    return int(request_id(request)[:8], 16) % num_shards


def _decode_envelope(wire: object) -> Optional[RecordEnvelope]:
    """Decode a wire payload; ``None`` for poisoned envelopes (never raises)."""
    try:
        return RecordEnvelope.from_wire(wire)
    except TuningDatabaseError:
        return None


def _drain(q) -> List[object]:
    """Non-blocking drain of a multiprocessing queue.

    A frame that fails to deserialize (sender killed mid-put) is skipped —
    anything it carried is recovered by the keep-better final merge — with
    a bounded retry budget so a permanently wedged pipe cannot spin forever.
    """
    items: List[object] = []
    bad_frames = 0
    while bad_frames < 100:
        try:
            items.append(q.get_nowait())
        except queue.Empty:
            break
        except Exception:
            bad_frames += 1
    return items


class _ShardRunner:
    """Drive one shard's service incrementally: sync -> admit -> step.

    The runner owns the shard's private :class:`TuningService` and feeds it
    the shard's requests at most ``admit_window`` active runs at a time
    (``<= 0`` = admit everything up front, the maximal-packing batch
    behaviour).  Windowed admission is what gives cross-shard streaming its
    leverage: a request still in the backlog when a synced record arrives is
    served at submit time with zero measurements.

    ``take_new_records`` returns the records stored since the last call
    using the database's revision counter; :meth:`sync` advances the same
    checkpoint past the records it injects, so a shard never echoes back
    what it just received.
    """

    def __init__(
        self,
        requests: Sequence[TuningRequest],
        policy: Optional[SchedulingPolicy] = None,
        admit_window: int = 0,
        database: Optional[TuningDatabase] = None,
        obs: Optional[Observability] = None,
        store_path: Optional[str] = None,
    ) -> None:
        if database is None and store_path is not None:
            # Durable shard: every effective put lands in an append-only
            # log, and constructing the store replays whatever an earlier
            # (crashed) incarnation of this shard persisted — the worker
            # restarts with its records instead of re-tuning them.
            database = TuningDatabase(store=LogStore(store_path))
        self.service = TuningService(database=database, policy=policy, obs=obs)
        self.admit_window = admit_window
        #: backlog of (shard position, request); duplicates may be admitted
        #: out of backlog order (to coalesce onto their twin's in-flight
        #: run), so futures are keyed by position, not appended.
        self.pending: Deque[Tuple[int, TuningRequest]] = deque(enumerate(requests))
        self.futures: Dict[int, object] = {}
        self._num_requests = len(self.pending)
        self._checkpoint = self.service.database.revision

    def enqueue(self, position: int, request: TuningRequest) -> None:
        """Append one request to the backlog (serving mode).

        ``position`` is the caller's ticket — serving-mode positions are
        caller-assigned and need not be contiguous; :meth:`results` (which
        assumes the batch mode's dense ``0..n-1`` numbering) is not used on
        serving runners.
        """
        self.pending.append((position, request))
        self._num_requests += 1

    def sync(self, records: Sequence[TuningRecord]) -> int:
        """Inject cross-shard records; returns how many improved the shard."""
        applied = self.service.inject_records(records) if records else []
        self._checkpoint = self.service.database.revision
        return len(applied)

    def step(self) -> bool:
        """Admit backlog into the window and run one scheduling round.

        Duplicates never wait on the window: a backlog head identical to an
        in-flight run is admitted straight away, and whenever an admitted
        request opens (or joins) a run, every identical request still in the
        backlog — however far back — is admitted with it.  They coalesce
        onto that run without opening new ones, so duplicates (notably
        unpruned requests, which the database can never serve) cost exactly
        what they would under all-at-once submission; windowed admission can
        only ever *remove* runs, never add them.

        Returns False once the shard is finished (nothing active, nothing
        pending) — by then every future is answered.
        """
        while self.pending:
            position, head = self.pending[0]
            coalesces = self.service.coalescer.get(head) is not None
            if (
                not coalesces
                and self.admit_window > 0
                and self.service.num_active >= self.admit_window
            ):
                break
            self.pending.popleft()
            self.futures[position] = self.service.submit(head)
            if self.service.coalescer.get(head) is not None:
                # The request is now in flight: pull its backlog duplicates
                # forward so they ride the run instead of re-tuning after
                # it retires.
                remaining: Deque[Tuple[int, TuningRequest]] = deque()
                for later_position, later in self.pending:
                    if later == head:
                        self.futures[later_position] = self.service.submit(later)
                    else:
                        remaining.append((later_position, later))
                self.pending = remaining
        return self.service.step() or bool(self.pending)

    def take_new_records(self) -> List[TuningRecord]:
        new = self.service.database.changes_since(self._checkpoint)
        self._checkpoint = self.service.database.revision
        return new

    def results(self) -> List[TuningResult]:
        """Shard results in shard submission order (position-keyed)."""
        return [
            self.futures[position].result(timeout=0)
            for position in range(self._num_requests)
        ]

    def drain_store(self) -> None:
        """Retire the shard's database: flush durable state, then close.

        The pool-side drain hook (the daemon's graceful drain reaches
        streaming shards through it): a log-backed shard compacts its
        append-only store into an fsync'd snapshot before closing, so the
        next incarnation recovers from the snapshot and replays a zero- or
        near-zero-length log tail instead of the whole workload's appends.
        Flush trouble is deliberately non-fatal (degrade-never-crash): the
        uncompacted log still holds every effective put, so recovery is
        merely slower, not lossy.
        """
        store = self.service.database.store
        if isinstance(store, LogStore) and store.path is not None:
            try:
                store.snapshot()
            except (OSError, TuningDatabaseError):
                pass
        self.service.database.close()


def _tune_shard(
    requests: Sequence[TuningRequest],
    policy: Optional[SchedulingPolicy] = None,
    obs_enabled: bool = False,
) -> Tuple[List[TuningResult], List[dict], ServiceStats, dict]:
    """Merge-at-end worker: run one whole shard through a private service.

    Module-level so it pickles under every start method.  Returns the
    shard's results (in shard submission order), the worker database as
    plain dicts ready for the parent to merge, the shard's accounting, and
    a metrics-snapshot wire dict for the parent's fleet view.

    :class:`~repro.obs.Observability` holds locks and ring buffers and is
    deliberately not picklable, so the parent sends only ``obs_enabled`` and
    the worker builds its own bundle (real monotonic clock — a worker entry
    point is an edge of the system, where real clocks are allowed).
    """
    obs = Observability(enabled=obs_enabled, clock=MonotonicClock() if obs_enabled else None)
    service = TuningService(policy=policy, obs=obs)
    results = service.tune(list(requests))
    wire = service.metrics_snapshot().merged(obs.snapshot()).to_wire()
    return results, [r.to_dict() for r in service.database.records()], service.stats, wire


def _stream_shard(
    shard_index: int,
    requests: Sequence[TuningRequest],
    policy: Optional[SchedulingPolicy],
    admit_window: int,
    sync_queue,
    results_queue,
    obs_enabled: bool = False,
    store_path: Optional[str] = None,
) -> None:
    """Streaming worker entry point (module-level: pickles everywhere).

    Runs the shard through a :class:`_ShardRunner`; between scheduling
    rounds it drains the sync queue (dropping poisoned envelopes) and ships
    every newly stored record to the parent.  Ends with a ``("done", ...)``
    message carrying results, accounting, a metrics-snapshot wire dict
    (``obs_enabled`` telemetry — the worker builds its own
    :class:`~repro.obs.Observability`, since the parent's is not picklable)
    and the full shard database (a final merge-at-end safety net in case any
    streamed message was lost); any crash becomes an ``("error", ...)``
    message instead of a silent death.
    """
    try:
        obs = Observability(
            enabled=obs_enabled, clock=MonotonicClock() if obs_enabled else None
        )
        runner = _ShardRunner(
            requests,
            policy=policy,
            admit_window=admit_window,
            obs=obs,
            store_path=store_path,
        )
        poisoned = 0
        while True:
            incoming: List[TuningRecord] = []
            for wire in _drain(sync_queue):
                envelope = _decode_envelope(wire)
                if envelope is None:
                    poisoned += 1
                else:
                    incoming.append(envelope.record)
            runner.sync(incoming)
            progressed = runner.step()
            for record in runner.take_new_records():
                envelope = RecordEnvelope(
                    record=record,
                    origin=shard_index,
                    revision=runner.service.database.revision,
                )
                results_queue.put(("record", shard_index, envelope.to_wire()))
            if not progressed:
                break
        results_queue.put(
            (
                "done",
                shard_index,
                {
                    "results": runner.results(),
                    "stats": runner.service.stats,
                    "metrics": runner.service.metrics_snapshot()
                    .merged(obs.snapshot())
                    .to_wire(),
                    "records": [r.to_dict() for r in runner.service.database.records()],
                    "poisoned": poisoned,
                },
            )
        )
    except BaseException as exc:  # pragma: no cover - exercised via kill tests
        try:
            results_queue.put(
                ("error", shard_index, f"{type(exc).__name__}: {exc}")
            )
        except Exception:
            pass
    else:
        # Graceful worker exit = a drained shard: durable stores are
        # compacted before close so a restart replays a short tail.
        runner.drain_store()


def _serve_shard(
    shard_index: int,
    policy: Optional[SchedulingPolicy],
    admit_window: int,
    submit_queue,
    sync_queue,
    results_queue,
    obs_enabled: bool = False,
    store_path: Optional[str] = None,
) -> None:
    """Long-lived serving worker entry point (module-level: pickles everywhere).

    The incremental sibling of :func:`_stream_shard`: the backlog arrives
    one request at a time over ``submit_queue`` as ``("submit", ticket,
    request)`` messages instead of up front, and every settled ticket is
    reported individually as ``("done_one", shard, ticket, outcome)`` where
    ``outcome`` is ``("ok", result)`` or ``("err", error_wire)`` — typed
    errors travel as their wire dicts so the parent re-raises the same
    class.  Records stream exactly as in batch mode.  A ``("stop",)``
    sentinel finishes in-flight work, ships a final ``("bye", ...)`` report
    (stats, metrics, full-database safety net) and exits gracefully; any
    crash becomes an ``("error", ...)`` message and the parent fails the
    shard over.
    """
    try:
        obs = Observability(
            enabled=obs_enabled, clock=MonotonicClock() if obs_enabled else None
        )
        runner = _ShardRunner(
            [],
            policy=policy,
            admit_window=admit_window,
            obs=obs,
            store_path=store_path,
        )
        poisoned = 0
        stopping = False
        while True:
            submits = _drain(submit_queue)
            for message in submits:
                if message == ("stop",):
                    stopping = True
                elif (
                    isinstance(message, tuple)
                    and len(message) == 3
                    and message[0] == "submit"
                    and isinstance(message[1], int)
                    and isinstance(message[2], TuningRequest)
                ):
                    runner.enqueue(message[1], message[2])
                else:
                    poisoned += 1
            incoming: List[TuningRecord] = []
            for wire in _drain(sync_queue):
                envelope = _decode_envelope(wire)
                if envelope is None:
                    poisoned += 1
                else:
                    incoming.append(envelope.record)
            runner.sync(incoming)
            progressed = runner.step()
            for record in runner.take_new_records():
                envelope = RecordEnvelope(
                    record=record,
                    origin=shard_index,
                    revision=runner.service.database.revision,
                )
                results_queue.put(("record", shard_index, envelope.to_wire()))
            for ticket, future in list(runner.futures.items()):
                if not future.done():
                    continue
                del runner.futures[ticket]
                try:
                    result = future.result(timeout=0)
                except RequestError as err:
                    outcome = ("err", err.to_wire())
                except Exception as exc:
                    outcome = ("err", RequestFailed(str(exc)).to_wire())
                else:
                    outcome = ("ok", result)
                results_queue.put(("done_one", shard_index, ticket, outcome))
            if stopping and not progressed:
                break
            if not progressed and not submits:
                # Pacing while idle, not a timing source.
                time.sleep(_SERVE_IDLE_SLEEP)
        results_queue.put(
            (
                "bye",
                shard_index,
                {
                    "stats": runner.service.stats,
                    "metrics": runner.service.metrics_snapshot()
                    .merged(obs.snapshot())
                    .to_wire(),
                    "records": [r.to_dict() for r in runner.service.database.records()],
                    "poisoned": poisoned,
                },
            )
        )
    except BaseException as exc:  # pragma: no cover - exercised via kill tests
        try:
            results_queue.put(("error", shard_index, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    else:
        runner.drain_store()


class TuningWorkerPool:
    """Shard tuning workloads across processes, streaming records between them.

    ``streaming=True`` (default) exchanges best-known records mid-workload as
    described in the module docstring; ``streaming=False`` is the classic
    batch pool (run every shard to completion, merge databases at the end) —
    kept both as the conservative mode and as the benchmark reference the
    streamed exchange is gated against.

    ``admit_window`` bounds how many runs each shard keeps active at once
    (``<= 0`` = admit the whole backlog up front).  Smaller windows trade a
    little packing density for more submit-time serving opportunities.

    ``use_processes`` forces the execution mode: ``None`` (default) tries
    processes and falls back to the deterministic serial interleaving,
    ``False`` always runs serially in-process, ``True`` requires processes
    (raises where they are unavailable).  Workloads that fit one shard
    always run serially — a pool buys nothing there.

    ``obs`` is an optional :class:`~repro.obs.Observability` bundle for the
    telemetry extras (stream counters, worker lifecycle events, sync-queue
    depths, spans).  The accounting behind :attr:`stats` is always live.
    Worker processes cannot share the parent's bundle (it is not picklable),
    so each worker builds its own when observability is enabled and ships a
    metrics snapshot back in its ``done`` report; :meth:`fleet_snapshot`
    merges the shards' snapshots with the parent's into one fleet view.

    ``store_dir`` makes streaming shards durable: shard ``i``'s private
    database is backed by an append-only
    :class:`~repro.core.autotune.store.LogStore` at
    ``<store_dir>/shard-<i>.log``, so every effective put survives the
    worker process.  A restarted worker recovers its records from the log
    instead of re-tuning them, and when a worker dies mid-workload the
    parent recovers its log directly — records the worker persisted but
    never streamed are folded into the shared database before the shard's
    in-parent rerun (counted in :attr:`PoolStats.records_recovered`).
    """

    def __init__(
        self,
        num_workers: int = 0,
        start_method: Optional[str] = None,
        allow_serial_fallback: bool = True,
        policy: "Optional[object]" = None,
        streaming: bool = True,
        admit_window: int = 4,
        use_processes: Optional[bool] = None,
        obs: Optional[Observability] = None,
        store_dir: Optional[str] = None,
    ) -> None:
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0 (0 = one per CPU, capped)")
        self.num_workers = num_workers or min(4, os.cpu_count() or 1)
        self.start_method = start_method
        self.allow_serial_fallback = allow_serial_fallback
        #: scheduling policy every worker's in-process service runs with
        #: (instance or registry name; normalised here so bad names fail fast).
        self.policy = make_policy(policy)
        self.streaming = streaming
        self.admit_window = admit_window
        self.use_processes = use_processes
        #: directory for durable per-shard record logs (None = in-memory
        #: shard databases, the default).
        self.store_dir = os.fspath(store_dir) if store_dir is not None else None
        #: True when the last workload ran in worker processes (False = the
        #: serial in-process interleaving was used).
        self.used_processes = False
        self.obs = obs if obs is not None else NULL_OBS
        # Observability extras: cumulative across workloads (unlike the
        # per-workload accounting), all null no-ops when obs is disabled.
        reg = self.obs.registry
        self._o_envelopes = reg.counter("pool.stream.envelopes")
        self._o_workers_started = reg.counter("pool.workers.started")
        self._o_workers_done = reg.counter("pool.workers.done")
        self._o_workers_failed = reg.counter("pool.workers.failed")
        self._o_sync_depth = reg.gauge("pool.sync.queue_depth")
        # Long-lived serving mode state (inert until start()).  The pool is
        # not thread-safe; the daemon above serialises every call under its
        # own lock, and direct users must do the same.
        self._serving = False
        self._serve_shards = 0
        self._serve_exchange: Optional[TuningDatabase] = None
        self._serve_futures: Dict[int, TuningFuture] = {}
        self._serve_tickets: Dict[int, Tuple[int, TuningRequest]] = {}
        self._next_ticket = 0
        self._serve_runners: Dict[int, _ShardRunner] = {}
        self._serve_inboxes: Dict[int, List[TuningRecord]] = {}
        self._serve_workers: Dict[int, object] = {}
        self._serve_submit_queues: Dict[int, object] = {}
        self._serve_sync_queues: Dict[int, object] = {}
        self._serve_results_queue = None
        self._serve_dead_polls: Dict[int, int] = {}
        self._serve_byes: Dict[int, bool] = {}
        self._reset_accounting(streaming=False)

    def _reset_accounting(self, streaming: bool) -> None:
        """Fresh per-workload accounting registry (called by every tune)."""
        self._metrics = MetricsRegistry()
        acc = self._metrics.scope("pool")
        self._c_requests = acc.counter("requests")
        self._c_pre_served = acc.counter("pre_served")
        self._c_shards = acc.counter("shards")
        self._c_records_streamed = acc.counter("records_streamed")
        self._c_records_applied = acc.counter("records_applied")
        self._c_poisoned = acc.counter("poisoned_envelopes")
        self._c_worker_failures = acc.counter("worker_failures")
        self._c_records_recovered = acc.counter("records_recovered")
        self._c_measurements = acc.counter("measurements")
        self._c_tuning_runs = acc.counter("tuning_runs")
        self._c_database_hits = acc.counter("database_hits")
        self._c_coalesced = acc.counter("coalesced")
        self._stats_mode = "unused"
        self._stats_streaming = streaming
        #: merged shard telemetry (worker wire snapshots in process mode,
        #: shard-service accounting in serial mode) for :meth:`fleet_snapshot`.
        self._shard_metrics = MetricsSnapshot()

    @property
    def stats(self) -> PoolStats:
        """One consistent accounting snapshot (see :class:`PoolStats`).

        While serving, in-parent shard runners' service accounting is added
        live (their stats are absorbed into the counters only at
        :meth:`stop`); process workers report theirs in their graceful
        ``bye``, so process-mode aggregates trail until the shard retires.
        """
        c = self._metrics.snapshot().counters
        stats = PoolStats(
            requests=c.get("pool.requests", 0),
            pre_served=c.get("pool.pre_served", 0),
            shards=c.get("pool.shards", 0),
            mode=self._stats_mode,
            streaming=self._stats_streaming,
            records_streamed=c.get("pool.records_streamed", 0),
            records_applied=c.get("pool.records_applied", 0),
            poisoned_envelopes=c.get("pool.poisoned_envelopes", 0),
            worker_failures=c.get("pool.worker_failures", 0),
            records_recovered=c.get("pool.records_recovered", 0),
            measurements=c.get("pool.measurements", 0),
            tuning_runs=c.get("pool.tuning_runs", 0),
            database_hits=c.get("pool.database_hits", 0),
            coalesced=c.get("pool.coalesced", 0),
        )
        if self._serving:
            for runner in self._serve_runners.values():
                live = runner.service.stats
                stats.measurements += live.measurements
                stats.tuning_runs += live.tuning_runs
                stats.database_hits += live.database_hits
                stats.coalesced += live.coalesced
        return stats

    def _absorb(self, service_stats: ServiceStats) -> None:
        """Fold one shard service's accounting into the pool totals."""
        self._c_measurements.inc(service_stats.measurements)
        self._c_tuning_runs.inc(service_stats.tuning_runs)
        self._c_database_hits.inc(service_stats.database_hits)
        self._c_coalesced.inc(service_stats.coalesced)

    def _merge_shard_metrics(self, snapshot: MetricsSnapshot) -> None:
        self._shard_metrics = self._shard_metrics.merged(snapshot)

    def fleet_snapshot(self) -> MetricsSnapshot:
        """One merged telemetry view of the last workload's whole fleet.

        Pool-level accounting (``pool.*``), the parent's observability
        extras, and every shard's shipped/absorbed telemetry (``service.*``
        plus worker-side extras), merged with the associative snapshot-merge
        semantics — so the totals are independent of shard report order.
        While serving, live in-parent runners contribute their current
        accounting the same way (absorbed permanently at :meth:`stop`).
        """
        snapshot = self._metrics.snapshot().merged(self._shard_metrics)
        if self._serving:
            for runner in self._serve_runners.values():
                snapshot = snapshot.merged(runner.service.metrics_snapshot())
        return snapshot.merged(self.obs.snapshot())

    # ------------------------------------------------------------------ #
    def _shard(
        self, requests: Sequence[TuningRequest]
    ) -> Tuple[List[List[TuningRequest]], List[Tuple[int, int]]]:
        """Round-robin distinct requests over shards; duplicates follow their
        first occurrence so they coalesce inside one worker.

        ``placement`` indexes into the returned shard list, so every shard is
        returned even in the (currently impossible: the shard count never
        exceeds the distinct-request count) case of an empty one.
        """
        num_shards = max(1, min(self.num_workers, len(set(requests)) or 1))
        shards: List[List[TuningRequest]] = [[] for _ in range(num_shards)]
        shard_of: dict = {}
        placement: List[Tuple[int, int]] = []
        for request in requests:
            shard = shard_of.get(request)
            if shard is None:
                shard = len(shard_of) % num_shards
                shard_of[request] = shard
            shards[shard].append(request)
            placement.append((shard, len(shards[shard]) - 1))
        return shards, placement

    def _shard_store_path(self, index: int) -> Optional[str]:
        """The durable log location for streaming shard ``index`` (None
        when the pool was built without ``store_dir``)."""
        if self.store_dir is None:
            return None
        return os.path.join(self.store_dir, f"shard-{index}.log")

    def _recover_shard_store(self, index: int, exchange: TuningDatabase) -> int:
        """Fold a dead worker's shard log into the shared database.

        Returns how many recovered records improved it.  Recovery is
        best-effort in the pool's degrade-never-crash style: a missing log
        means the worker died before its first put (nothing to recover),
        and an unreadable one is counted as poisoned — the in-parent rerun
        re-tunes that work either way.
        """
        path = self._shard_store_path(index)
        if path is None or not os.path.exists(path):
            return 0
        try:
            store = LogStore(path)
        except (OSError, TuningDatabaseError):
            self._c_poisoned.inc()
            return 0
        try:
            applied = exchange.apply(store.scan())
        finally:
            store.close()
        self._c_records_recovered.inc(len(applied))
        return len(applied)

    def _context(self):
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else None)

    # ------------------------------------------------------------------ #
    def tune(
        self,
        requests: Sequence[TuningRequest],
        database: Optional[TuningDatabase] = None,
    ) -> List[TuningResult]:
        """Tune a workload across the pool; results in submission order.

        ``database`` (optional) plays the same role as the in-process
        service's shared database: requests it already covers are served in
        the parent with zero measurements (workers never see them), records
        streamed back mid-workload are folded into it immediately, and when
        the workload finishes it holds every worker's records (the final
        merge is a keep-better no-op for anything already streamed).
        """
        if self._serving:
            raise RuntimeError(
                "pool is in serving mode; use submit()/step(), or stop() "
                "serving before running a batch workload"
            )
        requests = list(requests)
        self._reset_accounting(streaming=self.streaming)
        if not requests:
            return []
        self._c_requests.inc(len(requests))
        # Serve covered requests from the caller's database up front, exactly
        # like TuningService.submit does — workers start with empty private
        # databases and must not re-tune what the caller already knows.
        served: dict = {}
        pending_indices: List[int] = []
        for i, request in enumerate(requests):
            record = None
            if database is not None and request.pruned:
                record = database.lookup(
                    request.params,
                    request.spec,
                    request.algorithm,
                    budget=request.max_measurements,
                    noise=request.noise,
                    noise_seed=request.noise_seed,
                )
            if record is not None:
                served[i] = record.as_result()
            else:
                pending_indices.append(i)
        self._c_pre_served.inc(len(served))
        if not pending_indices:
            self.used_processes = False
            self._stats_mode = "serial"
            return [served[i] for i in range(len(requests))]
        pending = [requests[i] for i in pending_indices]
        shards, placement = self._shard(pending)
        self._c_shards.inc(len(shards))
        #: the cross-shard exchange point: the caller's database when given
        #: (so streamed records are visible to the caller mid-workload),
        #: otherwise a workload-private one.
        exchange = database if database is not None else TuningDatabase()

        shard_results: Optional[Dict[int, List[TuningResult]]] = None
        if len(shards) > 1 and self.use_processes is not False:
            try:
                shard_results = self._run_processes(shards, exchange)
                self.used_processes = True
            except (OSError, PermissionError, ImportError):
                if not self.allow_serial_fallback or self.use_processes is True:
                    raise
        if shard_results is None:
            shard_results = self._run_serial(shards, exchange)
            self.used_processes = False
        self._stats_mode = "processes" if self.used_processes else "serial"

        for i, (shard, pos) in zip(pending_indices, placement):
            served[i] = shard_results[shard][pos]
        return [served[i] for i in range(len(requests))]

    # -- serial in-process execution ------------------------------------ #
    def _run_serial(
        self, shards: List[List[TuningRequest]], exchange: TuningDatabase
    ) -> Dict[int, List[TuningResult]]:
        if not self.streaming:
            outputs: Dict[int, List[TuningResult]] = {}
            for i, shard in enumerate(shards):
                results, record_dicts, stats, wire = _tune_shard(
                    shard, self.policy, obs_enabled=self.obs.enabled
                )
                exchange.apply(TuningRecord.from_dict(d) for d in record_dicts)
                self._absorb(stats)
                self._merge_shard_metrics(MetricsSnapshot.from_wire(wire))
                outputs[i] = results
            return outputs
        # Streaming: interleave the shards round-robin, one scheduling round
        # each, exchanging records between rounds.  Deterministic — the same
        # workload always yields the same serving pattern and measurement
        # count, which is what the streaming benchmark gates on.
        runners = [
            _ShardRunner(
                shard,
                policy=self.policy,
                admit_window=self.admit_window,
                obs=self.obs,
                store_path=self._shard_store_path(i),
            )
            for i, shard in enumerate(shards)
        ]
        inboxes: List[List[TuningRecord]] = [[] for _ in shards]
        unfinished = list(range(len(shards)))
        while unfinished:
            still_running: List[int] = []
            for i in unfinished:
                runner = runners[i]
                self._o_sync_depth.set(len(inboxes[i]))
                runner.sync(inboxes[i])
                inboxes[i] = []
                progressed = runner.step()
                for record in runner.take_new_records():
                    self._c_records_streamed.inc()
                    self._o_envelopes.inc()
                    applied = exchange.apply([record])
                    if applied:
                        self._c_records_applied.inc()
                        # Broadcast what apply() kept, not the raw incoming
                        # record: on a collision the exchange's surviving
                        # (faster / budget-upgraded) record is the one the
                        # other shards must serve from.
                        for j in range(len(runners)):
                            if j != i:
                                inboxes[j].append(applied[0])
                if progressed:
                    still_running.append(i)
            unfinished = still_running
        outputs = {}
        for i, runner in enumerate(runners):
            exchange.apply(runner.service.database)
            runner.drain_store()
            self._absorb(runner.service.stats)
            # Serial shards share self.obs, so their extras are already in
            # the parent registry — only the per-service accounting needs
            # merging here (process workers ship both over the wire).
            self._merge_shard_metrics(runner.service.metrics_snapshot())
            outputs[i] = runner.results()
        return outputs

    # -- worker-process execution ---------------------------------------- #
    def _run_processes(
        self, shards: List[List[TuningRequest]], exchange: TuningDatabase
    ) -> Dict[int, List[TuningResult]]:
        if not self.streaming:
            ctx = self._context()
            with ctx.Pool(processes=len(shards)) as pool:
                shard_outputs = pool.starmap(
                    _tune_shard,
                    [(s, self.policy, self.obs.enabled) for s in shards],
                )
            outputs = {}
            for i, (results, record_dicts, stats, wire) in enumerate(shard_outputs):
                exchange.apply(TuningRecord.from_dict(d) for d in record_dicts)
                self._absorb(stats)
                self._merge_shard_metrics(MetricsSnapshot.from_wire(wire))
                outputs[i] = results
            return outputs
        return self._run_streaming_processes(shards, exchange)

    def _ingest_record(
        self,
        wire: object,
        origin: int,
        exchange: TuningDatabase,
        sync_queues: Optional[list],
    ) -> None:
        """Fold one streamed envelope into the shared database and, when it
        improved it, forward it to every shard but the sender."""
        envelope = _decode_envelope(wire)
        if envelope is None:
            self._c_poisoned.inc()
            return
        self._c_records_streamed.inc()
        self._o_envelopes.inc()
        applied = exchange.apply([envelope.record])
        if applied:
            self._c_records_applied.inc()
            if sync_queues is not None:
                # Forward what apply() kept, not the original wire: on a
                # collision (e.g. with a faster caller-database record) the
                # exchange's surviving record is the servable best.
                winner = RecordEnvelope(
                    record=applied[0], origin=origin, revision=exchange.revision
                ).to_wire()
                for j, sync_queue in enumerate(sync_queues):
                    if j != origin:
                        sync_queue.put(winner)
                if self.obs.enabled:
                    try:
                        depth = max(q.qsize() for q in sync_queues)
                    except NotImplementedError:  # pragma: no cover - macOS
                        depth = 0
                    self._o_sync_depth.set(depth)

    def _handle_message(
        self,
        message: object,
        outputs: Dict[int, dict],
        failures: Dict[int, str],
        exchange: TuningDatabase,
        sync_queues: Optional[list],
        shards: List[List[TuningRequest]],
    ) -> None:
        """Validate and dispatch one results-queue message.

        A corrupted message is the same failure class as a poisoned
        envelope: dropped and counted, never allowed to crash the parent.
        A "done" report that fails validation (wrong payload shape, wrong
        result count) marks its shard failed instead — the shard then
        degrades to the in-parent recovery rerun like a dead worker.
        """
        if not (isinstance(message, tuple) and len(message) == 3):
            self._c_poisoned.inc()
            return
        tag, index, payload = message
        if (
            not isinstance(index, int)
            or isinstance(index, bool)
            or not 0 <= index < len(shards)
        ):
            self._c_poisoned.inc()
            return
        if tag == "record":
            self._ingest_record(payload, index, exchange, sync_queues)
        elif tag == "done":
            if index in outputs or index in failures:
                self._c_poisoned.inc()
            elif (
                isinstance(payload, dict)
                and isinstance(payload.get("results"), list)
                and len(payload["results"]) == len(shards[index])
            ):
                outputs[index] = payload
            else:
                failures[index] = "malformed completion report"
        elif tag == "error":
            if index not in outputs and index not in failures:
                failures[index] = str(payload)
        else:
            self._c_poisoned.inc()

    def _run_streaming_processes(
        self, shards: List[List[TuningRequest]], exchange: TuningDatabase
    ) -> Dict[int, List[TuningResult]]:
        ctx = self._context()
        results_queue = ctx.Queue()
        sync_queues = [ctx.Queue() for _ in shards]
        workers: list = []
        try:
            for i, shard in enumerate(shards):
                process = ctx.Process(
                    target=_stream_shard,
                    args=(
                        i,
                        list(shard),
                        self.policy,
                        self.admit_window,
                        sync_queues[i],
                        results_queue,
                        self.obs.enabled,
                        self._shard_store_path(i),
                    ),
                    daemon=True,
                )
                process.start()
                self._o_workers_started.inc()
                workers.append(process)
        except BaseException:
            for process in workers:
                process.terminate()
            raise

        outputs: Dict[int, dict] = {}
        failures: Dict[int, str] = {}
        dead_polls: Dict[int, int] = {}

        def note_silent_deaths() -> None:
            # Check for workers that died without a word (killed mid-run).
            # A few grace polls let a healthy exit's final message finish
            # travelling the pipe.
            for i, process in enumerate(workers):
                if i in outputs or i in failures or process.is_alive():
                    continue
                dead_polls[i] = dead_polls.get(i, 0) + 1
                if dead_polls[i] >= _DEATH_GRACE_POLLS:
                    failures[i] = (
                        f"worker {i} died without reporting "
                        f"(exit code {process.exitcode})"
                    )

        try:
            while len(outputs) + len(failures) < len(shards):
                try:
                    message = results_queue.get(timeout=_POLL_SECONDS)
                except queue.Empty:
                    note_silent_deaths()
                    continue
                except Exception:
                    # A worker SIGKILLed mid-put can leave a truncated
                    # pickle frame in the shared pipe; get() then raises
                    # EOFError/UnpicklingError instead of Empty.  Same
                    # failure class as a poisoned envelope: count it, keep
                    # polling liveness (the sender will be noticed dead),
                    # and pace the loop — a wedged pipe raises immediately.
                    self._c_poisoned.inc()
                    note_silent_deaths()
                    time.sleep(_POLL_SECONDS)
                    continue
                self._handle_message(
                    message, outputs, failures, exchange, sync_queues, shards
                )
            # Residual records still in flight after the last shard reported
            # (stream/final-report races) are folded in, not thrown away.
            for message in _drain(results_queue):
                if (
                    isinstance(message, tuple)
                    and len(message) == 3
                    and message[0] == "record"
                ):
                    self._ingest_record(message[2], message[1], exchange, None)
        finally:
            for process in workers:
                process.join(timeout=1.0)
            for process in workers:
                if process.is_alive():  # pragma: no cover - defensive
                    process.terminate()
                    process.join(timeout=1.0)
            for sync_queue in sync_queues:
                sync_queue.close()
                sync_queue.cancel_join_thread()
            results_queue.close()
            results_queue.cancel_join_thread()

        shard_results: Dict[int, List[TuningResult]] = {}
        for i, payload in outputs.items():
            self._o_workers_done.inc()
            exchange.apply(
                TuningRecord.from_dict(d) for d in payload.get("records", [])
            )
            stats = payload.get("stats")
            if isinstance(stats, ServiceStats):
                self._absorb(stats)
            wire = payload.get("metrics")
            if isinstance(wire, dict):
                try:
                    self._merge_shard_metrics(MetricsSnapshot.from_wire(wire))
                except Exception:
                    # A corrupted telemetry blob is the same failure class as
                    # a poisoned envelope — never crash the parent over it.
                    self._c_poisoned.inc()
            self._c_poisoned.inc(int(payload.get("poisoned", 0)))
            shard_results[i] = payload["results"]
        # Graceful degradation: every failed shard re-runs in the parent
        # against the shared database — anything its worker streamed before
        # dying (or other shards solved meanwhile) is served, not re-tuned.
        for i in sorted(failures):
            self._c_worker_failures.inc()
            self._o_workers_failed.inc()
            # Durable pools first salvage what the dead worker persisted
            # but never streamed, so the rerun serves it instead of
            # re-measuring.
            self._recover_shard_store(i, exchange)
            runner = _ShardRunner(
                shards[i],
                policy=self.policy,
                admit_window=self.admit_window,
                database=exchange,
                obs=self.obs,
            )
            while runner.step():
                pass
            self._absorb(runner.service.stats)
            self._merge_shard_metrics(runner.service.metrics_snapshot())
            shard_results[i] = runner.results()
        return shard_results

    # -- long-lived serving mode ----------------------------------------- #
    @property
    def serving(self) -> bool:
        return self._serving

    def start(self, database: Optional[TuningDatabase] = None) -> None:
        """Enter serving mode: bring up the shard fleet with empty backlogs.

        ``database`` plays the batch ``tune(database=...)`` role for the
        whole serving session: pruned submits it covers are answered in the
        parent with zero measurements, streamed records fold into it
        immediately, and the graceful :meth:`stop` leaves it holding every
        shard's records.  The daemon passes its shared database here.

        Mode selection mirrors :meth:`tune`: processes when available (and
        more than one shard), else the deterministic in-process serial
        interleaving; ``use_processes`` forces either.  A stopped or
        terminated pool may ``start()`` again — durable shards
        (``store_dir``) then recover their logs instead of re-tuning.
        """
        if self._serving:
            raise RuntimeError("pool is already serving; stop() it first")
        self._reset_accounting(streaming=True)
        self._serve_exchange = database if database is not None else TuningDatabase()
        self._serve_shards = max(1, self.num_workers)
        self._serve_futures = {}
        self._serve_tickets = {}
        self._next_ticket = 0
        self._serve_runners = {}
        self._serve_inboxes = {}
        self._serve_workers = {}
        self._serve_submit_queues = {}
        self._serve_sync_queues = {}
        self._serve_results_queue = None
        self._serve_dead_polls = {}
        self._serve_byes = {}
        self._serving = True
        self._c_shards.inc(self._serve_shards)
        started = False
        if self._serve_shards > 1 and self.use_processes is not False:
            try:
                self._start_serving_processes()
                started = True
                self.used_processes = True
            except (OSError, PermissionError, ImportError):
                if not self.allow_serial_fallback or self.use_processes is True:
                    self._serving = False
                    raise
        if not started:
            for i in range(self._serve_shards):
                self._serve_runners[i] = _ShardRunner(
                    [],
                    policy=self.policy,
                    admit_window=self.admit_window,
                    obs=self.obs,
                    store_path=self._shard_store_path(i),
                )
                self._serve_inboxes[i] = []
            self.used_processes = False
        self._stats_mode = "processes" if self.used_processes else "serial"

    def _start_serving_processes(self) -> None:
        ctx = self._context()
        self._serve_results_queue = ctx.Queue()
        for i in range(self._serve_shards):
            self._serve_submit_queues[i] = ctx.Queue()
            self._serve_sync_queues[i] = ctx.Queue()
        try:
            for i in range(self._serve_shards):
                process = ctx.Process(
                    target=_serve_shard,
                    args=(
                        i,
                        self.policy,
                        self.admit_window,
                        self._serve_submit_queues[i],
                        self._serve_sync_queues[i],
                        self._serve_results_queue,
                        self.obs.enabled,
                        self._shard_store_path(i),
                    ),
                    daemon=True,
                )
                process.start()
                self._o_workers_started.inc()
                self._serve_workers[i] = process
        except BaseException:
            for process in self._serve_workers.values():
                process.terminate()
            self._serve_workers.clear()
            self._close_serve_queues()
            raise

    def submit(self, request: TuningRequest) -> TuningFuture:
        """Serving-mode submit: returns a per-request future immediately.

        Pruned requests the shared database already covers are answered on
        the spot (``from_database``, zero measurements) exactly like
        :meth:`TuningService.submit`; everything else is routed to its
        rid-stable shard (:func:`_shard_for_request`), where identical
        requests coalesce.  The future settles as :meth:`step` pumps the
        fleet.
        """
        if not self._serving:
            raise RuntimeError("pool is not serving; call start() first")
        future = TuningFuture(request)
        self._c_requests.inc()
        if request.pruned:
            record = self._serve_exchange.lookup(
                request.params,
                request.spec,
                request.algorithm,
                budget=request.max_measurements,
                noise=request.noise,
                noise_seed=request.noise_seed,
            )
            if record is not None:
                self._c_pre_served.inc()
                future.from_database = True
                future._set_result(record.as_result())
                return future
        ticket = self._next_ticket
        self._next_ticket += 1
        shard = _shard_for_request(request, self._serve_shards)
        self._serve_futures[ticket] = future
        self._serve_tickets[ticket] = (shard, request)
        runner = self._serve_runners.get(shard)
        if runner is not None:
            runner.enqueue(ticket, request)
        else:
            self._serve_submit_queues[shard].put(("submit", ticket, request))
        return future

    def step(self) -> bool:
        """Pump the serving fleet one round; True while work is in flight.

        Drains streamed records and per-request completions from process
        workers (failing dead ones over), advances every in-parent runner
        one scheduling round, and exchanges records between all shards.
        When process workers still owe completions and nothing else
        progressed, blocks briefly on the results queue
        (``_SERVE_PARENT_WAIT``) so a drain loop above polls paced instead
        of hot.
        """
        if not self._serving:
            return False
        progressed = False
        if self._serve_results_queue is not None:
            messages = _drain(self._serve_results_queue)
            for message in messages:
                if self._handle_serve_message(message):
                    progressed = True
            if not messages:
                self._note_serving_deaths()
        for shard in sorted(self._serve_runners):
            runner = self._serve_runners[shard]
            inbox = self._serve_inboxes.get(shard) or []
            if inbox:
                self._serve_inboxes[shard] = []
                self._o_sync_depth.set(len(inbox))
            runner.sync(inbox)
            if runner.step():
                progressed = True
            shares_exchange = runner.service.database is self._serve_exchange
            for record in runner.take_new_records():
                self._c_records_streamed.inc()
                self._o_envelopes.inc()
                self._serve_broadcast(
                    record, origin=shard, already_applied=shares_exchange
                )
            for ticket, (ticket_shard, _) in list(self._serve_tickets.items()):
                if ticket_shard != shard:
                    continue
                service_future = runner.futures.get(ticket)
                if service_future is not None and service_future.done():
                    del runner.futures[ticket]
                    if self._settle_serving(ticket, service_future=service_future):
                        progressed = True
        if (
            not progressed
            and self._serve_futures
            and self._serve_results_queue is not None
            and any(
                s not in self._serve_runners and s not in self._serve_byes
                for s in self._serve_workers
            )
        ):
            # Paced wait for worker completions instead of a hot no-progress
            # return (the sleep half is pacing, not a timing source).
            try:
                message = self._serve_results_queue.get(timeout=_SERVE_PARENT_WAIT)
            except queue.Empty:
                pass
            except Exception:
                self._c_poisoned.inc()
                self._note_serving_deaths()
                time.sleep(_SERVE_PARENT_WAIT)
            else:
                if self._handle_serve_message(message):
                    progressed = True
        return progressed or bool(self._serve_futures)

    def _handle_serve_message(self, message: object) -> bool:
        """Dispatch one serving results-queue message; True when it settled
        a ticket or advanced the exchange (the poisoned-envelope rules of
        :meth:`_handle_message` apply)."""
        if not (isinstance(message, tuple) and len(message) in (3, 4)):
            self._c_poisoned.inc()
            return False
        tag, shard = message[0], message[1]
        if (
            not isinstance(shard, int)
            or isinstance(shard, bool)
            or not 0 <= shard < self._serve_shards
        ):
            self._c_poisoned.inc()
            return False
        if tag == "record" and len(message) == 3:
            envelope = _decode_envelope(message[2])
            if envelope is None:
                self._c_poisoned.inc()
                return False
            self._c_records_streamed.inc()
            self._o_envelopes.inc()
            self._serve_broadcast(envelope.record, origin=shard)
            return True
        if tag == "done_one" and len(message) == 4:
            ticket = message[2]
            if not isinstance(ticket, int) or isinstance(ticket, bool):
                self._c_poisoned.inc()
                return False
            return self._settle_serving(ticket, outcome=message[3])
        if tag == "bye" and len(message) == 3:
            return self._retire_serving_worker(shard, message[2])
        if tag == "error" and len(message) == 3:
            self._failover_serving_shard(shard)
            return True
        self._c_poisoned.inc()
        return False

    def _serve_broadcast(
        self, record: TuningRecord, origin: int, already_applied: bool = False
    ) -> None:
        """Fold one shard's record into the exchange and, when it improved
        it, forward the surviving record to every other shard.

        ``already_applied`` marks records from failed-over runners whose
        database *is* the exchange (their stores are already folded); the
        broadcast still runs so other shards serve from them.  Forwarding
        to in-parent runners goes through their inboxes — the next
        :meth:`_ShardRunner.sync` injects and advances the checkpoint, so
        nothing echoes.
        """
        if already_applied:
            winner = record
        else:
            applied = self._serve_exchange.apply([record])
            if not applied:
                return
            winner = applied[0]
        self._c_records_applied.inc()
        wire = None
        for j, sync_queue in self._serve_sync_queues.items():
            if j == origin or j in self._serve_runners or j in self._serve_byes:
                continue
            if wire is None:
                wire = RecordEnvelope(
                    record=winner, origin=origin, revision=self._serve_exchange.revision
                ).to_wire()
            try:
                sync_queue.put(wire)
            except Exception:  # pragma: no cover - defensive (closed queue)
                pass
        for j, inbox in self._serve_inboxes.items():
            if j != origin:
                inbox.append(winner)

    def _settle_serving(
        self, ticket: int, outcome: object = None, service_future=None
    ) -> bool:
        """Answer one ticket's parent future from a worker report
        (``outcome``) or an in-parent service future.  Late reports for
        cancelled or already-failed-over tickets are discarded."""
        future = self._serve_futures.pop(ticket, None)
        self._serve_tickets.pop(ticket, None)
        if future is None or future.done():
            return False
        if service_future is not None:
            try:
                result = service_future.result(timeout=0)
            except BaseException as exc:
                future._set_exception(exc)
            else:
                future.from_database = service_future.from_database
                future.coalesced = service_future.coalesced
                future._set_result(result)
            return True
        if isinstance(outcome, tuple) and len(outcome) == 2:
            kind, payload = outcome
            if kind == "ok" and isinstance(payload, TuningResult):
                future._set_result(payload)
                return True
            if kind == "err" and isinstance(payload, dict):
                future._set_exception(error_from_wire(payload))
                return True
        self._c_poisoned.inc()
        future._set_exception(RequestFailed("malformed completion report"))
        return True

    def _retire_serving_worker(self, shard: int, payload: object) -> bool:
        """Fold a graceful worker's final ``bye`` report (stats, metrics,
        full-database safety net) and mark its shard retired."""
        if shard in self._serve_byes or shard not in self._serve_workers:
            self._c_poisoned.inc()
            return False
        self._serve_byes[shard] = True
        self._o_workers_done.inc()
        if not isinstance(payload, dict):
            self._c_poisoned.inc()
            return True
        try:
            self._serve_exchange.apply(
                TuningRecord.from_dict(d) for d in payload.get("records", [])
            )
        except Exception:
            self._c_poisoned.inc()
        stats = payload.get("stats")
        if isinstance(stats, ServiceStats):
            self._absorb(stats)
        wire = payload.get("metrics")
        if isinstance(wire, dict):
            try:
                self._merge_shard_metrics(MetricsSnapshot.from_wire(wire))
            except Exception:
                self._c_poisoned.inc()
        self._c_poisoned.inc(int(payload.get("poisoned", 0)))
        return True

    def _note_serving_deaths(self) -> None:
        """Failover check: a worker gone without a ``bye`` (after the grace
        polls that let a final message finish travelling the pipe) degrades
        its shard to an in-parent runner."""
        for shard, process in list(self._serve_workers.items()):
            if (
                shard in self._serve_byes
                or shard in self._serve_runners
                or process.is_alive()
            ):
                continue
            self._serve_dead_polls[shard] = self._serve_dead_polls.get(shard, 0) + 1
            if self._serve_dead_polls[shard] >= _DEATH_GRACE_POLLS:
                self._failover_serving_shard(shard)

    def _failover_serving_shard(self, shard: int) -> None:
        """A serving worker died: degrade per the batch fault model, made
        incremental — salvage its durable log into the exchange, then hand
        its unresolved tickets (and any future submits routed to it) to an
        in-parent runner against the exchange.  Records the worker streamed
        or persisted before dying are served, not re-tuned; the pool (and
        the daemon above) keeps serving throughout."""
        if shard in self._serve_runners:
            return
        process = self._serve_workers.pop(shard, None)
        if process is not None:
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
            process.join(timeout=1.0)
        self._c_worker_failures.inc()
        self._o_workers_failed.inc()
        self._recover_shard_store(shard, self._serve_exchange)
        runner = _ShardRunner(
            [],
            policy=self.policy,
            admit_window=self.admit_window,
            database=self._serve_exchange,
            obs=self.obs,
        )
        for ticket in sorted(
            t for t, (s, _) in self._serve_tickets.items() if s == shard
        ):
            future = self._serve_futures.get(ticket)
            if future is None or future.done():
                continue
            runner.enqueue(ticket, self._serve_tickets[ticket][1])
        self._serve_runners[shard] = runner
        self._serve_inboxes[shard] = []

    def cancel(
        self, request: TuningRequest, exc: Optional[BaseException] = None
    ) -> bool:
        """Serving-mode cancel: answer every unresolved future for
        ``request`` with ``exc`` (default
        :class:`~repro.service.errors.RequestCancelled`).

        In-parent shards cancel the underlying run through
        :meth:`TuningService.cancel`; for a process shard the cancel is
        parent-side — the worker may finish the run anyway, and its late
        report is discarded (:meth:`_settle_serving`).  Returns True when
        at least one future was answered.
        """
        if not self._serving:
            return False
        error = (
            exc
            if exc is not None
            else RequestCancelled(f"cancelled: {request.describe()}")
        )
        cancelled = False
        for ticket, (shard, ticketed) in list(self._serve_tickets.items()):
            if ticketed != request:
                continue
            future = self._serve_futures.get(ticket)
            runner = self._serve_runners.get(shard)
            if runner is not None:
                runner.pending = deque(
                    (p, r) for p, r in runner.pending if p != ticket
                )
                runner.futures.pop(ticket, None)
                runner.service.cancel(request, error)
            if future is not None and not future.done():
                future._set_exception(error)
                cancelled = True
            self._serve_futures.pop(ticket, None)
            self._serve_tickets.pop(ticket, None)
        return cancelled

    def stop(self, timeout: float = 30.0) -> None:
        """Leave serving mode gracefully.

        Process workers get a ``("stop",)`` sentinel, finish their in-flight
        work, compact their durable stores and report ``bye`` (folded into
        the pool's accounting and the exchange); workers that die instead
        fail over.  In-parent runners drain their backlogs, compact and are
        absorbed.  Any future still unresolved afterwards is answered with
        :class:`~repro.service.errors.RequestCancelled` — drain first (pump
        :meth:`step` until idle, as the daemon's drain does) for a clean
        stop.  Idempotent; a stopped pool may :meth:`start` again.
        """
        if not self._serving:
            return
        for shard, submit_queue in self._serve_submit_queues.items():
            if (
                shard in self._serve_workers
                and shard not in self._serve_runners
                and shard not in self._serve_byes
            ):
                try:
                    submit_queue.put(("stop",))
                except Exception:  # pragma: no cover - defensive
                    pass

        def outstanding() -> List[int]:
            return [
                s
                for s in self._serve_workers
                if s not in self._serve_byes and s not in self._serve_runners
            ]

        attempts = max(1, int(timeout / _POLL_SECONDS))
        while outstanding() and attempts > 0:
            try:
                message = self._serve_results_queue.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                self._note_serving_deaths()
                attempts -= 1
            except Exception:
                self._c_poisoned.inc()
                self._note_serving_deaths()
                attempts -= 1
                time.sleep(_POLL_SECONDS)
            else:
                self._handle_serve_message(message)
        for shard in outstanding():
            self._failover_serving_shard(shard)
        # Drain failed-over / in-parent shards to completion.
        while True:
            progressed = False
            for shard in sorted(self._serve_runners):
                runner = self._serve_runners[shard]
                inbox = self._serve_inboxes.get(shard) or []
                if inbox:
                    self._serve_inboxes[shard] = []
                runner.sync(inbox)
                if runner.step():
                    progressed = True
                shares = runner.service.database is self._serve_exchange
                for record in runner.take_new_records():
                    self._c_records_streamed.inc()
                    self._o_envelopes.inc()
                    self._serve_broadcast(record, origin=shard, already_applied=shares)
                for ticket, (ticket_shard, _) in list(self._serve_tickets.items()):
                    if ticket_shard != shard:
                        continue
                    service_future = runner.futures.get(ticket)
                    if service_future is not None and service_future.done():
                        del runner.futures[ticket]
                        self._settle_serving(ticket, service_future=service_future)
            if not progressed:
                break
        for runner in self._serve_runners.values():
            if runner.service.database is not self._serve_exchange:
                self._serve_exchange.apply(runner.service.database)
                runner.drain_store()
            self._absorb(runner.service.stats)
            self._merge_shard_metrics(runner.service.metrics_snapshot())
        for future in list(self._serve_futures.values()):
            if not future.done():
                future._set_exception(
                    RequestCancelled("pool stopped while request in flight")
                )
        self._finish_serving()

    def terminate(self) -> None:
        """SIGKILL-style exit from serving mode: no drain, no sentinel, no
        compaction — workers are terminated, shard databases just close, and
        unresolved futures fail.  A later :meth:`start` of a durable pool
        recovers the shard logs; everything else recovers through whatever
        journal sits above (the daemon's fault model)."""
        if not self._serving:
            return
        for process in self._serve_workers.values():
            if process.is_alive():
                process.terminate()
        for process in self._serve_workers.values():
            process.join(timeout=1.0)
        for runner in self._serve_runners.values():
            if runner.service.database is self._serve_exchange:
                continue  # shared exchange outlives the pool (daemon owns it)
            try:
                runner.service.database.close()
            except Exception:  # pragma: no cover - defensive
                pass
        for future in list(self._serve_futures.values()):
            if not future.done():
                future._set_exception(RequestCancelled("pool terminated"))
        self._finish_serving()

    def _finish_serving(self) -> None:
        """Common serving teardown: settle bookkeeping, close queues."""
        for process in self._serve_workers.values():
            process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1.0)
        self._close_serve_queues()
        self._serve_futures.clear()
        self._serve_tickets.clear()
        self._serve_runners.clear()
        self._serve_inboxes.clear()
        self._serve_workers.clear()
        self._serve_dead_polls.clear()
        self._serve_byes.clear()
        self._serving = False

    def _close_serve_queues(self) -> None:
        queues = list(self._serve_submit_queues.values())
        queues.extend(self._serve_sync_queues.values())
        if self._serve_results_queue is not None:
            queues.append(self._serve_results_queue)
        for q in queues:
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:  # pragma: no cover - defensive
                pass
        self._serve_submit_queues = {}
        self._serve_sync_queues = {}
        self._serve_results_queue = None

    def describe(self) -> Dict[str, object]:
        """JSON-native status snapshot (folded into the daemon's
        ``describe`` op when the pool backs it)."""
        return {
            "kind": "TuningWorkerPool",
            "serving": self._serving,
            "mode": self._stats_mode,
            "num_workers": self.num_workers,
            "streaming": self.streaming,
            "admit_window": self.admit_window,
            "in_flight": len(self._serve_futures),
            "stats": dataclasses.asdict(self.stats),
        }
