"""cuDNN / MIOpen-style baseline library.

The paper compares its tuned dataflows against the vendor libraries' fixed
heuristics.  This module models that baseline: for a given convolution it
selects between

* the im2col + GEMM "direct" path (always available), and
* a generically tiled Winograd ``F(2x2, 3x3)`` path (stride-1 3x3 kernels),

using simple size-based heuristics reminiscent of the libraries' dispatchers,
and reports the simulated runtime of the chosen kernel.  The baseline is
*not* tuned per layer — that is exactly the gap the paper's auto-tuner
exploits — but its GEMM path enjoys a high compute efficiency, mirroring the
heavily hand-optimised vendor kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

from ..conv.tensor import ConvParams
from ..core.dataflow.common import OutputTile
from .executor import ExecutionResult, GPUExecutor
from .kernels import KernelProfile, im2col_profile, winograd_dataflow_profile
from .spec import GPUSpec

__all__ = ["CudnnLibrary", "CudnnChoice"]

Algorithm = Literal["im2col_gemm", "winograd"]


@dataclass(frozen=True)
class CudnnChoice:
    """The library's algorithm choice and its simulated execution."""

    algorithm: Algorithm
    profile: KernelProfile
    result: ExecutionResult

    @property
    def time_seconds(self) -> float:
        return self.result.time_seconds

    @property
    def gflops(self) -> float:
        return self.result.achieved_gflops


class CudnnLibrary:
    """Vendor-library stand-in with fixed internal heuristics."""

    #: generic Winograd output tile used by the library path (not I/O-optimal:
    #: a fixed 8x8 spatial block over 8 output channels).
    _WINO_TILE = OutputTile(x=8, y=8, z=8)
    _GEMM_TILE = (32, 32)

    def __init__(self, spec: GPUSpec, noise: float = 0.05, seed: int = 2021) -> None:
        self.spec = spec
        self.executor = GPUExecutor(spec, noise=noise, seed=seed)

    # ------------------------------------------------------------------ #
    def _im2col_choice(self, params: ConvParams) -> CudnnChoice:
        tm, tn = self._GEMM_TILE
        profile = im2col_profile(params, tile_m=tm, tile_n=tn, dtype_size=self.spec.dtype_size)
        return CudnnChoice("im2col_gemm", profile, self.executor.run(profile))

    def _winograd_choice(self, params: ConvParams) -> Optional[CudnnChoice]:
        if not params.winograd_compatible() or params.ker_height != 3:
            return None
        tile = self._WINO_TILE.clip_to(params)
        profile = winograd_dataflow_profile(
            params, tile, e=2, dtype_size=self.spec.dtype_size, threads_per_block=256
        )
        # The library's Winograd kernel is hand-optimised for compute but uses a
        # generic blocking, so the traffic stays as computed for the fixed tile.
        profile = profile.with_(name="cudnn_winograd", compute_efficiency=0.45)
        if profile.smem_per_block > self.spec.shared_mem_per_sm:
            return None
        return CudnnChoice("winograd", profile, self.executor.run(profile))

    # ------------------------------------------------------------------ #
    def run_direct(self, params: ConvParams) -> CudnnChoice:
        """The library's best *direct-family* implementation (im2col/GEMM)."""
        return self._im2col_choice(params)

    def run_winograd(self, params: ConvParams) -> CudnnChoice:
        """The library's Winograd implementation.

        Raises ``ValueError`` when the problem is not Winograd compatible,
        matching the occasional algorithm-unavailable failures the paper
        mentions for cuDNN.
        """
        choice = self._winograd_choice(params)
        if choice is None:
            raise ValueError(
                f"cuDNN Winograd path unavailable for {params.describe()}"
            )
        return choice

    def run_best(self, params: ConvParams) -> CudnnChoice:
        """Dispatcher: pick the faster of the available implementations,
        the way ``cudnnFindConvolutionForwardAlgorithm`` would."""
        choices = [self._im2col_choice(params)]
        wino = self._winograd_choice(params)
        if wino is not None:
            choices.append(wino)
        return min(choices, key=lambda c: c.time_seconds)
