"""Analytical GPU memory-hierarchy simulator.

Substitute for the physical GPUs of the paper's evaluation: architecture
specs, kernel workload profiles, a roofline-with-occupancy execution model,
and a cuDNN/MIOpen-style baseline library (see DESIGN.md substitution table).
"""

from .spec import GFX906, GTX_1080TI, KNOWN_GPUS, TITAN_X, V100, GPUSpec, get_gpu
from .kernels import (
    KernelProfile,
    ProfileBatch,
    direct_dataflow_profile,
    gemm_traffic,
    im2col_profile,
    winograd_dataflow_profile,
)
from .executor import ExecutionResult, GPUExecutor, occupancy
from .cudnn import CudnnChoice, CudnnLibrary

__all__ = [
    "GPUSpec",
    "get_gpu",
    "KNOWN_GPUS",
    "GTX_1080TI",
    "V100",
    "TITAN_X",
    "GFX906",
    "KernelProfile",
    "ProfileBatch",
    "direct_dataflow_profile",
    "winograd_dataflow_profile",
    "im2col_profile",
    "gemm_traffic",
    "ExecutionResult",
    "GPUExecutor",
    "occupancy",
    "CudnnChoice",
    "CudnnLibrary",
]
