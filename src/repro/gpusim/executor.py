"""Analytical execution model ("run" a kernel profile on a GPU spec).

The model is a refined roofline:

* **occupancy** — how many thread blocks fit per SM given their shared-memory
  and thread footprints, and whether there are enough blocks to fill the
  device;
* **memory time** — DRAM bytes divided by the bandwidth, derated by the
  layout coalescing factor and by low occupancy (latency hiding);
* **compute time** — FLOPs divided by peak, derated by the kernel's intrinsic
  compute efficiency, by partial warps and by low occupancy;
* the kernel time is ``max(memory, compute)`` plus a launch overhead;
* an optional deterministic, configuration-keyed noise term models run-to-run
  measurement variance so that the auto-tuner's cost model has a realistic
  (but reproducible) learning problem.

The executor never claims to predict absolute hardware runtimes — it provides
a *consistent* machine for comparing schedules, which is what the paper's
experiments need (see DESIGN.md).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Optional

from .kernels import KernelProfile
from .spec import GPUSpec

__all__ = ["ExecutionResult", "GPUExecutor", "occupancy"]


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one simulated kernel execution."""

    kernel: str
    gpu: str
    time_seconds: float
    compute_time: float
    memory_time: float
    occupancy: float
    achieved_gflops: float
    achieved_bandwidth: float  # bytes / s
    dram_bytes: float
    flops: float

    @property
    def time_ms(self) -> float:
        return self.time_seconds * 1e3

    @property
    def bound(self) -> str:
        """Which roofline leg limits the kernel."""
        return "memory" if self.memory_time >= self.compute_time else "compute"

    def describe(self) -> str:
        return (
            f"{self.kernel} on {self.gpu}: {self.time_ms:.3f} ms "
            f"({self.achieved_gflops:.0f} GFLOP/s, {self.bound}-bound, "
            f"occ={self.occupancy:.2f})"
        )


def occupancy(profile: KernelProfile, spec: GPUSpec) -> float:
    """Fraction of the device's thread capacity the launch keeps busy.

    Limited by shared memory per SM, threads per SM, blocks per SM, and by
    whether there are enough blocks to give every SM at least one.
    """
    if profile.smem_per_block > spec.shared_mem_per_sm:
        raise ValueError(
            f"kernel {profile.name!r} needs {profile.smem_per_block} B of shared "
            f"memory per block but {spec.name} has {spec.shared_mem_per_sm} B per SM"
        )
    if profile.threads_per_block > spec.max_threads_per_block:
        raise ValueError(
            f"kernel {profile.name!r} uses {profile.threads_per_block} threads per "
            f"block; {spec.name} allows at most {spec.max_threads_per_block}"
        )
    blocks_by_smem = (
        spec.shared_mem_per_sm // max(1, profile.smem_per_block)
        if profile.smem_per_block
        else spec.max_blocks_per_sm
    )
    blocks_by_threads = spec.max_threads_per_sm // profile.threads_per_block
    blocks_per_sm = max(1, min(spec.max_blocks_per_sm, blocks_by_smem, blocks_by_threads))
    resident_threads = min(
        spec.max_threads_per_sm, blocks_per_sm * profile.threads_per_block
    )
    thread_occ = resident_threads / spec.max_threads_per_sm
    # Tail / fill effect: too few blocks leaves SMs idle.
    fill = min(1.0, profile.num_blocks / (spec.num_sms * max(1, blocks_per_sm)))
    wave_fill = min(1.0, profile.num_blocks / spec.num_sms)
    return max(0.01, thread_occ * max(fill, 0.25) * max(wave_fill, 0.25))


class GPUExecutor:
    """Simulated execution of kernel profiles on one GPU."""

    def __init__(self, spec: GPUSpec, noise: float = 0.05, seed: int = 2021) -> None:
        if noise < 0 or noise >= 0.5:
            raise ValueError("noise must be in [0, 0.5)")
        self.spec = spec
        self.noise = noise
        self.seed = seed

    # ------------------------------------------------------------------ #
    def _noise_factor(self, profile: KernelProfile) -> float:
        """Deterministic pseudo-random multiplier in [1-noise, 1+noise].

        Keyed by the kernel's salient configuration so that re-measuring the
        same configuration returns the same time (the paper's tuner averages
        repeated hardware runs; we model the averaged value)."""
        if self.noise == 0:
            return 1.0
        key = (
            f"{self.seed}|{self.spec.name}|{profile.name}|{profile.threads_per_block}"
            f"|{profile.num_blocks}|{profile.smem_per_block}|{profile.layout.value}"
            f"|{profile.dram_bytes:.0f}|{profile.flops:.0f}"
        )
        digest = hashlib.sha256(key.encode()).digest()
        unit = int.from_bytes(digest[:8], "little") / float(2**64)
        return 1.0 + self.noise * (2.0 * unit - 1.0)

    def run(self, profile: KernelProfile) -> ExecutionResult:
        """Predict the execution time of one kernel launch."""
        spec = self.spec
        occ = occupancy(profile, spec)

        # Memory leg: bandwidth derated by coalescing and (weakly) by occupancy
        # because low occupancy cannot hide DRAM latency.
        bw_eff = spec.dram_bandwidth * profile.coalescing * min(1.0, 0.35 + 0.65 * occ)
        memory_time = profile.dram_bytes / bw_eff if profile.dram_bytes else 0.0

        # Compute leg: peak derated by the kernel's efficiency, warp granularity
        # and occupancy.
        warp_eff = 1.0
        rem = profile.threads_per_block % spec.warp_size
        if rem:
            warp_eff = profile.threads_per_block / (
                profile.threads_per_block + (spec.warp_size - rem)
            )
        flop_rate = (
            spec.peak_flops
            * profile.compute_efficiency
            * warp_eff
            * min(1.0, 0.25 + 0.75 * occ)
        )
        compute_time = profile.flops / flop_rate if profile.flops else 0.0

        base = max(memory_time, compute_time) + spec.kernel_launch_overhead
        time = base * self._noise_factor(profile)

        return ExecutionResult(
            kernel=profile.name,
            gpu=spec.name,
            time_seconds=time,
            compute_time=compute_time,
            memory_time=memory_time,
            occupancy=occ,
            achieved_gflops=(profile.flops / time) / 1e9 if time > 0 else 0.0,
            achieved_bandwidth=profile.dram_bytes / time if time > 0 else 0.0,
            dram_bytes=profile.dram_bytes,
            flops=profile.flops,
        )

    def gflops(self, profile: KernelProfile) -> float:
        """Convenience: achieved GFLOP/s of one profile."""
        return self.run(profile).achieved_gflops
