"""Analytical execution model ("run" a kernel profile on a GPU spec).

The model is a refined roofline:

* **occupancy** — how many thread blocks fit per SM given their shared-memory
  and thread footprints, and whether there are enough blocks to fill the
  device;
* **memory time** — DRAM bytes divided by the bandwidth, derated by the
  layout coalescing factor and by low occupancy (latency hiding);
* **compute time** — FLOPs divided by peak, derated by the kernel's intrinsic
  compute efficiency, by partial warps and by low occupancy;
* the kernel time is ``max(memory, compute)`` plus a launch overhead;
* an optional deterministic, configuration-keyed noise term models run-to-run
  measurement variance so that the auto-tuner's cost model has a realistic
  (but reproducible) learning problem.

The executor never claims to predict absolute hardware runtimes — it provides
a *consistent* machine for comparing schedules, which is what the paper's
experiments need (see DESIGN.md).

Two execution paths are offered:

* :meth:`GPUExecutor.run` — one profile at a time (scalar Python);
* :meth:`GPUExecutor.run_batch` — N profiles at once, with the occupancy,
  memory/compute legs and deterministic noise computed as NumPy array
  operations.  The batched path is bit-identical to the scalar path and is
  what the auto-tuner's measurement pipeline uses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence, Union

import numpy as np

from ..obs.metrics import (
    BATCH_SIZE_BOUNDS,
    GROUP_COUNT_BOUNDS,
    NULL_COUNTER,
    NULL_HISTOGRAM,
)
from .kernels import KernelProfile, ProfileBatch
from .spec import GPUSpec

__all__ = ["ExecutionResult", "GPUExecutor", "occupancy"]

#: 2**64 as a float, the normaliser of the deterministic noise hash.
_TWO_POW_64 = float(2**64)


def _noise_key(
    seed: int,
    gpu: str,
    name: str,
    threads_per_block: int,
    num_blocks: int,
    smem_per_block: int,
    layout_value: str,
    dram_bytes: float,
    flops: float,
) -> str:
    """The configuration-keyed identity the noise hash is computed over.

    Single definition used by both the scalar and the batched path, so the
    two can never disagree on the key format."""
    return (
        f"{seed}|{gpu}|{name}|{threads_per_block}"
        f"|{num_blocks}|{smem_per_block}|{layout_value}"
        f"|{dram_bytes:.0f}|{flops:.0f}"
    )


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one simulated kernel execution."""

    kernel: str
    gpu: str
    time_seconds: float
    compute_time: float
    memory_time: float
    occupancy: float
    achieved_gflops: float
    achieved_bandwidth: float  # bytes / s
    dram_bytes: float
    flops: float

    @classmethod
    def _fast_new(cls, **fields) -> "ExecutionResult":
        """Construct without the frozen-dataclass ``__init__`` overhead.

        The generated ``__init__`` of a frozen dataclass goes through
        ``object.__setattr__`` once per field, which dominates the batched
        executor's result-building loop; there is no validation to skip, so
        populating ``__dict__`` directly is equivalent.  (Revisit if this
        dataclass ever grows ``__slots__`` or a ``__post_init__``.)
        """
        self = cls.__new__(cls)
        self.__dict__.update(fields)
        return self

    @property
    def time_ms(self) -> float:
        return self.time_seconds * 1e3

    @property
    def bound(self) -> str:
        """Which roofline leg limits the kernel."""
        return "memory" if self.memory_time >= self.compute_time else "compute"

    def describe(self) -> str:
        return (
            f"{self.kernel} on {self.gpu}: {self.time_ms:.3f} ms "
            f"({self.achieved_gflops:.0f} GFLOP/s, {self.bound}-bound, "
            f"occ={self.occupancy:.2f})"
        )


def occupancy(profile: KernelProfile, spec: GPUSpec) -> float:
    """Fraction of the device's thread capacity the launch keeps busy.

    Limited by shared memory per SM, threads per SM, blocks per SM, and by
    whether there are enough blocks to give every SM at least one.
    """
    if profile.smem_per_block > spec.shared_mem_per_sm:
        raise ValueError(
            f"kernel {profile.name!r} needs {profile.smem_per_block} B of shared "
            f"memory per block but {spec.name} has {spec.shared_mem_per_sm} B per SM"
        )
    if profile.threads_per_block > spec.max_threads_per_block:
        raise ValueError(
            f"kernel {profile.name!r} uses {profile.threads_per_block} threads per "
            f"block; {spec.name} allows at most {spec.max_threads_per_block}"
        )
    if profile.threads_per_block > spec.max_threads_per_sm:
        # A block that cannot be resident at all must not be scored as if one
        # block were running; such a launch simply does not fit the device.
        raise ValueError(
            f"kernel {profile.name!r} uses {profile.threads_per_block} threads per "
            f"block but {spec.name} can only keep {spec.max_threads_per_sm} "
            "threads resident per SM; the launch is infeasible"
        )
    blocks_by_smem = (
        spec.shared_mem_per_sm // max(1, profile.smem_per_block)
        if profile.smem_per_block
        else spec.max_blocks_per_sm
    )
    blocks_by_threads = spec.max_threads_per_sm // profile.threads_per_block
    blocks_per_sm = min(spec.max_blocks_per_sm, blocks_by_smem, blocks_by_threads)
    resident_threads = min(
        spec.max_threads_per_sm, blocks_per_sm * profile.threads_per_block
    )
    thread_occ = resident_threads / spec.max_threads_per_sm
    # Tail / fill effect: too few blocks leaves SMs idle.
    fill = min(1.0, profile.num_blocks / (spec.num_sms * max(1, blocks_per_sm)))
    wave_fill = min(1.0, profile.num_blocks / spec.num_sms)
    return max(0.01, thread_occ * max(fill, 0.25) * max(wave_fill, 0.25))


class GPUExecutor:
    """Simulated execution of kernel profiles on one GPU."""

    def __init__(self, spec: GPUSpec, noise: float = 0.05, seed: int = 2021) -> None:
        if noise < 0 or noise >= 0.5:
            raise ValueError("noise must be in [0, 0.5)")
        self.spec = spec
        self.noise = noise
        self.seed = seed
        # Telemetry mirrors: module-level null no-ops until attach_metrics
        # binds real instruments.  The executor lives in the REPRO601
        # no-wall-clock scope, so it records only counts/sizes, never times.
        self._m_runs = NULL_COUNTER
        self._m_batch_size = NULL_HISTOGRAM
        self._m_group_count = NULL_HISTOGRAM

    def attach_metrics(self, metrics) -> None:
        """Bind executor telemetry to a metrics scope (see ``repro.obs``).

        ``metrics`` is a :class:`~repro.obs.metrics.Scope` (or registry);
        instruments recorded: ``runs`` (scalar executions), ``batch_size``
        (configs per batched call) and ``group_count`` (slices per packed
        ``run_batch_groups`` call).
        """
        self._m_runs = metrics.counter("runs")
        self._m_batch_size = metrics.histogram("batch_size", BATCH_SIZE_BOUNDS)
        self._m_group_count = metrics.histogram("group_count", GROUP_COUNT_BOUNDS)

    # ------------------------------------------------------------------ #
    def _noise_factor_fields(
        self,
        name: str,
        threads_per_block: int,
        num_blocks: int,
        smem_per_block: int,
        layout_value: str,
        dram_bytes: float,
        flops: float,
    ) -> float:
        """Noise multiplier from the salient configuration fields.

        The batched path inlines the hash arithmetic for speed but builds
        its keys with the same :func:`_noise_key`."""
        key = _noise_key(
            self.seed,
            self.spec.name,
            name,
            threads_per_block,
            num_blocks,
            smem_per_block,
            layout_value,
            dram_bytes,
            flops,
        )
        digest = hashlib.sha256(key.encode()).digest()
        unit = int.from_bytes(digest[:8], "little") / _TWO_POW_64
        return 1.0 + self.noise * (2.0 * unit - 1.0)

    def _noise_factor(self, profile: KernelProfile) -> float:
        """Deterministic pseudo-random multiplier in [1-noise, 1+noise].

        Keyed by the kernel's salient configuration so that re-measuring the
        same configuration returns the same time (the paper's tuner averages
        repeated hardware runs; we model the averaged value)."""
        if self.noise == 0:
            return 1.0
        return self._noise_factor_fields(
            profile.name,
            profile.threads_per_block,
            profile.num_blocks,
            profile.smem_per_block,
            profile.layout.value,
            profile.dram_bytes,
            profile.flops,
        )

    def run(self, profile: KernelProfile) -> ExecutionResult:
        """Predict the execution time of one kernel launch."""
        self._m_runs.inc()
        spec = self.spec
        occ = occupancy(profile, spec)

        # Memory leg: bandwidth derated by coalescing and (weakly) by occupancy
        # because low occupancy cannot hide DRAM latency.
        bw_eff = spec.dram_bandwidth * profile.coalescing * min(1.0, 0.35 + 0.65 * occ)
        memory_time = profile.dram_bytes / bw_eff if profile.dram_bytes else 0.0

        # Compute leg: peak derated by the kernel's efficiency, warp granularity
        # and occupancy.
        warp_eff = 1.0
        rem = profile.threads_per_block % spec.warp_size
        if rem:
            warp_eff = profile.threads_per_block / (
                profile.threads_per_block + (spec.warp_size - rem)
            )
        flop_rate = (
            spec.peak_flops
            * profile.compute_efficiency
            * warp_eff
            * min(1.0, 0.25 + 0.75 * occ)
        )
        compute_time = profile.flops / flop_rate if profile.flops else 0.0

        base = max(memory_time, compute_time) + spec.kernel_launch_overhead
        time = base * self._noise_factor(profile)

        return ExecutionResult(
            kernel=profile.name,
            gpu=spec.name,
            time_seconds=time,
            compute_time=compute_time,
            memory_time=memory_time,
            occupancy=occ,
            achieved_gflops=(profile.flops / time) / 1e9 if time > 0 else 0.0,
            achieved_bandwidth=profile.dram_bytes / time if time > 0 else 0.0,
            dram_bytes=profile.dram_bytes,
            flops=profile.flops,
        )

    # ------------------------------------------------------------------ #
    def run_batch(
        self, profiles: Union[ProfileBatch, Sequence[KernelProfile]]
    ) -> List[ExecutionResult]:
        """Predict the execution times of N kernel launches at once.

        Accepts either a list of :class:`KernelProfile` or a pre-built
        :class:`ProfileBatch` (structure-of-arrays).  The occupancy, roofline
        legs and noise terms are computed with NumPy array operations; every
        returned :class:`ExecutionResult` is bit-identical to what
        :meth:`run` produces for the same profile.
        """
        batch = (
            profiles
            if isinstance(profiles, ProfileBatch)
            else ProfileBatch.from_profiles(profiles)
        )
        n = len(batch)
        if n == 0:
            return []
        self._m_batch_size.observe(n)
        spec = self.spec

        smem = batch.smem_per_block
        threads = batch.threads_per_block
        num_blocks = batch.num_blocks
        # Same feasibility rules as the scalar occupancy() helper.
        for mask, what, limit in (
            (smem > spec.shared_mem_per_sm, "shared memory per block", spec.shared_mem_per_sm),
            (threads > spec.max_threads_per_block, "threads per block", spec.max_threads_per_block),
            (threads > spec.max_threads_per_sm, "resident threads per SM", spec.max_threads_per_sm),
        ):
            if np.any(mask):
                i = int(np.argmax(mask))
                raise ValueError(
                    f"kernel {batch.names[i]!r} exceeds the {spec.name} limit on "
                    f"{what} ({limit})"
                )

        # Occupancy (vectorised copy of occupancy()).
        blocks_by_smem = np.where(
            smem > 0,
            spec.shared_mem_per_sm // np.maximum(1, smem),
            spec.max_blocks_per_sm,
        )
        blocks_by_threads = spec.max_threads_per_sm // threads
        blocks_per_sm = np.minimum(
            spec.max_blocks_per_sm, np.minimum(blocks_by_smem, blocks_by_threads)
        )
        resident = np.minimum(spec.max_threads_per_sm, blocks_per_sm * threads)
        thread_occ = resident / spec.max_threads_per_sm
        fill = np.minimum(1.0, num_blocks / (spec.num_sms * np.maximum(1, blocks_per_sm)))
        wave_fill = np.minimum(1.0, num_blocks / spec.num_sms)
        occ = np.maximum(
            0.01, thread_occ * np.maximum(fill, 0.25) * np.maximum(wave_fill, 0.25)
        )

        # Memory leg.
        bw_eff = spec.dram_bandwidth * batch.coalescing * np.minimum(1.0, 0.35 + 0.65 * occ)
        memory_time = np.where(batch.dram_bytes > 0, batch.dram_bytes / bw_eff, 0.0)

        # Compute leg.
        rem = threads % spec.warp_size
        warp_eff = np.where(
            rem > 0, threads / (threads + (spec.warp_size - rem)), 1.0
        )
        flop_rate = (
            spec.peak_flops
            * batch.compute_efficiency
            * warp_eff
            * np.minimum(1.0, 0.25 + 0.75 * occ)
        )
        compute_time = np.where(batch.flops > 0, batch.flops / flop_rate, 0.0)

        base = np.maximum(memory_time, compute_time) + spec.kernel_launch_overhead
        threads_l = threads.tolist()
        blocks_l = num_blocks.tolist()
        smem_l = smem.tolist()
        dram_l = batch.dram_bytes.tolist()
        flops_l = batch.flops.tolist()
        if self.noise == 0:
            noise = 1.0
        else:
            # Hash arithmetic inlined (it is the hot loop of the batched
            # path); the key itself comes from the shared _noise_key, so the
            # scalar and batched paths cannot drift apart on the format.
            seed, gpu = self.seed, spec.name
            amplitude = self.noise
            sha256 = hashlib.sha256
            from_bytes = int.from_bytes
            noise = np.fromiter(
                (
                    1.0
                    + amplitude
                    * (
                        2.0
                        * (
                            from_bytes(
                                sha256(
                                    _noise_key(seed, gpu, nm, t, b, s, lv, d, f).encode()
                                ).digest()[:8],
                                "little",
                            )
                            / _TWO_POW_64
                        )
                        - 1.0
                    )
                    for nm, t, b, s, lv, d, f in zip(
                        batch.names, threads_l, blocks_l, smem_l,
                        batch.layout_values, dram_l, flops_l,
                    )
                ),
                dtype=np.float64,
                count=n,
            )
        time = base * noise

        gflops = np.where(time > 0, (batch.flops / time) / 1e9, 0.0)
        bandwidth = np.where(time > 0, batch.dram_bytes / time, 0.0)
        gpu_name = spec.name
        fast_new = ExecutionResult._fast_new
        return [
            fast_new(
                kernel=nm,
                gpu=gpu_name,
                time_seconds=t,
                compute_time=ct,
                memory_time=mt,
                occupancy=o,
                achieved_gflops=g,
                achieved_bandwidth=bw,
                dram_bytes=d,
                flops=f,
            )
            for nm, t, ct, mt, o, g, bw, d, f in zip(
                batch.names,
                time.tolist(),
                compute_time.tolist(),
                memory_time.tolist(),
                occ.tolist(),
                gflops.tolist(),
                bandwidth.tolist(),
                dram_l,
                flops_l,
            )
        ]

    def run_batch_groups(
        self, batches: Sequence[ProfileBatch]
    ) -> List[List[ExecutionResult]]:
        """Execute several profile batches in one :meth:`run_batch` call.

        The batched model computes every quantity element-wise (occupancy,
        roofline legs, and the configuration-keyed noise term), so the
        concatenated execution is bit-identical to running each batch on its
        own — only the per-call Python overhead is shared.  This is the
        entry point of the tuning service's cross-request measurement
        packing: each concurrent tuning session lowers its own slice, and the
        scheduler fuses the slices into a single executor call per device.

        Returns one result list per input batch, in order.
        """
        batches = list(batches)
        sizes = [len(b) for b in batches]
        if sum(sizes) == 0:
            return [[] for _ in batches]
        self._m_group_count.observe(len(batches))
        flat = self.run_batch(ProfileBatch.concat(batches))
        out: List[List[ExecutionResult]] = []
        offset = 0
        for size in sizes:
            out.append(flat[offset : offset + size])
            offset += size
        return out

    def gflops(self, profile: KernelProfile) -> float:
        """Convenience: achieved GFLOP/s of one profile."""
        return self.run(profile).achieved_gflops
