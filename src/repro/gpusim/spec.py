"""GPU architecture specifications.

The paper evaluates on NVIDIA 1080Ti (Pascal), V100 (Volta), GTX Titan X
(Maxwell) and AMD gfx906 (Vega 20).  We model each device by the handful of
parameters that drive a two-level memory-hierarchy performance model:

* number of streaming multiprocessors (SMs / CUs),
* shared memory (LDS) capacity per SM — the "fast memory" ``S`` of the
  red–blue pebble game,
* DRAM bandwidth,
* peak single-precision throughput,
* maximum resident threads/blocks per SM (for the occupancy model).

The figures are the public datasheet values; absolute accuracy is not needed
because every comparison in the reproduction runs both sides on the same
simulated device (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["GPUSpec", "GTX_1080TI", "V100", "TITAN_X", "GFX906", "KNOWN_GPUS", "get_gpu"]


@dataclass(frozen=True)
class GPUSpec:
    """Analytical description of one GPU."""

    name: str
    num_sms: int
    shared_mem_per_sm: int  # bytes
    dram_bandwidth: float  # bytes / second
    peak_flops: float  # single-precision FLOP / s
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 32
    max_threads_per_block: int = 1024
    warp_size: int = 32
    l2_cache: int = 4 * 1024 * 1024  # bytes
    kernel_launch_overhead: float = 5e-6  # seconds
    dtype_size: int = 4  # fp32

    def __post_init__(self) -> None:
        if self.num_sms <= 0 or self.shared_mem_per_sm <= 0:
            raise ValueError("num_sms and shared_mem_per_sm must be positive")
        if self.dram_bandwidth <= 0 or self.peak_flops <= 0:
            raise ValueError("bandwidth and peak_flops must be positive")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def shared_mem_elements_per_sm(self) -> int:
        """Fast-memory capacity ``S`` in fp32 elements per SM."""
        return self.shared_mem_per_sm // self.dtype_size

    @property
    def total_shared_mem_elements(self) -> int:
        return self.num_sms * self.shared_mem_elements_per_sm

    @property
    def ridge_intensity(self) -> float:
        """Roofline ridge point in FLOP / byte."""
        return self.peak_flops / self.dram_bandwidth

    def describe(self) -> str:
        return (
            f"{self.name}: {self.num_sms} SMs, "
            f"{self.shared_mem_per_sm // 1024} KiB smem/SM, "
            f"{self.dram_bandwidth / 1e9:.0f} GB/s, "
            f"{self.peak_flops / 1e12:.2f} TFLOP/s"
        )


GTX_1080TI = GPUSpec(
    name="1080Ti",
    num_sms=28,
    shared_mem_per_sm=96 * 1024,
    dram_bandwidth=484e9,
    peak_flops=11.34e12,
    max_threads_per_sm=2048,
    l2_cache=2816 * 1024,
)

V100 = GPUSpec(
    name="V100",
    num_sms=80,
    shared_mem_per_sm=96 * 1024,
    dram_bandwidth=900e9,
    peak_flops=15.7e12,
    max_threads_per_sm=2048,
    l2_cache=6 * 1024 * 1024,
)

TITAN_X = GPUSpec(
    name="TitanX",
    num_sms=24,
    shared_mem_per_sm=96 * 1024,
    dram_bandwidth=336e9,
    peak_flops=6.69e12,
    max_threads_per_sm=2048,
    l2_cache=3 * 1024 * 1024,
)

GFX906 = GPUSpec(
    name="gfx906",
    num_sms=60,
    shared_mem_per_sm=64 * 1024,
    dram_bandwidth=1024e9,
    peak_flops=13.44e12,
    max_threads_per_sm=2560,
    warp_size=64,
    l2_cache=4 * 1024 * 1024,
)

KNOWN_GPUS: Dict[str, GPUSpec] = {
    spec.name: spec for spec in (GTX_1080TI, V100, TITAN_X, GFX906)
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by name (case-insensitive)."""
    for key, spec in KNOWN_GPUS.items():
        if key.lower() == name.lower():
            return spec
    raise KeyError(f"unknown GPU {name!r}; known: {sorted(KNOWN_GPUS)}")
