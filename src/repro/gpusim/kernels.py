"""Kernel profiles: the workload description the executor consumes.

A :class:`KernelProfile` captures everything the analytical performance model
needs about one GPU kernel launch:

* total floating-point work,
* off-chip (DRAM) traffic in bytes,
* per-thread-block shared-memory footprint and thread count,
* number of thread blocks,
* qualitative efficiency hints (coalescing of the memory layout, whether the
  inner loops vectorise well).

Profiles for the convolution implementations under study are built by the
constructors below from a :class:`~repro.conv.tensor.ConvParams`, an output
tile / configuration, and the algorithm family.  The auto-tuner uses
:func:`profile_from_configuration` (in :mod:`repro.core.autotune.config`)
which delegates to these constructors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from ..conv.tensor import ConvParams, Layout
from ..conv.winograd import winograd_flops
from ..conv.im2col import im2col_buffer_elements
from ..core.dataflow.common import IOVolume, OutputTile, ceil_div
from ..core.dataflow.direct import direct_dataflow_io
from ..core.dataflow.winograd import winograd_dataflow_io

__all__ = [
    "KernelProfile",
    "ProfileBatch",
    "direct_dataflow_profile",
    "winograd_dataflow_profile",
    "im2col_profile",
    "gemm_traffic",
]


@dataclass(frozen=True)
class KernelProfile:
    """Workload description of one kernel launch."""

    name: str
    flops: float
    dram_bytes: float
    smem_per_block: int  # bytes
    threads_per_block: int
    num_blocks: int
    coalescing: float = 1.0  # 0 < c <= 1, fraction of peak bandwidth reachable
    compute_efficiency: float = 0.6  # fraction of peak FLOPs reachable
    layout: Layout = Layout.CHW

    def __post_init__(self) -> None:
        if self.flops < 0 or self.dram_bytes < 0:
            raise ValueError("flops and dram_bytes must be non-negative")
        if self.threads_per_block <= 0 or self.num_blocks <= 0:
            raise ValueError("threads_per_block and num_blocks must be positive")
        if not (0.0 < self.coalescing <= 1.0):
            raise ValueError("coalescing must be in (0, 1]")
        if not (0.0 < self.compute_efficiency <= 1.0):
            raise ValueError("compute_efficiency must be in (0, 1]")
        if self.smem_per_block < 0:
            raise ValueError("smem_per_block must be non-negative")

    @property
    def arithmetic_intensity(self) -> float:
        """FLOP per DRAM byte."""
        if self.dram_bytes == 0:
            return math.inf
        return self.flops / self.dram_bytes

    def with_(self, **kwargs) -> "KernelProfile":
        return replace(self, **kwargs)


@dataclass
class ProfileBatch:
    """Structure-of-arrays view of N kernel profiles.

    The batched executor (:meth:`repro.gpusim.executor.GPUExecutor.run_batch`)
    consumes this form directly; the auto-tuner's vectorised lowering
    (:func:`repro.core.autotune.config.lower_batch`) produces it without ever
    materialising per-configuration :class:`KernelProfile` objects, which is
    where the batched measurement pipeline gets its speed.
    """

    names: List[str]
    flops: np.ndarray  # float64
    dram_bytes: np.ndarray  # float64
    smem_per_block: np.ndarray  # int64, bytes
    threads_per_block: np.ndarray  # int64
    num_blocks: np.ndarray  # int64
    coalescing: np.ndarray  # float64
    compute_efficiency: np.ndarray  # float64
    layout_values: List[str]

    def __post_init__(self) -> None:
        n = len(self.names)
        for field in (
            "flops",
            "dram_bytes",
            "smem_per_block",
            "threads_per_block",
            "num_blocks",
            "coalescing",
            "compute_efficiency",
        ):
            arr = np.asarray(getattr(self, field))
            if arr.shape != (n,):
                raise ValueError(f"{field} must have shape ({n},), got {arr.shape}")
            setattr(self, field, arr)
        if len(self.layout_values) != n:
            raise ValueError("layout_values must match names in length")

    def __len__(self) -> int:
        return len(self.names)

    @classmethod
    def from_profiles(cls, profiles: Sequence[KernelProfile]) -> "ProfileBatch":
        """Pack a list of profiles into the structure-of-arrays form."""
        return cls(
            names=[p.name for p in profiles],
            flops=np.fromiter((p.flops for p in profiles), np.float64, len(profiles)),
            dram_bytes=np.fromiter(
                (p.dram_bytes for p in profiles), np.float64, len(profiles)
            ),
            smem_per_block=np.fromiter(
                (p.smem_per_block for p in profiles), np.int64, len(profiles)
            ),
            threads_per_block=np.fromiter(
                (p.threads_per_block for p in profiles), np.int64, len(profiles)
            ),
            num_blocks=np.fromiter(
                (p.num_blocks for p in profiles), np.int64, len(profiles)
            ),
            coalescing=np.fromiter(
                (p.coalescing for p in profiles), np.float64, len(profiles)
            ),
            compute_efficiency=np.fromiter(
                (p.compute_efficiency for p in profiles), np.float64, len(profiles)
            ),
            layout_values=[p.layout.value for p in profiles],
        )

    @classmethod
    def concat(cls, batches: Sequence["ProfileBatch"]) -> "ProfileBatch":
        """Concatenate several batches into one (order preserved).

        The executor's batched model is element-wise, so running the
        concatenation is equivalent to running each batch separately — this
        is what lets the tuning service pack measurement slices from many
        concurrent requests into a single executor call.
        """
        batches = list(batches)
        if len(batches) == 1:
            return batches[0]
        if not batches:
            return cls.from_profiles([])
        return cls(
            names=[n for b in batches for n in b.names],
            flops=np.concatenate([b.flops for b in batches]),
            dram_bytes=np.concatenate([b.dram_bytes for b in batches]),
            smem_per_block=np.concatenate([b.smem_per_block for b in batches]),
            threads_per_block=np.concatenate([b.threads_per_block for b in batches]),
            num_blocks=np.concatenate([b.num_blocks for b in batches]),
            coalescing=np.concatenate([b.coalescing for b in batches]),
            compute_efficiency=np.concatenate([b.compute_efficiency for b in batches]),
            layout_values=[v for b in batches for v in b.layout_values],
        )


_LAYOUT_COALESCING = {
    Layout.CHW: 1.0,  # contiguous along W: fully coalesced row accesses
    Layout.HWC: 0.85,  # channel-interleaved: good for pointwise, slight penalty here
    Layout.CWH: 0.65,  # column-major spatial: strided accesses
}

#: intrinsic compute efficiency and kernel name of each dataflow template —
#: single source for the scalar constructors below AND the vectorised
#: lowering (repro.core.autotune.config.lower_batch); edit here, not there.
DATAFLOW_COMPUTE_EFF = {"direct": 0.65, "winograd": 0.55}
DIRECT_KERNEL_NAME = "direct_dataflow"


def winograd_kernel_name(e: int) -> str:
    return f"winograd_dataflow_f{e}"


def _threads_for_tile(tile: OutputTile, requested: Optional[int], warp: int = 32) -> int:
    if requested is not None:
        return max(warp, min(1024, int(requested)))
    return int(max(warp, min(1024, warp * ceil_div(tile.outputs, warp) // 4 + warp)))


def direct_dataflow_profile(
    params: ConvParams,
    tile: OutputTile,
    dtype_size: int = 4,
    threads_per_block: Optional[int] = None,
    layout: Optional[Layout] = None,
) -> KernelProfile:
    """Profile of the paper's I/O-optimal direct-convolution dataflow.

    One thread block owns one output sub-block; DRAM traffic is the
    closed-form dataflow volume of Section 5.2.
    """
    layout = layout if layout is not None else params.layout
    tile = tile.clip_to(params)
    io: IOVolume = direct_dataflow_io(params, tile)
    blocks = (
        ceil_div(params.out_width, tile.x)
        * ceil_div(params.out_height, tile.y)
        * ceil_div(params.out_channels, tile.z)
        * params.batch
    )
    smem_elems = (
        tile.outputs
        + tile.input_footprint(params)
        + params.ker_height * params.ker_width * tile.z
    )
    return KernelProfile(
        name=DIRECT_KERNEL_NAME,
        flops=float(params.flops),
        dram_bytes=io.total * dtype_size,
        smem_per_block=smem_elems * dtype_size,
        threads_per_block=_threads_for_tile(tile, threads_per_block),
        num_blocks=blocks,
        coalescing=_LAYOUT_COALESCING[layout],
        compute_efficiency=DATAFLOW_COMPUTE_EFF["direct"],
        layout=layout,
    )


def winograd_dataflow_profile(
    params: ConvParams,
    tile: OutputTile,
    e: int = 2,
    dtype_size: int = 4,
    threads_per_block: Optional[int] = None,
    layout: Optional[Layout] = None,
) -> KernelProfile:
    """Profile of the paper's I/O-optimal Winograd dataflow (Section 5.3)."""
    layout = layout if layout is not None else params.layout
    tile = tile.clip_to(params)
    r = params.ker_height
    t = e + r - 1
    io = winograd_dataflow_io(params, tile, e)
    blocks = (
        ceil_div(params.out_width, tile.x)
        * ceil_div(params.out_height, tile.y)
        * ceil_div(params.out_channels, tile.z)
        * params.batch
    )
    temp_elems = int(math.ceil(2.0 * t * t / (e * e) * tile.outputs))
    smem_elems = temp_elems + (tile.x + r - 1) * (tile.y + r - 1) + tile.z * r * r
    return KernelProfile(
        name=winograd_kernel_name(e),
        flops=float(winograd_flops(params, e=e)),
        dram_bytes=io.total * dtype_size,
        smem_per_block=smem_elems * dtype_size,
        threads_per_block=_threads_for_tile(tile, threads_per_block),
        num_blocks=blocks,
        coalescing=_LAYOUT_COALESCING[layout],
        compute_efficiency=DATAFLOW_COMPUTE_EFF["winograd"],
        layout=layout,
    )


def gemm_traffic(m: int, n: int, k: int, tile_m: int, tile_n: int, dtype_size: int = 4) -> float:
    """DRAM traffic (bytes) of a shared-memory-blocked GEMM ``(m x k)·(k x n)``.

    With ``tile_m x tile_n`` output blocking, the A panel is read
    ``n / tile_n`` times and the B panel ``m / tile_m`` times; the output is
    written once.
    """
    if min(m, n, k, tile_m, tile_n) <= 0:
        raise ValueError("all GEMM dimensions must be positive")
    a_reads = m * k * ceil_div(n, tile_n)
    b_reads = k * n * ceil_div(m, tile_m)
    c_writes = m * n
    return float(a_reads + b_reads + c_writes) * dtype_size


def im2col_profile(
    params: ConvParams,
    tile_m: int = 64,
    tile_n: int = 64,
    dtype_size: int = 4,
    layout: Optional[Layout] = None,
) -> KernelProfile:
    """Profile of the im2col + GEMM implementation (cuDNN's general path).

    Traffic: read the input once, write the column buffer, then run a blocked
    GEMM of ``(Cout x K)·(K x N)`` per image where ``K = Cin·Hker·Wker`` and
    ``N = Hout·Wout`` (the column buffer is re-read by the GEMM).
    """
    layout = layout if layout is not None else params.layout
    p = params
    k_dim = p.in_channels * p.ker_height * p.ker_width
    n_dim = p.out_height * p.out_width
    col_elems = im2col_buffer_elements(p)
    lowering_bytes = (p.input_elements + col_elems) * dtype_size
    gemm_bytes = p.batch * gemm_traffic(
        p.out_channels, n_dim, k_dim, tile_m, tile_n, dtype_size
    )
    blocks = p.batch * ceil_div(p.out_channels, tile_m) * ceil_div(n_dim, tile_n)
    smem_elems = tile_m * 16 + 16 * tile_n  # double-buffered K-slices of A and B panels
    return KernelProfile(
        name="im2col_gemm",
        flops=float(p.flops),
        dram_bytes=lowering_bytes + gemm_bytes,
        smem_per_block=smem_elems * dtype_size * 2,
        threads_per_block=256,
        num_blocks=max(1, blocks),
        coalescing=_LAYOUT_COALESCING[layout],
        compute_efficiency=0.35,  # strided K-dim accesses of the lowered buffer hurt the GEMM inner loop
        layout=layout,
    )
