"""I/O lower bound of the Winograd algorithm (Section 4.3, Theorem 4.20).

The Winograd DAG (Figure 5) has a four-step multi-step partition:

1. input/kernel transforms (linear-combination trees) — Lemma 4.15,
2. element-wise products of transformed tiles — Lemma 4.16,
3. channel-direction summation trees — Lemma 4.17,
4. output transforms (linear-combination trees) — Lemma 4.18.

Lemma 4.14 counts the internal/output vertices, Lemma 4.19 bounds ``T(S)``
and Theorem 4.20 concludes

    ``Q = Ω( Wout·Hout·Cout·Cin·(e + r − 1)·r / (e·√S) )``.

As in the paper, the bound assumes ``r = Wker = Hker``, stride 1 and that the
(small) transform matrices live permanently in fast memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ...conv.tensor import ConvParams
from .composite import CompositeBound
from .generation import StepGeneration

__all__ = [
    "winograd_vertex_count",
    "winograd_generation_steps",
    "winograd_t_upper",
    "winograd_io_lower_bound",
    "winograd_io_lower_bound_asymptotic",
    "WinogradBound",
]


def _check(params: ConvParams, e: int) -> int:
    if not params.winograd_compatible():
        raise ValueError("Winograd bound requires stride 1 and a square kernel")
    if e < 1:
        raise ValueError("e must be >= 1")
    return params.ker_height


def winograd_vertex_count(params: ConvParams, e: int) -> float:
    """Lemma 4.14: ``|V_inter ∪ V_out| = Θ(2·Wout·Hout·Cout·Cin·(e+r−1)⁴ / e²)``
    (per image; multiplied by the batch size)."""
    r = _check(params, e)
    t = e + r - 1
    outputs = params.out_height * params.out_width * params.out_channels
    return params.batch * 2.0 * outputs * params.in_channels * t**4 / (e * e)


def winograd_generation_steps(
    params: ConvParams, e: int, s_partition: float
) -> List[StepGeneration]:
    """The (φ_j, ψ_j) pairs of Lemmas 4.15–4.18 for partition parameter ``S``."""
    r = _check(params, e)
    if s_partition <= 0:
        raise ValueError("s_partition must be positive")
    t = e + r - 1
    s = float(s_partition)
    t2 = float(t * t)
    t4 = t2 * t2

    def phi1(h: float) -> float:
        return 6.0 * h * t4 / (e * r)

    def psi1(h: float) -> float:
        return 3.0 * h * t2 / (e * r)

    def phi2(h: float) -> float:
        return h * math.sqrt(h) + (t2 * s / (e * e)) * math.sqrt(h)

    def phi3(h: float) -> float:
        return max(h - 1.0, 0.0)

    def psi3(h: float) -> float:
        return min(h / 2.0, s * t2 / (e * e))

    def phi4(h: float) -> float:
        return min((2.0 * h - 1.0) * e * e, (2.0 * t2 - 1.0) * s)

    return [
        StepGeneration("transforms", phi1, psi1, "input/kernel transforms (Lemma 4.15)"),
        StepGeneration("elementwise", phi2, phi2, "element-wise products (Lemma 4.16)"),
        StepGeneration("channel_sum", phi3, psi3, "channel summation trees (Lemma 4.17)"),
        StepGeneration("output_transform", phi4, lambda h: 0.0, "output transforms (Lemma 4.18)"),
    ]


def winograd_t_upper(params: ConvParams, e: int, s: float) -> float:
    """Closed-form upper bound of ``T(S)`` following Equation (18).

    ``T(S) ≤ S + φ_1(S) + T_2(S, 0) + (e+r−1)²(1/e² + 2)·S`` with
    ``T_2(S, 0) = h√h + (e+r−1)²·S·√h / e²`` and ``h = 3S(e+r−1)²/(er)``.
    The leading order is ``O( (e+r−1)³/(er) · S^{3/2} )`` as in Lemma 4.19.
    """
    r = _check(params, e)
    if s <= 0:
        raise ValueError("S must be positive")
    t = e + r - 1
    t2 = float(t * t)
    h = 3.0 * s * t2 / (e * r)
    t1 = 6.0 * s * t2 * t2 / (e * r)
    t2_term = h * math.sqrt(h) + (t2 / (e * e)) * s * math.sqrt(h)
    tail = t2 * (1.0 / (e * e) + 2.0) * s
    return s + t1 + t2_term + tail


def winograd_io_lower_bound(params: ConvParams, e: int, s: int) -> float:
    """Precise Theorem 4.6/4.20 bound: ``Q ≥ S·(|V|/T(2S) − 1)`` with the
    closed-form ``T`` of :func:`winograd_t_upper` at ``2S``."""
    if s <= 0:
        raise ValueError("fast memory size S must be positive")
    v = winograd_vertex_count(params, e)
    t = winograd_t_upper(params, e, 2.0 * s)
    return max(0.0, s * (v / t - 1.0))


def winograd_io_lower_bound_asymptotic(params: ConvParams, e: int, s: int) -> float:
    """Leading-order term of Theorem 4.20:

        ``Q = Ω( Wout·Hout·Cout·Cin·(e+r−1)·r / (e·√(8S)) )``

    obtained by dividing Lemma 4.14's vertex count by the leading term of
    ``T(2S)`` and multiplying by ``S``.
    """
    r = _check(params, e)
    if s <= 0:
        raise ValueError("fast memory size S must be positive")
    t = e + r - 1
    outputs = params.out_height * params.out_width * params.out_channels
    return (
        params.batch
        * outputs
        * params.in_channels
        * t
        * r
        / (e * math.sqrt(8.0 * s))
    )


@dataclass(frozen=True)
class WinogradBound:
    """Convenience wrapper bundling all Winograd bound quantities."""

    params: ConvParams
    e: int = 2

    def vertex_count(self) -> float:
        return winograd_vertex_count(self.params, self.e)

    def t_upper(self, s: float) -> float:
        return winograd_t_upper(self.params, self.e, s)

    def io_lower_bound(self, s: int) -> float:
        return winograd_io_lower_bound(self.params, self.e, s)

    def io_lower_bound_asymptotic(self, s: int) -> float:
        return winograd_io_lower_bound_asymptotic(self.params, self.e, s)

    def composite(self, s_partition: float) -> CompositeBound:
        return CompositeBound(
            steps=winograd_generation_steps(self.params, self.e, s_partition),
            num_vertices=self.vertex_count(),
            name=f"winograd[e={self.e},{self.params.describe()}]",
        )
