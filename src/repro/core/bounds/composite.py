"""General I/O lower bounds for composite algorithms (Theorems 4.5 and 4.6).

Given a multi-step partition with per-step maximum vertex generation
functions ``φ_j`` / ``ψ_j`` (see :mod:`repro.core.bounds.generation`) the
paper bounds the size of any block ``V_i`` of any S-partition by

    ``T(S) = S + max_{Σ k_j ≤ S} [ φ_1(k_1) + φ_2(k_2 + ψ_1(k_1)) + … ]``

(Theorem 4.5) and turns it into the I/O lower bound

    ``Q ≥ S · (|V| / T(2S) − 1)``                        (Theorem 4.6)

where ``|V|`` counts the internal-plus-output vertices of the DAG (graph
inputs are free: they start with blue pebbles).

:class:`CompositeBound` evaluates ``T(S)`` numerically by maximising the
nested expression over the budget split.  The maximisation is a small
constrained optimisation: for the monotone φ/ψ of the paper's algorithms the
optimum sits on the simplex boundary ``Σ k_j = S``, and a projected
coordinate-ascent refined from a coarse grid converges quickly and
deterministically.  Because any feasible split yields a *valid* value of the
inner max, returning a near-maximal value keeps the resulting ``Q`` bound
conservative only through the (small) numerical slack of the search — the
closed-form per-algorithm bounds in the sibling modules are used wherever an
exact expression is needed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence, Tuple


from .generation import StepGeneration

__all__ = ["CompositeBound", "nested_generation_value"]


def nested_generation_value(steps: Sequence[StepGeneration], split: Sequence[float]) -> float:
    """Evaluate ``φ_1(k_1) + φ_2(k_2 + ψ_1(k_1)) + …`` for one budget split."""
    if len(split) != len(steps):
        raise ValueError("split length must equal the number of steps")
    total = 0.0
    carried = 0.0
    for step, k in zip(steps, split):
        if k < 0:
            raise ValueError("budgets must be non-negative")
        budget = k + carried
        total += step.phi_at(budget)
        carried = step.psi_at(budget)
    return total


@dataclass
class CompositeBound:
    """I/O lower bound of a composite algorithm.

    Parameters
    ----------
    steps:
        The ordered (φ_j, ψ_j) descriptions of the multi-step partition.
    num_vertices:
        ``|V|`` — the number of internal and output vertices of the DAG
        (Lemma 4.8 / 4.14 style counts).
    name:
        Human-readable label used in reports.
    """

    steps: Sequence[StepGeneration]
    num_vertices: float
    name: str = "composite"

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("at least one step is required")
        if self.num_vertices <= 0:
            raise ValueError("num_vertices must be positive")

    # ------------------------------------------------------------------ #
    # T(S)
    # ------------------------------------------------------------------ #
    def t_of_s(self, s: float, grid: int = 24, refine_iters: int = 60) -> float:
        """Numerically evaluate ``T(S)`` (Theorem 4.5).

        ``grid`` controls the resolution of the initial simplex sweep and
        ``refine_iters`` the number of coordinate-ascent refinement passes.
        """
        if s <= 0:
            raise ValueError("S must be positive")
        n = len(self.steps)
        if n == 1:
            return s + self.steps[0].phi_at(s)

        best_split, best_val = self._grid_search(s, grid)
        best_split, best_val = self._coordinate_ascent(s, best_split, best_val, refine_iters)
        return s + best_val

    def _grid_search(self, s: float, grid: int) -> Tuple[List[float], float]:
        n = len(self.steps)
        best_val = -1.0
        best_split = [s] + [0.0] * (n - 1)
        # Enumerate coarse integer compositions of `grid` units among n steps.
        for combo in itertools.combinations_with_replacement(range(n), grid):
            counts = [0] * n
            for c in combo:
                counts[c] += 1
            split = [s * c / grid for c in counts]
            val = nested_generation_value(self.steps, split)
            if val > best_val:
                best_val = val
                best_split = split
        return best_split, best_val

    def _coordinate_ascent(
        self, s: float, split: List[float], value: float, iters: int
    ) -> Tuple[List[float], float]:
        n = len(self.steps)
        step_size = s / 8.0
        split = list(split)
        for _ in range(iters):
            improved = False
            for i in range(n):
                for j in range(n):
                    if i == j:
                        continue
                    delta = min(step_size, split[j])
                    if delta <= 0:
                        continue
                    trial = list(split)
                    trial[i] += delta
                    trial[j] -= delta
                    val = nested_generation_value(self.steps, trial)
                    if val > value:
                        split, value = trial, val
                        improved = True
            if not improved:
                step_size /= 2.0
                if step_size < s * 1e-4:
                    break
        return split, value

    # ------------------------------------------------------------------ #
    # Q lower bound
    # ------------------------------------------------------------------ #
    def io_lower_bound(self, s: int) -> float:
        """``Q ≥ S · (|V| / T(2S) − 1)`` — Theorem 4.6."""
        if s <= 0:
            raise ValueError("fast memory size S must be positive")
        t = self.t_of_s(2 * s)
        return max(0.0, s * (self.num_vertices / t - 1.0))

    def describe(self, s: int) -> str:
        t = self.t_of_s(2 * s)
        q = self.io_lower_bound(s)
        return (
            f"{self.name}: |V|={self.num_vertices:.3g}, T(2S)={t:.4g}, "
            f"Q_lower(S={s})={q:.4g}"
        )
