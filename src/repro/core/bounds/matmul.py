"""Hong–Kung style matrix-multiplication bound via the composite theory.

Matrix multiplication ``C = A·B`` with ``A (n x k)`` and ``B (k x m)`` has the
same two-step DAG structure as the direct convolution (products, then
per-output summation trees) with *no* sliding-window reuse, i.e. ``R = 1``:
every element of ``A`` is consumed by ``m`` outputs and every element of ``B``
by ``n`` outputs, but distinct windows never overlap.  Feeding ``R = 1`` into
the direct-convolution lemmas reproduces the classical

    ``Q = Ω( n·m·k / √S )``

bound, which is the standard sanity check for any red–blue-pebble analysis
(Hong & Kung 1981; Kwasniewski et al. 2019 tighten the constant).

The module exists for validation: the tests compare this bound against
pebble-game measurements of the matmul DAG and against the direct-convolution
bound with an equivalent problem, demonstrating that the composite machinery
specialises correctly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from .composite import CompositeBound
from .generation import StepGeneration

__all__ = [
    "matmul_vertex_count",
    "matmul_generation_steps",
    "matmul_t_upper",
    "matmul_io_lower_bound",
    "matmul_io_lower_bound_asymptotic",
    "MatmulBound",
]


def matmul_vertex_count(n: int, m: int, k: int) -> int:
    """Internal + output vertices: ``n·m`` products per output times ``k``,
    plus ``k − 1`` summation vertices per output → ``(2k − 1)·n·m``."""
    if min(n, m, k) <= 0:
        raise ValueError("matrix dimensions must be positive")
    return (2 * k - 1) * n * m


def matmul_generation_steps(s_partition: float) -> List[StepGeneration]:
    """Two-step generation functions with ``R = 1`` (Lemmas 4.9/4.10)."""
    if s_partition <= 0:
        raise ValueError("s_partition must be positive")

    def phi1(h: float) -> float:
        return 2.0 * s_partition * math.sqrt(h)

    def phi2(h: float) -> float:
        return max(h - 1.0, 0.0)

    return [
        StepGeneration("products", phi1, phi1, "scalar products"),
        StepGeneration("summation", phi2, lambda h: 0.0, "per-output summation trees"),
    ]


def matmul_t_upper(s: float) -> float:
    """``T(S) ≤ 4S√S + S − 1`` (Lemma 4.11 with R = 1)."""
    if s <= 0:
        raise ValueError("S must be positive")
    return 4.0 * s * math.sqrt(s) + s - 1.0


def matmul_io_lower_bound(n: int, m: int, k: int, s: int) -> float:
    """Precise bound ``S·(|V|/T(2S) − 1)``."""
    if s <= 0:
        raise ValueError("fast memory size S must be positive")
    v = matmul_vertex_count(n, m, k)
    return max(0.0, s * (v / matmul_t_upper(2.0 * s) - 1.0))


def matmul_io_lower_bound_asymptotic(n: int, m: int, k: int, s: int) -> float:
    """Leading term ``n·m·k / (4√(2S))``."""
    if s <= 0:
        raise ValueError("fast memory size S must be positive")
    return n * m * k / (4.0 * math.sqrt(2.0 * s))


@dataclass(frozen=True)
class MatmulBound:
    n: int
    m: int
    k: int

    def vertex_count(self) -> int:
        return matmul_vertex_count(self.n, self.m, self.k)

    def io_lower_bound(self, s: int) -> float:
        return matmul_io_lower_bound(self.n, self.m, self.k, s)

    def io_lower_bound_asymptotic(self, s: int) -> float:
        return matmul_io_lower_bound_asymptotic(self.n, self.m, self.k, s)

    def composite(self, s_partition: float) -> CompositeBound:
        return CompositeBound(
            steps=matmul_generation_steps(s_partition),
            num_vertices=self.vertex_count(),
            name=f"matmul[{self.n}x{self.k}]x[{self.k}x{self.m}]",
        )
