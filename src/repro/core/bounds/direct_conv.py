"""I/O lower bound of the direct convolution (Section 4.2, Theorem 4.12).

The direct convolution's DAG (Figure 4) has a two-step multi-step partition:

* **Step 1** — product vertices ``I_i ⊙ K_j`` (no internal structure);
  Lemma 4.9 bounds its generation functions by ``φ_1(h) = ψ_1(h) = 2S√(Rh)``
  where ``R = Wker·Hker/μ²`` is the maximum reuse of an input element.
* **Step 2** — per-output summation trees; Lemma 4.10 gives
  ``φ_2(h) ≤ h − 1``.

Combining them, Lemma 4.11 bounds any S-partition block by
``T(S) ≤ 4S√(RS) + S − 1`` and Theorem 4.12 yields

    ``Q ≥ Ω( Wker·Hker·Cin·Wout·Hout·Cout / √(RS) )``.

This module provides the vertex count (Lemma 4.8), the generation-function
step descriptions, the closed-form ``T(S)``, the precise lower bound
``S·(|V|/T(2S) − 1)`` and the leading-order asymptotic expression used in the
benchmark reports.  All quantities scale linearly with the batch size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ...conv.tensor import ConvParams
from .composite import CompositeBound
from .generation import StepGeneration

__all__ = [
    "direct_conv_vertex_count",
    "direct_conv_generation_steps",
    "direct_conv_t_upper",
    "direct_conv_io_lower_bound",
    "direct_conv_io_lower_bound_asymptotic",
    "DirectConvBound",
]


def direct_conv_vertex_count(params: ConvParams) -> int:
    """Lemma 4.8: ``|V_inter ∪ V_out| = (2·Wker·Hker·Cin − 1)·Wout·Hout·Cout``
    (per image; multiplied by the batch size)."""
    k = params.ker_height * params.ker_width * params.in_channels
    outputs = params.out_height * params.out_width * params.out_channels
    return params.batch * (2 * k - 1) * outputs


def direct_conv_generation_steps(params: ConvParams, s_partition: float) -> List[StepGeneration]:
    """The (φ, ψ) pairs of Lemmas 4.9 and 4.10 for partition parameter ``S``.

    ``s_partition`` is the S of the S-partition under analysis; Theorem 4.6
    evaluates ``T`` at ``2S`` so callers pass ``2*S`` when assembling the I/O
    bound for a fast memory of size ``S``.
    """
    if s_partition <= 0:
        raise ValueError("s_partition must be positive")
    r = params.reuse_factor

    def phi1(h: float) -> float:
        return 2.0 * s_partition * math.sqrt(r * h)

    def phi2(h: float) -> float:
        return max(h - 1.0, 0.0)

    return [
        StepGeneration(
            name="products",
            phi=phi1,
            psi=phi1,
            description="element products of sliding windows with kernels (Lemma 4.9)",
        ),
        StepGeneration(
            name="summation",
            phi=phi2,
            psi=lambda h: 0.0,
            description="per-output summation trees (Lemma 4.10)",
        ),
    ]


def direct_conv_t_upper(params: ConvParams, s: float) -> float:
    """Lemma 4.11: ``T(S) ≤ 4S√(RS) + S − 1``."""
    if s <= 0:
        raise ValueError("S must be positive")
    r = params.reuse_factor
    return 4.0 * s * math.sqrt(r * s) + s - 1.0


def direct_conv_io_lower_bound(params: ConvParams, s: int) -> float:
    """Precise Theorem 4.6/4.12 bound: ``Q ≥ S·(|V|/T(2S) − 1)``.

    Uses the closed-form ``T`` of Lemma 4.11 evaluated at ``2S``; the result
    counts *elements* moved between slow and fast memory.
    """
    if s <= 0:
        raise ValueError("fast memory size S must be positive")
    v = direct_conv_vertex_count(params)
    t = direct_conv_t_upper(params, 2.0 * s)
    return max(0.0, s * (v / t - 1.0))


def direct_conv_io_lower_bound_asymptotic(params: ConvParams, s: int) -> float:
    """Leading-order term of Theorem 4.12:

        ``Q = Ω( Wker·Hker·Cin · Wout·Hout·Cout / (4·√(2RS)) )``

    (per image, scaled by the batch size).
    """
    if s <= 0:
        raise ValueError("fast memory size S must be positive")
    r = params.reuse_factor
    k = params.ker_height * params.ker_width * params.in_channels
    outputs = params.out_height * params.out_width * params.out_channels
    return params.batch * k * outputs / (4.0 * math.sqrt(2.0 * r * s))


@dataclass(frozen=True)
class DirectConvBound:
    """Convenience wrapper bundling all direct-convolution bound quantities."""

    params: ConvParams

    def vertex_count(self) -> int:
        return direct_conv_vertex_count(self.params)

    def t_upper(self, s: float) -> float:
        return direct_conv_t_upper(self.params, s)

    def io_lower_bound(self, s: int) -> float:
        return direct_conv_io_lower_bound(self.params, s)

    def io_lower_bound_asymptotic(self, s: int) -> float:
        return direct_conv_io_lower_bound_asymptotic(self.params, s)

    def composite(self, s_partition: float) -> CompositeBound:
        """Assemble the generic :class:`CompositeBound` for cross-validation of
        the closed form against the numeric Theorem 4.5 optimiser."""
        return CompositeBound(
            steps=direct_conv_generation_steps(self.params, s_partition),
            num_vertices=self.vertex_count(),
            name=f"direct_conv[{self.params.describe()}]",
        )
