"""I/O lower-bound theory (Section 4 of the paper).

Composite-algorithm machinery (Theorems 4.5/4.6) plus the concrete bounds for
the direct convolution (Theorem 4.12), the Winograd algorithm (Theorem 4.20)
and — for validation — classical matrix multiplication.
"""

from .generation import StepGeneration, empirical_generation
from .composite import CompositeBound, nested_generation_value
from .direct_conv import (
    DirectConvBound,
    direct_conv_generation_steps,
    direct_conv_io_lower_bound,
    direct_conv_io_lower_bound_asymptotic,
    direct_conv_t_upper,
    direct_conv_vertex_count,
)
from .winograd import (
    WinogradBound,
    winograd_generation_steps,
    winograd_io_lower_bound,
    winograd_io_lower_bound_asymptotic,
    winograd_t_upper,
    winograd_vertex_count,
)
from .matmul import (
    MatmulBound,
    matmul_generation_steps,
    matmul_io_lower_bound,
    matmul_io_lower_bound_asymptotic,
    matmul_t_upper,
    matmul_vertex_count,
)

__all__ = [
    "StepGeneration",
    "empirical_generation",
    "CompositeBound",
    "nested_generation_value",
    "DirectConvBound",
    "direct_conv_generation_steps",
    "direct_conv_io_lower_bound",
    "direct_conv_io_lower_bound_asymptotic",
    "direct_conv_t_upper",
    "direct_conv_vertex_count",
    "WinogradBound",
    "winograd_generation_steps",
    "winograd_io_lower_bound",
    "winograd_io_lower_bound_asymptotic",
    "winograd_t_upper",
    "winograd_vertex_count",
    "MatmulBound",
    "matmul_generation_steps",
    "matmul_io_lower_bound",
    "matmul_io_lower_bound_asymptotic",
    "matmul_t_upper",
    "matmul_vertex_count",
]
