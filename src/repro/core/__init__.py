"""The paper's primary contribution.

* :mod:`repro.core.bounds`   — general composite I/O lower-bound theory and
  the direct-convolution / Winograd bounds (Section 4).
* :mod:`repro.core.dataflow` — near I/O-optimal dataflow strategies and the
  optimality condition (Section 5).
* :mod:`repro.core.autotune` — the I/O-lower-bound-guided auto-tuning engine
  and the TVM-style / heuristic baselines (Section 6).

``autotune`` is imported lazily because it depends on :mod:`repro.gpusim`,
which in turn uses the dataflow formulas from this package; eager imports in
both directions would create a cycle.
"""

from importlib import import_module

from . import bounds, dataflow  # noqa: F401

__all__ = ["autotune", "bounds", "dataflow"]


def __getattr__(name: str):
    if name == "autotune":
        module = import_module(".autotune", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
