"""Shared value objects for the dataflow strategies of Section 5.

A *dataflow* in the paper is a coarse-grained schedule: an output sub-block of
size ``x × y × z`` (width × height × output channels) is kept resident in
on-chip memory while the required inputs and weights stream through it in
channel-sliced stages.  The objects here describe such a schedule and the I/O
volume it incurs; the algorithm-specific formulas live in
:mod:`repro.core.dataflow.direct` and :mod:`repro.core.dataflow.winograd`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ...conv.tensor import ConvParams

__all__ = ["OutputTile", "IOVolume", "ceil_div"]


def ceil_div(a: int, b: int) -> int:
    if b <= 0:
        raise ValueError("divisor must be positive")
    return -(-a // b)


@dataclasses.dataclass(frozen=True)
class OutputTile:
    """An output sub-block ``x × y × z`` assigned to one processor.

    ``x`` is the width extent (along ``Wout``), ``y`` the height extent
    (along ``Hout``) and ``z`` the number of output channels updated together.
    """

    x: int
    y: int
    z: int

    def __post_init__(self) -> None:
        for name in ("x", "y", "z"):
            v = getattr(self, name)
            if not isinstance(v, int) or v <= 0:
                raise ValueError(f"tile dimension {name} must be a positive integer")

    @property
    def outputs(self) -> int:
        """Output elements held on chip: ``x·y·z``."""
        return self.x * self.y * self.z

    def clip_to(self, params: ConvParams) -> "OutputTile":
        """Clamp the tile to the output extents of a problem."""
        return OutputTile(
            x=min(self.x, params.out_width),
            y=min(self.y, params.out_height),
            z=min(self.z, params.out_channels),
        )

    def input_footprint(self, params: ConvParams) -> int:
        """Input elements of one channel slice needed to update this tile:
        the ``x' × y'`` halo region with ``x' = (x−1)·μ + Wker``."""
        xp = (self.x - 1) * params.stride + params.ker_width
        yp = (self.y - 1) * params.stride + params.ker_height
        return xp * yp

    def describe(self) -> str:
        return f"tile(x={self.x}, y={self.y}, z={self.z})"


@dataclasses.dataclass(frozen=True)
class IOVolume:
    """Off-chip traffic of one complete convolution under a dataflow.

    All quantities count *elements* (multiply by the dtype size for bytes).
    ``input_reads`` and ``weight_reads`` include re-reads caused by tiling;
    ``output_writes`` counts final stores (the dataflows of Section 5 write
    each output exactly once); ``extra`` covers any algorithm-specific
    intermediate traffic (e.g. the im2col buffer of the cuDNN baseline).
    """

    input_reads: float
    weight_reads: float
    output_writes: float
    extra: float = 0.0

    @property
    def reads(self) -> float:
        return self.input_reads + self.weight_reads + self.extra / 2.0

    @property
    def writes(self) -> float:
        return self.output_writes + self.extra / 2.0

    @property
    def total(self) -> float:
        return self.input_reads + self.weight_reads + self.output_writes + self.extra

    def bytes(self, dtype_size: int = 4) -> float:
        return self.total * dtype_size

    def scaled(self, factor: float) -> "IOVolume":
        return IOVolume(
            input_reads=self.input_reads * factor,
            weight_reads=self.weight_reads * factor,
            output_writes=self.output_writes * factor,
            extra=self.extra * factor,
        )

    def breakdown(self) -> Dict[str, float]:
        return {
            "input_reads": self.input_reads,
            "weight_reads": self.weight_reads,
            "output_writes": self.output_writes,
            "extra": self.extra,
            "total": self.total,
        }

    def __add__(self, other: "IOVolume") -> "IOVolume":
        return IOVolume(
            input_reads=self.input_reads + other.input_reads,
            weight_reads=self.weight_reads + other.weight_reads,
            output_writes=self.output_writes + other.output_writes,
            extra=self.extra + other.extra,
        )
