"""Near I/O-optimal dataflow strategies (Section 5 of the paper)."""

from .common import IOVolume, OutputTile, ceil_div
from .optimality import (
    candidate_tiles,
    optimal_tile_direct,
    optimal_tile_winograd,
    optimality_condition_residual,
    satisfies_optimality,
)
from .direct import (
    DirectDataflow,
    direct_dataflow_io,
    direct_dataflow_io_optimal,
    simulate_direct_dataflow,
)
from .winograd import (
    WinogradDataflow,
    simulate_winograd_dataflow,
    winograd_dataflow_io,
    winograd_dataflow_io_optimal,
)

__all__ = [
    "IOVolume",
    "OutputTile",
    "ceil_div",
    "candidate_tiles",
    "optimal_tile_direct",
    "optimal_tile_winograd",
    "optimality_condition_residual",
    "satisfies_optimality",
    "DirectDataflow",
    "direct_dataflow_io",
    "direct_dataflow_io_optimal",
    "simulate_direct_dataflow",
    "WinogradDataflow",
    "simulate_winograd_dataflow",
    "winograd_dataflow_io",
    "winograd_dataflow_io_optimal",
]
