"""Optimality condition and tile selection (Section 5).

The lower-bound analysis tells us *which* reuse to maximise; comparing the
dataflow's closed-form I/O volume with the lower bound yields the
*optimality condition*

    ``x·y = R·z``            (direct convolution, Eq. 20)
    ``x·y = r²·z``           (Winograd; identical because ``R = r²`` at μ=1)

together with the capacity constraint (``x·y·z ≈ S/N_p`` for the direct
convolution, ``2(e+r−1)²/e² · x·y·z ≈ S/N_p`` for Winograd).  This module
computes near-optimal integer tiles under those two conditions and provides
the *optimality ratio* — dataflow I/O divided by the I/O lower bound — used
throughout the tests and the theory benchmark.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from ...conv.tensor import ConvParams, divisors
from .common import OutputTile

__all__ = [
    "optimality_condition_residual",
    "satisfies_optimality",
    "optimal_tile_direct",
    "optimal_tile_winograd",
    "candidate_tiles",
]


def optimality_condition_residual(tile: OutputTile, params: ConvParams) -> float:
    """Relative deviation ``|x·y − R·z| / (R·z)`` from the optimality condition."""
    r = params.reuse_factor
    target = r * tile.z
    if target <= 0:
        raise ValueError("R·z must be positive")
    return abs(tile.x * tile.y - target) / target


def satisfies_optimality(
    tile: OutputTile, params: ConvParams, tolerance: float = 0.5
) -> bool:
    """Whether the tile satisfies ``x·y ≈ R·z`` within a relative tolerance.

    Integer tiles rarely satisfy the condition exactly; the default tolerance
    of 50% matches the granularity of the divisor-constrained search domain.
    """
    return optimality_condition_residual(tile, params) <= tolerance


def _balanced_xy(xy_target: float, params: ConvParams) -> Tuple[int, int]:
    """Split an ``x·y`` product into a near-square (x, y) clipped to the output."""
    side = max(1.0, math.sqrt(max(xy_target, 1.0)))
    x = max(1, min(params.out_width, int(round(side))))
    y = max(1, min(params.out_height, int(round(xy_target / x)) if x else 1))
    y = max(1, min(params.out_height, y))
    return x, y


def _solve_direct_tile(params: ConvParams, budget: float) -> OutputTile:
    r = params.reuse_factor
    z = max(1.0, math.sqrt(budget / r))
    xy = r * z
    if xy > params.out_width * params.out_height:
        xy = params.out_width * params.out_height
        z = max(1.0, budget / xy)
    z_int = max(1, min(params.out_channels, int(round(z))))
    x, y = _balanced_xy(min(xy, budget / z_int), params)
    return OutputTile(x=x, y=y, z=z_int).clip_to(params)


def _direct_footprint(tile: OutputTile, params: ConvParams) -> int:
    """On-chip elements of the direct dataflow: resident outputs + one channel
    slice of the input halo + the matching weight slice."""
    return (
        tile.outputs
        + tile.input_footprint(params)
        + params.ker_height * params.ker_width * tile.z
    )


def optimal_tile_direct(
    params: ConvParams, fast_memory: int, processors: int = 1
) -> OutputTile:
    """Near-optimal output tile for the direct-convolution dataflow.

    Solves ``x·y·z ≈ S/N_p`` and ``x·y = R·z`` continuously, rounds to a
    feasible integer tile clipped to the problem extents, and shrinks the
    solve budget until the whole working set (outputs + channel-sliced input
    halo + weights) fits the per-processor fast memory.
    """
    if fast_memory <= 0 or processors <= 0:
        raise ValueError("fast_memory and processors must be positive")
    per_proc = max(1.0, fast_memory / processors)
    budget = per_proc
    tile = _solve_direct_tile(params, budget)
    for _ in range(40):
        if _direct_footprint(tile, params) <= per_proc or tile.outputs <= 1:
            break
        budget *= 0.85
        tile = _solve_direct_tile(params, budget)
    return tile


def optimal_tile_winograd(
    params: ConvParams, fast_memory: int, e: int, processors: int = 1
) -> OutputTile:
    """Near-optimal output tile for the Winograd dataflow.

    The on-chip budget is dominated by the ``2(e+r−1)²/e²`` temporary arrays
    per output element: ``2(e+r−1)²/e² · x·y·z ≈ S/N_p`` with ``x·y = r²·z``.
    """
    if not params.winograd_compatible():
        raise ValueError("Winograd tiles require stride 1 and a square kernel")
    if fast_memory <= 0 or processors <= 0:
        raise ValueError("fast_memory and processors must be positive")
    if e < 1:
        raise ValueError("e must be >= 1")
    r = params.ker_height
    t = e + r - 1
    overhead = 2.0 * t * t / (e * e)
    per_proc = max(1.0, fast_memory / processors)

    def solve(budget: float) -> OutputTile:
        z = max(1.0, math.sqrt(budget / (r * r)))
        xy = r * r * z
        if xy > params.out_width * params.out_height:
            xy = params.out_width * params.out_height
            z = max(1.0, budget / xy)
        z_int = max(1, min(params.out_channels, int(round(z))))
        x, y = _balanced_xy(min(xy, budget / z_int), params)
        # Round x and y to multiples of e where possible so tiles align with
        # the e×e Winograd output tiles.
        x = max(e, (x // e) * e) if params.out_width >= e else x
        y = max(e, (y // e) * e) if params.out_height >= e else y
        return OutputTile(x=x, y=y, z=z_int).clip_to(params)

    def footprint(tile: OutputTile) -> float:
        halo = (tile.x + r - 1) * (tile.y + r - 1)
        return overhead * tile.outputs + halo + tile.z * r * r

    budget = per_proc / overhead
    tile = solve(budget)
    for _ in range(40):
        if footprint(tile) <= per_proc or tile.outputs <= 1:
            break
        budget *= 0.85
        tile = solve(budget)
    return tile


def candidate_tiles(
    params: ConvParams,
    fast_memory: int,
    require_optimality: bool = False,
    tolerance: float = 0.5,
    max_candidates: Optional[int] = None,
) -> Tuple[OutputTile, ...]:
    """Enumerate feasible output tiles from the Table-1 search domain.

    Tiles must have ``x | Wout``, ``y | Hout``, ``z | Cout`` and fit in the
    fast memory (``x·y·z ≤ S``); optionally they must also satisfy the
    optimality condition within ``tolerance``.
    """
    if fast_memory <= 0:
        raise ValueError("fast_memory must be positive")
    tiles = []
    for x in divisors(params.out_width):
        for y in divisors(params.out_height):
            if x * y > fast_memory:
                continue
            for z in divisors(params.out_channels):
                if x * y * z > fast_memory:
                    continue
                tile = OutputTile(x=x, y=y, z=z)
                if require_optimality and not satisfies_optimality(tile, params, tolerance):
                    continue
                tiles.append(tile)
                if max_candidates is not None and len(tiles) >= max_candidates:
                    return tuple(tiles)
    return tuple(tiles)
