"""Near I/O-optimal dataflow for the Winograd algorithm (Section 5.3).

The highest-order term of the Winograd lower bound comes from φ₃ (the channel
summation step), so the dataflow keeps the two ``(e+r−1) × (e+r−1)`` temporary
arrays per in-flight output tile resident on chip and streams inputs/weights
channel by channel:

* the output image is partitioned into ``x × y × z`` sub-blocks, each further
  split into ``e × e`` Winograd tiles;
* for each sub-block and input channel, the ``(e+r−1)²`` input tile and the
  ``r²`` weights of that channel are loaded, transformed, multiplied and
  accumulated into the resident Π arrays;
* when all channels are consumed the Π arrays are transformed to ``e × e``
  outputs and written back once.

The reading volume for a tile is Eq. (22),

    ``Q_read ≈ (Hout·Wout·Cout / xyz) · (x·y·Cin + z·r²·Cin)``,

minimised when ``x·y = r²·z``; with the capacity choice
``2(e+r−1)²/e² · xyz ≈ S/N_p`` the total becomes the closed form below.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ...conv.tensor import ConvParams
from .common import IOVolume, OutputTile, ceil_div
from .optimality import optimal_tile_winograd

__all__ = [
    "winograd_dataflow_io",
    "winograd_dataflow_io_optimal",
    "simulate_winograd_dataflow",
    "WinogradDataflow",
]


def _check(params: ConvParams, e: int) -> int:
    if not params.winograd_compatible():
        raise ValueError("Winograd dataflow requires stride 1 and a square kernel")
    if e < 1:
        raise ValueError("e must be >= 1")
    return params.ker_height


def winograd_dataflow_io(params: ConvParams, tile: OutputTile, e: int) -> IOVolume:
    """Closed-form I/O volume (elements) of the Winograd dataflow for a tile.

    Reads follow Eq. (22) with the tile grid rounded up to whole tiles;
    outputs are written exactly once.  Input halos are charged as
    ``(x + r − 1)(y + r − 1)`` per channel (μ = 1).
    """
    r = _check(params, e)
    tile = tile.clip_to(params)
    p = params
    blocks_x = ceil_div(p.out_width, tile.x)
    blocks_y = ceil_div(p.out_height, tile.y)
    blocks_z = ceil_div(p.out_channels, tile.z)
    blocks = blocks_x * blocks_y * blocks_z * p.batch

    halo = (tile.x + r - 1) * (tile.y + r - 1)
    input_reads = blocks * halo * p.in_channels
    weight_reads = blocks * tile.z * r * r * p.in_channels
    return IOVolume(
        input_reads=float(input_reads),
        weight_reads=float(weight_reads),
        output_writes=float(p.output_elements),
    )


def winograd_dataflow_io_optimal(
    params: ConvParams, fast_memory: int, e: int, processors: int = 1
) -> IOVolume:
    """Closed-form optimum (Section 5.3):

        ``Q ≈ 2·Hout·Wout·Cout·Cin·r·(e+r−1) / (e·√(S/N_p)) + Hout·Wout·Cout``.
    """
    r = _check(params, e)
    if fast_memory <= 0 or processors <= 0:
        raise ValueError("fast_memory and processors must be positive")
    p = params
    outputs = p.out_height * p.out_width * p.out_channels * p.batch
    t = e + r - 1
    reads = (
        2.0
        * outputs
        * p.in_channels
        * r
        * t
        / (e * math.sqrt(fast_memory / processors))
    )
    return IOVolume(
        input_reads=reads / 2.0,
        weight_reads=reads / 2.0,
        output_writes=float(outputs),
    )


def simulate_winograd_dataflow(
    params: ConvParams, tile: OutputTile, e: int
) -> IOVolume:
    """Replay the Winograd dataflow tile loops and count element transfers.

    Mirrors :func:`repro.core.dataflow.direct.simulate_direct_dataflow`:
    per output sub-block and channel, the input halo and the channel's weights
    are loaded once; outputs are stored once.  Border tiles are clipped.
    """
    r = _check(params, e)
    tile = tile.clip_to(params)
    p = params
    input_reads = 0
    weight_reads = 0
    padded_h = p.in_height + 2 * p.padding
    padded_w = p.in_width + 2 * p.padding

    for _ in range(p.batch):
        for z0 in range(0, p.out_channels, tile.z):
            z_extent = min(tile.z, p.out_channels - z0)
            for y0 in range(0, p.out_height, tile.y):
                y_extent = min(tile.y, p.out_height - y0)
                for x0 in range(0, p.out_width, tile.x):
                    x_extent = min(tile.x, p.out_width - x0)
                    ih1 = min(y0 + y_extent - 1 + r, padded_h)
                    iw1 = min(x0 + x_extent - 1 + r, padded_w)
                    halo = (ih1 - y0) * (iw1 - x0)
                    input_reads += halo * p.in_channels
                    weight_reads += z_extent * r * r * p.in_channels
    return IOVolume(
        input_reads=float(input_reads),
        weight_reads=float(weight_reads),
        output_writes=float(p.output_elements),
    )


@dataclass(frozen=True)
class WinogradDataflow:
    """The Winograd dataflow bound to a problem and machine size."""

    params: ConvParams
    fast_memory: int
    e: int = 2
    processors: int = 1
    tile: Optional[OutputTile] = None

    def __post_init__(self) -> None:
        _check(self.params, self.e)
        if self.fast_memory <= 0 or self.processors <= 0:
            raise ValueError("fast_memory and processors must be positive")
        if self.tile is None:
            object.__setattr__(
                self,
                "tile",
                optimal_tile_winograd(
                    self.params, self.fast_memory, self.e, self.processors
                ),
            )

    @property
    def r(self) -> int:
        return self.params.ker_height

    @property
    def tile_in(self) -> int:
        return self.e + self.r - 1

    def io_volume(self) -> IOVolume:
        return winograd_dataflow_io(self.params, self.tile, self.e)

    def io_volume_simulated(self) -> IOVolume:
        return simulate_winograd_dataflow(self.params, self.tile, self.e)

    def on_chip_elements(self) -> int:
        """Per-processor residency: the 2·(e+r−1)²/e² temporary arrays per
        in-flight output element plus one channel slice of inputs/weights."""
        t = self.tile.clip_to(self.params)
        temp = int(math.ceil(2.0 * self.tile_in**2 / (self.e**2) * t.outputs))
        halo = (t.x + self.r - 1) * (t.y + self.r - 1)
        weights = t.z * self.r * self.r
        return temp + halo + weights

    def fits(self) -> bool:
        return self.on_chip_elements() <= max(1, self.fast_memory // self.processors)
