"""Near I/O-optimal dataflow for the direct convolution (Section 5.2).

The schedule keeps an ``x × y × z`` output sub-block resident on chip and
streams channel slices of the inputs and weights through it:

* for each output sub-block, for each input channel ``c``:
  load the ``x' × y'`` input tile of channel ``c`` (``x' = (x−1)μ + Wker``)
  and the ``Wker × Hker`` weights of channel ``c`` for the ``z`` kernels,
  accumulate partial sums into the resident outputs;
* after all channels, write the ``x·y·z`` outputs back exactly once.

The closed-form reading volume is Eq. (20),

    ``Q_read ≈ (Hout·Wout·Cout / xyz) · Hker·Wker·Cin · (z + xy/R)``,

minimised when ``x·y = R·z``; with the capacity choice ``xyz ≈ S/N_p`` the
total volume becomes Eq. (21).  :func:`simulate_direct_dataflow` replays the
tile loops and counts element transfers exactly so the tests can tie the
closed forms to an executable schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ...conv.tensor import ConvParams
from .common import IOVolume, OutputTile, ceil_div
from .optimality import optimal_tile_direct

__all__ = [
    "direct_dataflow_io",
    "direct_dataflow_io_optimal",
    "simulate_direct_dataflow",
    "DirectDataflow",
]


def direct_dataflow_io(params: ConvParams, tile: OutputTile) -> IOVolume:
    """Closed-form I/O volume (elements) of the dataflow for a given tile.

    Follows Eq. (20) for reads plus one store per output (Section 5.2), with
    the tile grid rounded up to whole tiles so the formula stays valid for
    tiles that do not divide the output extents exactly.
    """
    tile = tile.clip_to(params)
    p = params
    blocks_x = ceil_div(p.out_width, tile.x)
    blocks_y = ceil_div(p.out_height, tile.y)
    blocks_z = ceil_div(p.out_channels, tile.z)
    blocks = blocks_x * blocks_y * blocks_z * p.batch

    input_tile_elems = tile.input_footprint(p) * p.in_channels
    weight_elems = p.ker_height * p.ker_width * p.in_channels * tile.z

    input_reads = blocks * input_tile_elems
    weight_reads = blocks * weight_elems
    output_writes = float(p.output_elements)
    return IOVolume(
        input_reads=float(input_reads),
        weight_reads=float(weight_reads),
        output_writes=output_writes,
    )


def direct_dataflow_io_optimal(
    params: ConvParams, fast_memory: int, processors: int = 1
) -> IOVolume:
    """Eq. (21): total I/O volume with the optimal tile choice
    ``xyz ≈ S/N_p`` and ``xy = R·z``.

    Returned as an :class:`IOVolume` whose read components follow the
    closed-form expression (input and weight reads are equal at the optimum).
    """
    if fast_memory <= 0 or processors <= 0:
        raise ValueError("fast_memory and processors must be positive")
    p = params
    outputs = p.out_height * p.out_width * p.out_channels * p.batch
    k = p.ker_height * p.ker_width * p.in_channels
    r = p.reuse_factor
    reads = 2.0 * outputs * k / math.sqrt(r * fast_memory / processors)
    return IOVolume(
        input_reads=reads / 2.0,
        weight_reads=reads / 2.0,
        output_writes=float(outputs),
    )


def simulate_direct_dataflow(
    params: ConvParams, tile: OutputTile, count_halo_exactly: bool = True
) -> IOVolume:
    """Replay the tile loops of the dataflow and count element transfers.

    The simulation iterates over output sub-blocks and channel slices exactly
    as the schedule executes them, counting

    * the input halo elements loaded per (sub-block, channel) pair — clipped
      at the image borders when ``count_halo_exactly`` is true,
    * the weight elements loaded per (sub-block, channel) pair, and
    * one store per output element.

    No numerical work is performed; the function is a traffic counter whose
    totals the tests compare against :func:`direct_dataflow_io`.
    """
    tile = tile.clip_to(params)
    p = params
    input_reads = 0
    weight_reads = 0
    padded_h = p.in_height + 2 * p.padding
    padded_w = p.in_width + 2 * p.padding

    for _ in range(p.batch):
        for z0 in range(0, p.out_channels, tile.z):
            z_extent = min(tile.z, p.out_channels - z0)
            for y0 in range(0, p.out_height, tile.y):
                y_extent = min(tile.y, p.out_height - y0)
                for x0 in range(0, p.out_width, tile.x):
                    x_extent = min(tile.x, p.out_width - x0)
                    if count_halo_exactly:
                        ih0 = y0 * p.stride
                        ih1 = (y0 + y_extent - 1) * p.stride + p.ker_height
                        iw0 = x0 * p.stride
                        iw1 = (x0 + x_extent - 1) * p.stride + p.ker_width
                        halo = (min(ih1, padded_h) - ih0) * (min(iw1, padded_w) - iw0)
                    else:
                        halo = (
                            ((x_extent - 1) * p.stride + p.ker_width)
                            * ((y_extent - 1) * p.stride + p.ker_height)
                        )
                    # Channel-sliced streaming: one x'×y' tile and the z-kernel
                    # weights of that channel per input channel (α = 1).
                    input_reads += halo * p.in_channels
                    weight_reads += (
                        p.ker_height * p.ker_width * p.in_channels * z_extent
                    )
    return IOVolume(
        input_reads=float(input_reads),
        weight_reads=float(weight_reads),
        output_writes=float(p.output_elements),
    )


@dataclass(frozen=True)
class DirectDataflow:
    """The direct-convolution dataflow bound to a problem and a machine size.

    Bundles tile selection, the closed-form I/O volume, the simulated volume
    and the on-chip footprint check used by the auto-tuner's search domain.
    """

    params: ConvParams
    fast_memory: int
    processors: int = 1
    tile: Optional[OutputTile] = None

    def __post_init__(self) -> None:
        if self.fast_memory <= 0:
            raise ValueError("fast_memory must be positive")
        if self.processors <= 0:
            raise ValueError("processors must be positive")
        if self.tile is None:
            object.__setattr__(
                self,
                "tile",
                optimal_tile_direct(self.params, self.fast_memory, self.processors),
            )

    def io_volume(self) -> IOVolume:
        return direct_dataflow_io(self.params, self.tile)

    def io_volume_simulated(self) -> IOVolume:
        return simulate_direct_dataflow(self.params, self.tile)

    def on_chip_elements(self) -> int:
        """Elements resident per processor: the output tile, one channel slice
        of the input halo, and the corresponding weight slice."""
        t = self.tile.clip_to(self.params)
        return (
            t.outputs
            + t.input_footprint(self.params)
            + self.params.ker_height * self.params.ker_width * t.z
        )

    def fits(self) -> bool:
        return self.on_chip_elements() <= max(1, self.fast_memory // self.processors)
