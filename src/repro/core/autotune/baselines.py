"""Baseline tuners: the search strategies the paper compares against.

Figure 11 compares the ATE against the automation methods available in a
TVM-style tuner over the *unpruned* configuration space:

* :class:`RandomSearchTuner` — uniform random sampling;
* :class:`SimulatedAnnealingTuner` — measurement-driven simulated annealing
  over the neighbourhood graph;
* :class:`GeneticTuner` — a small genetic algorithm (tournament selection,
  knob-wise crossover, neighbourhood mutation);
* :class:`TVMStyleTuner` — the closest analogue of TVM's XGBoost tuner: the
  same cost-model + parallel-random-walk machinery as the ATE, but run on the
  unpruned space (no optimality-condition constraints).

Every tuner returns the same :class:`~repro.core.autotune.session.TuningResult`
structure so the benchmarks can compare convergence curves directly.

**Step-wise sessions.**  Like the engine, every baseline runs as a resumable
session implementing the
:class:`~repro.core.autotune.session.TuningSessionProtocol` — the search loop
is written once as a generator (:meth:`BaselineTuner._search`) that yields
proposal batches and receives the corresponding
:class:`~repro.core.autotune.session.TrialRecord` lists back, and
:class:`BaselineSession` adapts that generator to the strict
``propose()``/``update()`` alternation.  ``tune()`` is the thin synchronous
driver (measure each batch with the tuner's own
:meth:`~repro.core.autotune.config.Measurer.measure_batch`); the concurrent
:class:`~repro.service.TuningService` drives the very same sessions, packing
their batches into shared executor calls — both produce bit-identical
trajectories because all randomness lives in the generator and is consumed
in proposal order (property-tested in ``tests/test_baseline_sessions.py``).
"""

from __future__ import annotations

import math
import random
from typing import Generator, List, Optional, Sequence

from ...conv.tensor import ConvParams
from ...gpusim.executor import ExecutionResult
from ...gpusim.spec import GPUSpec
from .config import Configuration, Measurer
from .engine import AutoTuningEngine
from .session import TrialRecord, TuningResult, record_trial
from .space import SearchSpace

__all__ = [
    "BaselineSession",
    "BaselineTuner",
    "RandomSearchTuner",
    "SimulatedAnnealingTuner",
    "ParallelTemperingSATuner",
    "GeneticTuner",
    "TVMStyleTuner",
]

#: generator type of :meth:`BaselineTuner._search`: yields proposal batches,
#: receives the matching trial records back.
SearchGenerator = Generator[List[Configuration], List[TrialRecord], None]


class BaselineSession:
    """Step-wise session over a baseline tuner's search generator.

    Adapts :meth:`BaselineTuner._search` to the
    :class:`~repro.core.autotune.session.TuningSessionProtocol`: every batch
    the generator yields is handed out by :meth:`propose`, and the
    measurements fed back through :meth:`update` (strict alternation, in
    proposal order, ``None`` marking infeasible entries) are recorded and
    returned into the generator.  A session may run to completion exactly
    once per tuner instance — the tuner's RNG streams are session state.
    """

    def __init__(self, tuner: "BaselineTuner") -> None:
        self.tuner = tuner
        self.result = tuner._new_result()
        self._finished = False
        self._awaiting = False
        self._gen = tuner._search(self.result)
        self._next = self._advance(None)

    # ------------------------------------------------------------------ #
    @property
    def finished(self) -> bool:
        return self._finished

    def propose(self) -> List[Configuration]:
        """Next batch of configurations to measure; ``[]`` when finished."""
        if self._finished:
            return []
        if self._awaiting:
            raise RuntimeError("propose() called before update() of the previous batch")
        self._awaiting = True
        return list(self._next)

    def update(
        self,
        configs: Sequence[Configuration],
        executions: Sequence[Optional[ExecutionResult]],
    ) -> None:
        """Feed back the measurements of the last proposed batch."""
        if not self._awaiting:
            raise RuntimeError("update() called without a pending proposal")
        if len(configs) != len(executions):
            raise ValueError("configs and executions must have the same length")
        self._awaiting = False
        records = [
            record_trial(self.result, config, execution)
            for config, execution in zip(configs, executions)
        ]
        self._next = self._advance(records)

    # ------------------------------------------------------------------ #
    def _advance(self, records: Optional[List[TrialRecord]]) -> List[Configuration]:
        """Resume the search generator until it yields a non-empty batch.

        An empty yield (a search step that produced nothing to measure) is
        answered with an empty record list instead of being surfaced — an
        empty :meth:`propose` batch means *finished* to every driver.
        """
        try:
            batch = self._gen.send(records)
            while not batch:
                batch = self._gen.send([])
        except StopIteration:
            self._finished = True
            return []
        return list(batch)


class BaselineTuner:
    """Common scaffolding for measurement-driven baseline tuners.

    Subclasses implement exactly one method — the :meth:`_search` generator —
    and inherit the session machinery, the shared budget bookkeeping
    (:meth:`_remaining`) and the synchronous :meth:`tune` driver.
    """

    name = "baseline"

    def __init__(
        self,
        params: ConvParams,
        spec: GPUSpec,
        algorithm: str = "direct",
        max_measurements: int = 256,
        seed: int = 0,
        pruned: bool = False,
        measurer: Optional[Measurer] = None,
    ) -> None:
        if max_measurements < 1:
            raise ValueError("max_measurements must be >= 1")
        self.params = params
        self.spec = spec
        self.algorithm = algorithm
        self.max_measurements = max_measurements
        self.seed = seed
        self.space = SearchSpace(params, spec, algorithm, pruned=pruned)
        self.measurer = measurer or Measurer(params, spec)
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------ #
    def _new_result(self) -> TuningResult:
        return TuningResult(
            tuner=self.name,
            params=self.params,
            gpu=self.spec.name,
            space_size=self.space.size(),
        )

    def _remaining(self, result: TuningResult) -> int:
        """Measurement budget left — the single bookkeeping rule every
        search generator loops on (previously duplicated per tuner)."""
        return self.max_measurements - result.num_measurements

    def _search(self, result: TuningResult) -> SearchGenerator:
        """The tuner's search loop as a generator: ``records = yield configs``.

        Receives the :class:`TrialRecord` list of each yielded batch (in
        proposal order); all tuner randomness must be drawn inside, so any
        faithful driver reproduces the trajectory bit-for-bit.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def session(self) -> BaselineSession:
        """Start the step-wise session (see :class:`BaselineSession`).

        The session borrows the tuner's RNG streams, so at most one session
        per tuner instance may run to completion; :meth:`tune` is simply a
        session driven by the tuner's own measurer.
        """
        return BaselineSession(self)

    def tune(self) -> TuningResult:
        """Drive a session to completion with the tuner's own measurer."""
        session = self.session()
        while True:
            batch = session.propose()
            if not batch:
                break
            session.update(batch, self.measurer.measure_batch(batch))
        return session.result


class RandomSearchTuner(BaselineTuner):
    """Uniform random sampling of the configuration space."""

    name = "random"

    def _search(self, result: TuningResult) -> SearchGenerator:
        seen = set()
        attempts = 0
        configs: List[Configuration] = []
        while len(configs) < self.max_measurements and attempts < 50 * self.max_measurements:
            attempts += 1
            config = self.space.random_configuration(self.rng)
            if config.key() in seen:
                continue
            seen.add(config.key())
            configs.append(config)
        yield configs


class SimulatedAnnealingTuner(BaselineTuner):
    """Measurement-driven simulated annealing on the neighbourhood graph."""

    name = "simulated_annealing"

    def __init__(self, *args, initial_temperature: float = 0.6, cooling: float = 0.95, **kwargs):
        super().__init__(*args, **kwargs)
        if initial_temperature <= 0 or not (0.0 < cooling < 1.0):
            raise ValueError("initial_temperature must be > 0 and cooling in (0, 1)")
        self.initial_temperature = initial_temperature
        self.cooling = cooling

    def _search(self, result: TuningResult) -> SearchGenerator:
        current = self.space.random_configuration(self.rng)
        (current_record,) = yield [current]
        current_time = current_record.time_seconds
        temperature = self.initial_temperature

        while self._remaining(result) > 0:
            candidate = self.space.neighbor(current, self.rng)
            (record,) = yield [candidate]
            cand_time = record.time_seconds
            if not math.isfinite(cand_time):
                temperature *= self.cooling
                continue
            if not math.isfinite(current_time):
                accept = True
            else:
                # Work with log-runtimes so the acceptance rule is scale-free.
                delta = math.log(current_time) - math.log(cand_time)
                accept = delta >= 0 or self.rng.random() < math.exp(delta / max(temperature, 1e-6))
            if accept:
                current, current_time = candidate, cand_time
            temperature *= self.cooling


class ParallelTemperingSATuner(BaselineTuner):
    """Batched simulated annealing: tempered chains measured together.

    The single-chain :class:`SimulatedAnnealingTuner` measures one
    configuration per step, so at large budgets Figure 11 compares it
    against batched tuners with a structural (wall-clock) handicap that has
    nothing to do with its search quality.  This variant keeps the
    measurement-driven Metropolis rule but runs ``chains`` walkers on a
    fixed geometric temperature ladder

    ``T_i = initial_temperature * temperature_ratio ** i``  (chain 0 coldest),

    so that every round *all* chains' proposals go through one
    :meth:`~repro.core.autotune.config.Measurer.measure_batch` call.  After
    each round, adjacent chains may exchange states (replica exchange /
    parallel tempering) with the standard acceptance probability
    ``min(1, exp((1/T_i - 1/T_j) * (E_i - E_j)))`` over log-runtime energies
    ``E = log(time)`` — hot chains roam the space and feed improving states
    down the ladder, which replaces the single chain's cooling schedule.

    **RNG streams** (documented for reproducibility): chain ``i`` draws its
    initial state, proposals and Metropolis acceptances from its own
    ``random.Random(seed * 1_000_003 + i)`` stream, so no chain's randomness
    depends on another chain's history or on the chain count; swap decisions
    draw from a separate ``random.Random(seed ^ 0x5CA1AB1E)`` stream, at most
    one draw per adjacent pair per round in coldest-first ladder order (a
    deterministically accepted swap consumes no draw).  When
    the remaining budget is smaller than the chain count, only the coldest
    ``remaining`` chains propose in the final round.
    """

    name = "sa_tempering"

    def __init__(
        self,
        *args,
        chains: int = 8,
        initial_temperature: float = 0.3,
        temperature_ratio: float = 1.7,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if chains < 2:
            raise ValueError("chains must be >= 2 (use SimulatedAnnealingTuner for 1)")
        if initial_temperature <= 0 or temperature_ratio <= 1.0:
            raise ValueError(
                "initial_temperature must be > 0 and temperature_ratio > 1"
            )
        self.chains = chains
        self.temperatures = [
            initial_temperature * temperature_ratio**i for i in range(chains)
        ]
        self._chain_rngs = [
            random.Random(self.seed * 1_000_003 + i) for i in range(chains)
        ]
        self._swap_rng = random.Random(self.seed ^ 0x5CA1AB1E)

    # ------------------------------------------------------------------ #
    def _accept(self, current_time: float, cand_time: float, temperature: float, rng) -> bool:
        """Single-chain Metropolis rule on log-runtimes (scale-free)."""
        if not math.isfinite(cand_time):
            return False
        if not math.isfinite(current_time):
            return True
        delta = math.log(current_time) - math.log(cand_time)
        return delta >= 0 or rng.random() < math.exp(delta / max(temperature, 1e-6))

    def _search(self, result: TuningResult) -> SearchGenerator:
        k = min(self.chains, self.max_measurements)

        # Round 0: every chain draws its own start; one batched measurement.
        states = [self.space.random_configuration(self._chain_rngs[i]) for i in range(k)]
        records = yield states
        times = [r.time_seconds for r in records]

        while self._remaining(result) > 0:
            live = min(k, self._remaining(result))
            proposals = [
                self.space.neighbor(states[i], self._chain_rngs[i]) for i in range(live)
            ]
            records = yield proposals
            for i in range(live):
                if self._accept(
                    times[i],
                    records[i].time_seconds,
                    self.temperatures[i],
                    self._chain_rngs[i],
                ):
                    states[i] = proposals[i]
                    times[i] = records[i].time_seconds

            # Replica exchange between adjacent temperatures, coldest first.
            for i in range(k - 1):
                e_i, e_j = times[i], times[i + 1]
                if not (math.isfinite(e_i) and math.isfinite(e_j)):
                    # An unmeasurable state swaps unconditionally towards the
                    # hot end so the cold chains always hold real schedules.
                    swap = math.isfinite(e_j) and not math.isfinite(e_i)
                else:
                    beta_i = 1.0 / self.temperatures[i]
                    beta_j = 1.0 / self.temperatures[i + 1]
                    log_p = (beta_i - beta_j) * (math.log(e_i) - math.log(e_j))
                    swap = log_p >= 0 or self._swap_rng.random() < math.exp(log_p)
                if swap:
                    states[i], states[i + 1] = states[i + 1], states[i]
                    times[i], times[i + 1] = times[i + 1], times[i]


class GeneticTuner(BaselineTuner):
    """A small genetic algorithm (the third automation method of Figure 11)."""

    name = "genetic"

    def __init__(self, *args, population: int = 24, elite: int = 4, mutation_rate: float = 0.3, **kwargs):
        super().__init__(*args, **kwargs)
        if population < 4 or elite < 1 or elite >= population:
            raise ValueError("population must be >= 4 and 1 <= elite < population")
        if not (0.0 <= mutation_rate <= 1.0):
            raise ValueError("mutation_rate must be in [0, 1]")
        self.population_size = population
        self.elite = elite
        self.mutation_rate = mutation_rate

    # ------------------------------------------------------------------ #
    def _crossover(self, a: Configuration, b: Configuration) -> Configuration:
        d_a, d_b = a.as_dict(), b.as_dict()
        child = {k: (d_a[k] if self.rng.random() < 0.5 else d_b[k]) for k in d_a}
        # Tile/thread divisibility may be broken by mixing knobs; repair by
        # resetting the thread counts of any axis that no longer divides.
        for axis in ("x", "y", "z"):
            if child[f"tile_{axis}"] % child[f"threads_{axis}"]:
                child[f"threads_{axis}"] = 1
        candidate = Configuration(**child)
        if self.space.contains(candidate):
            return candidate
        return self.space.neighbor(a, self.rng)

    def _search(self, result: TuningResult) -> SearchGenerator:
        initial = [
            self.space.random_configuration(self.rng)
            for _ in range(min(self.population_size, self.max_measurements))
        ]
        population: List[TrialRecord] = yield initial

        while self._remaining(result) > 0:
            ranked = sorted(
                (p for p in population if p.valid), key=lambda t: t.time_seconds
            ) or population
            elites = ranked[: self.elite]
            # A generation's children depend only on the previous population,
            # so breed them all first and measure the brood in one batch.
            num_children = min(
                self.population_size - len(elites), self._remaining(result)
            )
            child_configs: List[Configuration] = []
            while len(child_configs) < num_children:
                parent_a = self._tournament(ranked)
                parent_b = self._tournament(ranked)
                child = self._crossover(parent_a.config, parent_b.config)
                if self.rng.random() < self.mutation_rate:
                    child = self.space.neighbor(child, self.rng)
                child_configs.append(child)
            children = yield child_configs
            population = elites + children

    def _tournament(self, ranked: Sequence[TrialRecord], k: int = 3) -> TrialRecord:
        contenders = [self.rng.choice(ranked) for _ in range(min(k, len(ranked)))]
        return min(contenders, key=lambda t: t.time_seconds if t.valid else float("inf"))


class TVMStyleTuner(AutoTuningEngine):
    """Cost-model-guided tuner over the *unpruned* space.

    Identical machinery to the ATE (gradient-boosted cost model + parallel
    random-walk explorer) but without the optimality-condition constraints of
    Table 1, so it represents the state-of-the-art ML-based tuner the paper
    compares against (TVM).  Sessions (and therefore ``tune()`` and the
    tuning service) record their results under the ``"tvm_style"`` name.
    """

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("pruned", False)
        super().__init__(*args, **kwargs)

    @property
    def result_name(self) -> str:
        return "tvm_style"
