"""Baseline tuners: the search strategies the paper compares against.

Figure 11 compares the ATE against the automation methods available in a
TVM-style tuner over the *unpruned* configuration space:

* :class:`RandomSearchTuner` — uniform random sampling;
* :class:`SimulatedAnnealingTuner` — measurement-driven simulated annealing
  over the neighbourhood graph;
* :class:`GeneticTuner` — a small genetic algorithm (tournament selection,
  knob-wise crossover, neighbourhood mutation);
* :class:`TVMStyleTuner` — the closest analogue of TVM's XGBoost tuner: the
  same cost-model + parallel-random-walk machinery as the ATE, but run on the
  unpruned space (no optimality-condition constraints).

Every tuner returns the same :class:`~repro.core.autotune.engine.TuningResult`
structure so the benchmarks can compare convergence curves directly.  Tuners
whose proposals do not depend on the measurements of the current batch
(random search, a genetic generation's brood) measure through the batched
:meth:`~repro.core.autotune.config.Measurer.measure_batch` pipeline; the
inherently sequential single-chain simulated-annealing walk stays on the
(single-lowering) scalar path, and
:class:`ParallelTemperingSATuner` restores batching to annealing by running
many tempered chains whose per-round proposals are measured together.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from ...conv.tensor import ConvParams
from ...gpusim.spec import GPUSpec
from .config import Configuration, Measurer
from .cost_model import CostModel
from .engine import AutoTuningEngine, TrialRecord, TuningResult
from .explorer import ExplorerConfig
from .space import SearchSpace

__all__ = [
    "BaselineTuner",
    "RandomSearchTuner",
    "SimulatedAnnealingTuner",
    "ParallelTemperingSATuner",
    "GeneticTuner",
    "TVMStyleTuner",
]


class BaselineTuner:
    """Common scaffolding for measurement-driven baseline tuners."""

    name = "baseline"

    def __init__(
        self,
        params: ConvParams,
        spec: GPUSpec,
        algorithm: str = "direct",
        max_measurements: int = 256,
        seed: int = 0,
        pruned: bool = False,
        measurer: Optional[Measurer] = None,
    ) -> None:
        if max_measurements < 1:
            raise ValueError("max_measurements must be >= 1")
        self.params = params
        self.spec = spec
        self.algorithm = algorithm
        self.max_measurements = max_measurements
        self.seed = seed
        self.space = SearchSpace(params, spec, algorithm, pruned=pruned)
        self.measurer = measurer or Measurer(params, spec)
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------ #
    def _to_record(
        self, result: TuningResult, config: Configuration, execution
    ) -> TrialRecord:
        index = len(result.trials)
        if execution is None:
            record = TrialRecord(index=index, config=config, time_seconds=float("inf"), gflops=0.0)
        else:
            record = TrialRecord(
                index=index,
                config=config,
                time_seconds=execution.time_seconds,
                gflops=execution.achieved_gflops,
            )
        result.trials.append(record)
        return record

    def _record(self, result: TuningResult, config: Configuration) -> TrialRecord:
        return self._to_record(result, config, self.measurer.try_measure(config))

    def _record_batch(
        self, result: TuningResult, configs: Sequence[Configuration]
    ) -> List[TrialRecord]:
        """Measure many configurations at once through the batched pipeline."""
        return [
            self._to_record(result, config, execution)
            for config, execution in zip(configs, self.measurer.measure_batch(configs))
        ]

    def _new_result(self) -> TuningResult:
        return TuningResult(
            tuner=self.name,
            params=self.params,
            gpu=self.spec.name,
            space_size=self.space.size(),
        )

    def tune(self) -> TuningResult:  # pragma: no cover - overridden
        raise NotImplementedError


class RandomSearchTuner(BaselineTuner):
    """Uniform random sampling of the configuration space."""

    name = "random"

    def tune(self) -> TuningResult:
        result = self._new_result()
        seen = set()
        attempts = 0
        configs: List[Configuration] = []
        while len(configs) < self.max_measurements and attempts < 50 * self.max_measurements:
            attempts += 1
            config = self.space.random_configuration(self.rng)
            if config.key() in seen:
                continue
            seen.add(config.key())
            configs.append(config)
        self._record_batch(result, configs)
        return result


class SimulatedAnnealingTuner(BaselineTuner):
    """Measurement-driven simulated annealing on the neighbourhood graph."""

    name = "simulated_annealing"

    def __init__(self, *args, initial_temperature: float = 0.6, cooling: float = 0.95, **kwargs):
        super().__init__(*args, **kwargs)
        if initial_temperature <= 0 or not (0.0 < cooling < 1.0):
            raise ValueError("initial_temperature must be > 0 and cooling in (0, 1)")
        self.initial_temperature = initial_temperature
        self.cooling = cooling

    def tune(self) -> TuningResult:
        result = self._new_result()
        current = self.space.random_configuration(self.rng)
        current_record = self._record(result, current)
        current_time = current_record.time_seconds
        temperature = self.initial_temperature

        while result.num_measurements < self.max_measurements:
            candidate = self.space.neighbor(current, self.rng)
            record = self._record(result, candidate)
            cand_time = record.time_seconds
            if not math.isfinite(cand_time):
                temperature *= self.cooling
                continue
            if not math.isfinite(current_time):
                accept = True
            else:
                # Work with log-runtimes so the acceptance rule is scale-free.
                delta = math.log(current_time) - math.log(cand_time)
                accept = delta >= 0 or self.rng.random() < math.exp(delta / max(temperature, 1e-6))
            if accept:
                current, current_time = candidate, cand_time
            temperature *= self.cooling
        return result


class ParallelTemperingSATuner(BaselineTuner):
    """Batched simulated annealing: tempered chains measured together.

    The single-chain :class:`SimulatedAnnealingTuner` measures one
    configuration per step, so at large budgets Figure 11 compares it
    against batched tuners with a structural (wall-clock) handicap that has
    nothing to do with its search quality.  This variant keeps the
    measurement-driven Metropolis rule but runs ``chains`` walkers on a
    fixed geometric temperature ladder

    ``T_i = initial_temperature * temperature_ratio ** i``  (chain 0 coldest),

    so that every round *all* chains' proposals go through one
    :meth:`~repro.core.autotune.config.Measurer.measure_batch` call.  After
    each round, adjacent chains may exchange states (replica exchange /
    parallel tempering) with the standard acceptance probability
    ``min(1, exp((1/T_i - 1/T_j) * (E_i - E_j)))`` over log-runtime energies
    ``E = log(time)`` — hot chains roam the space and feed improving states
    down the ladder, which replaces the single chain's cooling schedule.

    **RNG streams** (documented for reproducibility): chain ``i`` draws its
    initial state, proposals and Metropolis acceptances from its own
    ``random.Random(seed * 1_000_003 + i)`` stream, so no chain's randomness
    depends on another chain's history or on the chain count; swap decisions
    draw from a separate ``random.Random(seed ^ 0x5CA1AB1E)`` stream, at most
    one draw per adjacent pair per round in coldest-first ladder order (a
    deterministically accepted swap consumes no draw).  When
    the remaining budget is smaller than the chain count, only the coldest
    ``remaining`` chains propose in the final round.
    """

    name = "sa_tempering"

    def __init__(
        self,
        *args,
        chains: int = 8,
        initial_temperature: float = 0.3,
        temperature_ratio: float = 1.7,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if chains < 2:
            raise ValueError("chains must be >= 2 (use SimulatedAnnealingTuner for 1)")
        if initial_temperature <= 0 or temperature_ratio <= 1.0:
            raise ValueError(
                "initial_temperature must be > 0 and temperature_ratio > 1"
            )
        self.chains = chains
        self.temperatures = [
            initial_temperature * temperature_ratio**i for i in range(chains)
        ]
        self._chain_rngs = [
            random.Random(self.seed * 1_000_003 + i) for i in range(chains)
        ]
        self._swap_rng = random.Random(self.seed ^ 0x5CA1AB1E)

    # ------------------------------------------------------------------ #
    def _accept(self, current_time: float, cand_time: float, temperature: float, rng) -> bool:
        """Single-chain Metropolis rule on log-runtimes (scale-free)."""
        if not math.isfinite(cand_time):
            return False
        if not math.isfinite(current_time):
            return True
        delta = math.log(current_time) - math.log(cand_time)
        return delta >= 0 or rng.random() < math.exp(delta / max(temperature, 1e-6))

    def tune(self) -> TuningResult:
        result = self._new_result()
        budget = self.max_measurements
        k = min(self.chains, budget)

        # Round 0: every chain draws its own start; one batched measurement.
        states = [self.space.random_configuration(self._chain_rngs[i]) for i in range(k)]
        records = self._record_batch(result, states)
        times = [r.time_seconds for r in records]

        while result.num_measurements < budget:
            live = min(k, budget - result.num_measurements)
            proposals = [
                self.space.neighbor(states[i], self._chain_rngs[i]) for i in range(live)
            ]
            records = self._record_batch(result, proposals)
            for i in range(live):
                if self._accept(
                    times[i],
                    records[i].time_seconds,
                    self.temperatures[i],
                    self._chain_rngs[i],
                ):
                    states[i] = proposals[i]
                    times[i] = records[i].time_seconds

            # Replica exchange between adjacent temperatures, coldest first.
            for i in range(k - 1):
                e_i, e_j = times[i], times[i + 1]
                if not (math.isfinite(e_i) and math.isfinite(e_j)):
                    # An unmeasurable state swaps unconditionally towards the
                    # hot end so the cold chains always hold real schedules.
                    swap = math.isfinite(e_j) and not math.isfinite(e_i)
                else:
                    beta_i = 1.0 / self.temperatures[i]
                    beta_j = 1.0 / self.temperatures[i + 1]
                    log_p = (beta_i - beta_j) * (math.log(e_i) - math.log(e_j))
                    swap = log_p >= 0 or self._swap_rng.random() < math.exp(log_p)
                if swap:
                    states[i], states[i + 1] = states[i + 1], states[i]
                    times[i], times[i + 1] = times[i + 1], times[i]
        return result


class GeneticTuner(BaselineTuner):
    """A small genetic algorithm (the third automation method of Figure 11)."""

    name = "genetic"

    def __init__(self, *args, population: int = 24, elite: int = 4, mutation_rate: float = 0.3, **kwargs):
        super().__init__(*args, **kwargs)
        if population < 4 or elite < 1 or elite >= population:
            raise ValueError("population must be >= 4 and 1 <= elite < population")
        if not (0.0 <= mutation_rate <= 1.0):
            raise ValueError("mutation_rate must be in [0, 1]")
        self.population_size = population
        self.elite = elite
        self.mutation_rate = mutation_rate

    # ------------------------------------------------------------------ #
    def _crossover(self, a: Configuration, b: Configuration) -> Configuration:
        d_a, d_b = a.as_dict(), b.as_dict()
        child = {k: (d_a[k] if self.rng.random() < 0.5 else d_b[k]) for k in d_a}
        # Tile/thread divisibility may be broken by mixing knobs; repair by
        # resetting the thread counts of any axis that no longer divides.
        for axis in ("x", "y", "z"):
            if child[f"tile_{axis}"] % child[f"threads_{axis}"]:
                child[f"threads_{axis}"] = 1
        candidate = Configuration(**child)
        if self.space.contains(candidate):
            return candidate
        return self.space.neighbor(a, self.rng)

    def tune(self) -> TuningResult:
        result = self._new_result()
        initial = [
            self.space.random_configuration(self.rng)
            for _ in range(min(self.population_size, self.max_measurements))
        ]
        population: List[TrialRecord] = self._record_batch(result, initial)

        while result.num_measurements < self.max_measurements:
            ranked = sorted(
                (p for p in population if p.valid), key=lambda t: t.time_seconds
            ) or population
            elites = ranked[: self.elite]
            # A generation's children depend only on the previous population,
            # so breed them all first and measure the brood in one batch.
            num_children = min(
                self.population_size - len(elites),
                self.max_measurements - result.num_measurements,
            )
            child_configs: List[Configuration] = []
            while len(child_configs) < num_children:
                parent_a = self._tournament(ranked)
                parent_b = self._tournament(ranked)
                child = self._crossover(parent_a.config, parent_b.config)
                if self.rng.random() < self.mutation_rate:
                    child = self.space.neighbor(child, self.rng)
                child_configs.append(child)
            population = elites + self._record_batch(result, child_configs)
        return result

    def _tournament(self, ranked: Sequence[TrialRecord], k: int = 3) -> TrialRecord:
        contenders = [self.rng.choice(ranked) for _ in range(min(k, len(ranked)))]
        return min(contenders, key=lambda t: t.time_seconds if t.valid else float("inf"))


class TVMStyleTuner(AutoTuningEngine):
    """Cost-model-guided tuner over the *unpruned* space.

    Identical machinery to the ATE (gradient-boosted cost model + parallel
    random-walk explorer) but without the optimality-condition constraints of
    Table 1, so it represents the state-of-the-art ML-based tuner the paper
    compares against (TVM).
    """

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("pruned", False)
        super().__init__(*args, **kwargs)

    def tune(self, initial_random: int = 16) -> TuningResult:
        result = super().tune(initial_random=initial_random)
        result.tuner = "tvm_style"
        return result
