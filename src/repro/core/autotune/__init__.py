"""I/O-lower-bound-guided auto-tuning engine (Section 6 of the paper).

Measurements flow through a batched pipeline (``Measurer.measure_batch`` →
``GPUExecutor.run_batch``) and finished tuning runs can be shared across
layers, networks and processes via the :class:`TuningDatabase`.
"""

from .config import (
    ConfigArray,
    Configuration,
    Measurer,
    PendingBatch,
    build_profile,
    lower_batch,
)
from .space import SearchSpace
from .features import FEATURE_NAMES, FeatureCache, feature_matrix, feature_vector
from .cost_model import CostModel, GradientBoostedTrees, RegressionTree
from .explorer import ExplorerConfig, ParallelRandomWalkExplorer, ScalarRandomWalkExplorer
from .session import TrialRecord, TuningResult, TuningSessionProtocol, record_trial
from .engine import AutoTuningEngine, TuningSession
from .database import (
    RecordEnvelope,
    TuningDatabase,
    TuningDatabaseError,
    TuningRecord,
    default_database_path,
)
from .store import JsonMapStore, LogStore, RecordStore
from .baselines import (
    BaselineSession,
    BaselineTuner,
    GeneticTuner,
    ParallelTemperingSATuner,
    RandomSearchTuner,
    SimulatedAnnealingTuner,
    TVMStyleTuner,
)

__all__ = [
    "ConfigArray",
    "Configuration",
    "Measurer",
    "PendingBatch",
    "build_profile",
    "lower_batch",
    "SearchSpace",
    "RecordEnvelope",
    "TuningDatabase",
    "TuningDatabaseError",
    "TuningRecord",
    "default_database_path",
    "JsonMapStore",
    "LogStore",
    "RecordStore",
    "FEATURE_NAMES",
    "FeatureCache",
    "feature_matrix",
    "feature_vector",
    "CostModel",
    "GradientBoostedTrees",
    "RegressionTree",
    "ExplorerConfig",
    "ParallelRandomWalkExplorer",
    "ScalarRandomWalkExplorer",
    "AutoTuningEngine",
    "TrialRecord",
    "TuningResult",
    "TuningSession",
    "TuningSessionProtocol",
    "record_trial",
    "BaselineSession",
    "BaselineTuner",
    "GeneticTuner",
    "ParallelTemperingSATuner",
    "RandomSearchTuner",
    "SimulatedAnnealingTuner",
    "TVMStyleTuner",
]
