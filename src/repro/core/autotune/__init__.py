"""I/O-lower-bound-guided auto-tuning engine (Section 6 of the paper)."""

from .config import Configuration, Measurer, build_profile
from .space import SearchSpace
from .features import FEATURE_NAMES, feature_matrix, feature_vector
from .cost_model import CostModel, GradientBoostedTrees, RegressionTree
from .explorer import ExplorerConfig, ParallelRandomWalkExplorer
from .engine import AutoTuningEngine, TrialRecord, TuningResult
from .baselines import (
    BaselineTuner,
    GeneticTuner,
    RandomSearchTuner,
    SimulatedAnnealingTuner,
    TVMStyleTuner,
)

__all__ = [
    "Configuration",
    "Measurer",
    "build_profile",
    "SearchSpace",
    "FEATURE_NAMES",
    "feature_matrix",
    "feature_vector",
    "CostModel",
    "GradientBoostedTrees",
    "RegressionTree",
    "ExplorerConfig",
    "ParallelRandomWalkExplorer",
    "AutoTuningEngine",
    "TrialRecord",
    "TuningResult",
    "BaselineTuner",
    "GeneticTuner",
    "RandomSearchTuner",
    "SimulatedAnnealingTuner",
    "TVMStyleTuner",
]
