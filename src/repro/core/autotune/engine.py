"""The auto-tuning engine (Section 6.1/6.3).

Each tuning iteration performs the three stages of Figure 8:

1. **Model training** — refit the gradient-boosted cost model on every
   (configuration, runtime) pair measured so far;
2. **Configuration searching** — the parallel random-walk explorer proposes a
   batch of promising, not-yet-measured configurations from the searching
   domain (the pruned space of Table 1);
3. **Dataset updating** — the proposed configurations are "measured" on the
   GPU simulator and appended to the dataset.

Tuning stops when the measurement budget is exhausted or the best runtime has
not improved for ``patience`` consecutive iterations.  The engine records the
best-so-far trajectory (used by the Figure 11 benchmark) and the total number
of measurements (Table 2's *Iterations* column).

Measurement batches go through the vectorised
:meth:`~repro.core.autotune.config.Measurer.measure_batch` pipeline, and an
optional :class:`~repro.core.autotune.database.TuningDatabase` lets the engine
skip tuning entirely for ``(ConvParams, GPUSpec, algorithm)`` triples that
were already tuned (by this run or a previous, persisted one).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...conv.tensor import ConvParams
from ...gpusim.spec import GPUSpec
from .config import Configuration, Measurer
from .cost_model import CostModel
from .explorer import ExplorerConfig, ParallelRandomWalkExplorer
from .features import feature_matrix
from .space import SearchSpace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (database imports us)
    from .database import TuningDatabase

__all__ = ["TrialRecord", "TuningResult", "AutoTuningEngine"]


@dataclass(frozen=True)
class TrialRecord:
    """One measured configuration."""

    index: int
    config: Configuration
    time_seconds: float
    gflops: float

    @property
    def valid(self) -> bool:
        return np.isfinite(self.time_seconds) and self.time_seconds > 0


@dataclass
class TuningResult:
    """Outcome of one tuning run."""

    tuner: str
    params: ConvParams
    gpu: str
    trials: List[TrialRecord] = field(default_factory=list)
    space_size: int = 0
    #: True when the result was served from a TuningDatabase instead of tuning.
    from_cache: bool = False

    @property
    def num_measurements(self) -> int:
        return len(self.trials)

    @property
    def best_trial(self) -> TrialRecord:
        valid = [t for t in self.trials if t.valid]
        if not valid:
            raise RuntimeError("no valid measurement recorded")
        return min(valid, key=lambda t: t.time_seconds)

    @property
    def best_config(self) -> Configuration:
        return self.best_trial.config

    @property
    def best_time(self) -> float:
        return self.best_trial.time_seconds

    @property
    def best_gflops(self) -> float:
        return self.best_trial.gflops

    def best_gflops_curve(self) -> List[float]:
        """Best-so-far GFLOP/s after each measurement (Figure 11's y-axis)."""
        curve: List[float] = []
        best = 0.0
        for t in self.trials:
            if t.valid:
                best = max(best, t.gflops)
            curve.append(best)
        return curve

    def measurements_to_reach(self, fraction: float = 0.99) -> int:
        """Number of measurements needed to reach ``fraction`` of the final
        best GFLOP/s (a convergence-speed summary used by the benchmarks)."""
        if not (0.0 < fraction <= 1.0):
            raise ValueError("fraction must be in (0, 1]")
        curve = self.best_gflops_curve()
        if not curve or curve[-1] <= 0.0:
            # No valid trial was ever recorded: the curve is identically zero
            # and "fraction of the final best" is meaningless — report 0
            # instead of pretending convergence at the first measurement.
            return 0
        target = fraction * curve[-1]
        for i, v in enumerate(curve):
            if v >= target:
                return i + 1
        return len(curve)


class AutoTuningEngine:
    """I/O-lower-bound-guided auto-tuner (the paper's ATE)."""

    def __init__(
        self,
        params: ConvParams,
        spec: GPUSpec,
        algorithm: str = "direct",
        batch_size: int = 16,
        max_measurements: int = 256,
        patience: int = 6,
        seed: int = 0,
        explorer_config: Optional[ExplorerConfig] = None,
        pruned: bool = True,
        measurer: Optional[Measurer] = None,
        cost_model: Optional[CostModel] = None,
        database: Optional["TuningDatabase"] = None,
    ) -> None:
        if batch_size < 1 or max_measurements < 1:
            raise ValueError("batch_size and max_measurements must be >= 1")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.params = params
        self.spec = spec
        self.algorithm = algorithm
        self.batch_size = batch_size
        self.max_measurements = max_measurements
        self.patience = patience
        self.seed = seed
        self.space = SearchSpace(params, spec, algorithm, pruned=pruned)
        self.measurer = measurer or Measurer(params, spec)
        self.cost_model = cost_model if cost_model is not None else CostModel(seed=seed)
        self.explorer = ParallelRandomWalkExplorer(
            self.space, params, spec, config=explorer_config, seed=seed
        )
        self.database = database
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------ #
    def _measure_batch(
        self, configs: Sequence[Configuration], result: TuningResult
    ) -> None:
        """Measure a batch through the vectorised pipeline; infeasible
        configurations are recorded as invalid (infinite-time) trials."""
        for config, execution in zip(configs, self.measurer.measure_batch(configs)):
            index = len(result.trials)
            if execution is None:
                result.trials.append(
                    TrialRecord(index=index, config=config, time_seconds=float("inf"), gflops=0.0)
                )
                continue
            result.trials.append(
                TrialRecord(
                    index=index,
                    config=config,
                    time_seconds=execution.time_seconds,
                    gflops=execution.achieved_gflops,
                )
            )

    def _retrain(self, result: TuningResult) -> None:
        valid = [t for t in result.trials if t.valid]
        if not valid:
            return
        features = feature_matrix([t.config for t in valid], self.params, self.spec)
        self.cost_model.fit(features, [t.time_seconds for t in valid])

    # ------------------------------------------------------------------ #
    def tune(self, initial_random: int = 16) -> TuningResult:
        """Run the full tuning loop and return the result.

        When a :class:`TuningDatabase` is attached, a previously recorded
        result for this ``(params, gpu, algorithm)`` triple is returned
        directly (no measurements), and a freshly tuned result is stored back
        for later runs and for identical layers elsewhere in a network.
        Two guards keep cached results honest: only engines searching the
        canonical pruned domain use the database (an unpruned TVM-style run
        must not serve or consume ATE records), and a record only satisfies
        requests whose measurement budget it covers (a quick low-budget
        record never pre-empts a more thorough search).
        """
        use_database = self.database is not None and self.space.pruned
        executor = self.measurer.executor
        if use_database:
            record = self.database.lookup(
                self.params,
                self.spec,
                self.algorithm,
                budget=self.max_measurements,
                noise=executor.noise,
                noise_seed=executor.seed,
            )
            if record is not None:
                return record.as_result()
        result = self._tune(initial_random)
        if use_database and any(t.valid for t in result.trials):
            self.database.add_result(
                result,
                budget=self.max_measurements,
                noise=executor.noise,
                noise_seed=executor.seed,
            )
        return result

    def _tune(self, initial_random: int) -> TuningResult:
        result = TuningResult(
            tuner="ate" if self.space.pruned else "ate_unpruned",
            params=self.params,
            gpu=self.spec.name,
            space_size=self.space.size(),
        )
        visited: set = set()

        # Stage 0: random initialisation of the dataset.
        init = []
        for _ in range(min(initial_random, self.max_measurements)):
            c = self.space.random_configuration(self.rng)
            if c.key() not in visited:
                visited.add(c.key())
                init.append(c)
        self._measure_batch(init, result)

        best_time = min(
            (t.time_seconds for t in result.trials if t.valid), default=float("inf")
        )
        stale_iterations = 0

        while result.num_measurements < self.max_measurements:
            self._retrain(result)
            seeds = [
                t.config
                for t in sorted(
                    (t for t in result.trials if t.valid), key=lambda t: t.time_seconds
                )[:8]
            ]
            batch_size = min(self.batch_size, self.max_measurements - result.num_measurements)
            batch = self.explorer.propose(
                self.cost_model, batch_size, seeds=seeds, visited=visited
            )
            if not batch:
                break
            for c in batch:
                visited.add(c.key())
            self._measure_batch(batch, result)

            new_best = min(
                (t.time_seconds for t in result.trials if t.valid), default=float("inf")
            )
            if new_best < best_time * (1 - 1e-3):
                best_time = new_best
                stale_iterations = 0
            else:
                stale_iterations += 1
                if stale_iterations >= self.patience:
                    break
        return result
