"""The auto-tuning engine (Section 6.1/6.3).

Each tuning iteration performs the three stages of Figure 8:

1. **Model training** — refit the gradient-boosted cost model on every
   (configuration, runtime) pair measured so far;
2. **Configuration searching** — the parallel random-walk explorer proposes a
   batch of promising, not-yet-measured configurations from the searching
   domain (the pruned space of Table 1);
3. **Dataset updating** — the proposed configurations are "measured" on the
   GPU simulator and appended to the dataset.

Tuning stops when the measurement budget is exhausted or the best runtime has
not improved for ``patience`` consecutive iterations.  The engine records the
best-so-far trajectory (used by the Figure 11 benchmark) and the total number
of measurements (Table 2's *Iterations* column).

**Step-wise protocol.**  The loop above is implemented by
:class:`TuningSession`, a resumable *propose → measure → update* core that
never measures anything itself:

* :meth:`TuningSession.propose` returns the next batch of configurations to
  measure (the random initialisation on the first call, explorer batches
  afterwards) or ``[]`` once the run is finished;
* the caller measures the batch however it likes — the synchronous
  :meth:`AutoTuningEngine.tune` sends it through the engine's own
  :meth:`~repro.core.autotune.config.Measurer.measure_batch`, while the
  concurrent :class:`~repro.service.TuningService` packs batches from *many*
  sessions into shared executor calls;
* :meth:`TuningSession.update` appends the measurements to the dataset and
  advances the stopping logic.

Because a session owns all tuning state (RNG, visited set, patience counter,
cost model) and consumes measurements in exactly the order it proposed them,
any driver that feeds back faithful measurements reproduces the synchronous
path bit-for-bit.

Model retraining featurises the dataset incrementally: a
:class:`~repro.core.autotune.features.FeatureCache` keeps the per-config
feature rows, so each iteration appends the rows of the newly measured
configurations instead of rebuilding the whole matrix.

An optional :class:`~repro.core.autotune.database.TuningDatabase` lets the
engine skip tuning entirely for ``(ConvParams, GPUSpec, algorithm)`` triples
that were already tuned (by this run or a previous, persisted one).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from ...conv.tensor import ConvParams
from ...gpusim.executor import ExecutionResult
from ...gpusim.spec import GPUSpec
from ...obs.metrics import NULL_COUNTER
from .config import Configuration, Measurer
from .cost_model import CostModel
from .explorer import ExplorerConfig, ParallelRandomWalkExplorer
from .features import FeatureCache
from .session import TrialRecord, TuningResult, record_trial
from .space import SearchSpace
from .store import TuningRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (database imports us)
    from .database import TuningDatabase

__all__ = ["TrialRecord", "TuningResult", "TuningSession", "AutoTuningEngine"]


class TuningSession:
    """One resumable tuning run, driven step-wise from outside.

    The session is the engine's Figure 8 loop with the measurement stage cut
    out: :meth:`propose` hands the caller the next batch of configurations,
    :meth:`update` takes the caller's measurements back.  Strict alternation
    is required — every proposed batch must be measured and reported via
    :meth:`update` (in proposal order, with ``None`` marking infeasible
    entries) before the next :meth:`propose`.

    Drivers:

    * :meth:`AutoTuningEngine.tune` — the synchronous API; measures each
      batch immediately with the engine's own measurer;
    * :class:`repro.service.TuningService` — interleaves many sessions and
      packs their batches into shared executor calls.

    Both produce bit-identical :class:`TuningResult` values because all
    randomness (dataset initialisation, explorer walks, cost-model
    subsampling) lives inside the session and is consumed in proposal order.
    """

    def __init__(self, engine: "AutoTuningEngine", initial_random: int = 16) -> None:
        self.engine = engine
        self.initial_random = initial_random
        self.result = TuningResult(
            tuner=engine.result_name,
            params=engine.params,
            gpu=engine.spec.name,
            space_size=engine.space.size(),
        )
        self._visited: set = set()
        self._started = False
        self._finished = False
        self._awaiting_update = False
        self._init_pending = True  # the next update() is the random-init batch
        self._best_time = float("inf")
        self._stale_iterations = 0
        # Incremental featurisation of the measured dataset: rows are appended
        # as trials arrive (via the engine's FeatureCache), never rebuilt.
        self._trained_rows: List[np.ndarray] = []
        self._trained_times: List[float] = []
        self._featurised = 0  # trials already scanned into the rows above

    # ------------------------------------------------------------------ #
    @property
    def finished(self) -> bool:
        return self._finished

    def propose(self) -> List[Configuration]:
        """Next batch of configurations to measure; ``[]`` when finished."""
        if self._finished:
            return []
        if self._awaiting_update:
            raise RuntimeError("propose() called before update() of the previous batch")
        engine = self.engine
        if not self._started:
            self._started = True
            # Stage 0: random initialisation of the dataset.
            init: List[Configuration] = []
            for _ in range(min(self.initial_random, engine.max_measurements)):
                c = engine.space.random_configuration(engine.rng)
                if c.key() not in self._visited:
                    self._visited.add(c.key())
                    init.append(c)
            if not init:
                # No initialisation requested (initial_random=0): an empty
                # batch must not read as "run finished" — skip straight to
                # the explorer phase, exactly like the pre-session loop did.
                self._init_pending = False
                return self.propose()
            self._awaiting_update = True
            engine._m_proposals.inc()
            return init

        if self.result.num_measurements >= engine.max_measurements:
            self._finished = True
            return []
        self._retrain()
        seeds = [
            t.config
            for t in sorted(
                (t for t in self.result.trials if t.valid), key=lambda t: t.time_seconds
            )[:8]
        ]
        batch_size = min(
            engine.batch_size, engine.max_measurements - self.result.num_measurements
        )
        batch = engine.explorer.propose(
            engine.cost_model, batch_size, seeds=seeds, visited=self._visited
        )
        if not batch:
            self._finished = True
            return []
        for c in batch:
            self._visited.add(c.key())
        self._awaiting_update = True
        engine._m_proposals.inc()
        return batch

    def update(
        self,
        configs: Sequence[Configuration],
        executions: Sequence[Optional[ExecutionResult]],
    ) -> None:
        """Feed back the measurements of the last proposed batch.

        ``executions`` must align with ``configs`` (the proposal order);
        ``None`` marks an infeasible configuration and is recorded as an
        invalid (infinite-time) trial, exactly like the synchronous path.
        """
        if not self._awaiting_update:
            raise RuntimeError("update() called without a pending proposal")
        if len(configs) != len(executions):
            raise ValueError("configs and executions must have the same length")
        self._awaiting_update = False
        result = self.result
        first_batch = self._init_pending
        self._init_pending = False
        for config, execution in zip(configs, executions):
            record_trial(result, config, execution)

        new_best = min(
            (t.time_seconds for t in result.trials if t.valid), default=float("inf")
        )
        if first_batch:
            # The initialisation batch seeds the best-so-far time; the
            # patience counter only starts with the explorer batches.
            self._best_time = new_best
            return
        if new_best < self._best_time * (1 - 1e-3):
            self._best_time = new_best
            self._stale_iterations = 0
        else:
            self._stale_iterations += 1
            if self._stale_iterations >= self.engine.patience:
                self._finished = True

    # ------------------------------------------------------------------ #
    def _retrain(self) -> None:
        """Refit the cost model, featurising only the new valid trials."""
        trials = self.result.trials
        cache = self.engine.features
        for t in trials[self._featurised :]:
            if t.valid:
                self._trained_rows.append(cache.vector(t.config))
                self._trained_times.append(t.time_seconds)
        self._featurised = len(trials)
        if not self._trained_rows:
            return
        self.engine.cost_model.fit(np.stack(self._trained_rows), self._trained_times)
        self.engine._m_retrains.inc()


class AutoTuningEngine:
    """I/O-lower-bound-guided auto-tuner (the paper's ATE)."""

    def __init__(
        self,
        params: ConvParams,
        spec: GPUSpec,
        algorithm: str = "direct",
        batch_size: int = 16,
        max_measurements: int = 256,
        patience: int = 6,
        seed: int = 0,
        explorer_config: Optional[ExplorerConfig] = None,
        pruned: bool = True,
        measurer: Optional[Measurer] = None,
        cost_model: Optional[CostModel] = None,
        database: Optional["TuningDatabase"] = None,
        explorer_cls: Optional[type] = None,
    ) -> None:
        """``explorer_cls`` picks the searching implementation: the default is
        the vectorised lock-step
        :class:`~repro.core.autotune.explorer.ParallelRandomWalkExplorer`;
        pass :class:`~repro.core.autotune.explorer.ScalarRandomWalkExplorer`
        to run the per-configuration reference path (the quality-parity
        property tests drive both)."""
        if batch_size < 1 or max_measurements < 1:
            raise ValueError("batch_size and max_measurements must be >= 1")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.params = params
        self.spec = spec
        self.algorithm = algorithm
        self.batch_size = batch_size
        self.max_measurements = max_measurements
        self.patience = patience
        self.seed = seed
        self.space = SearchSpace(params, spec, algorithm, pruned=pruned)
        self.measurer = measurer or Measurer(params, spec)
        self.cost_model = cost_model if cost_model is not None else CostModel(seed=seed)
        #: per-config feature rows, shared between retraining and the
        #: explorer so each configuration is featurised exactly once.
        self.features = FeatureCache(params, spec)
        explorer_cls = explorer_cls or ParallelRandomWalkExplorer
        self.explorer = explorer_cls(
            self.space, params, spec, config=explorer_config, seed=seed,
            feature_cache=self.features,
        )
        self.database = database
        self.rng = random.Random(seed)
        # Telemetry mirrors (null no-ops until attach_metrics binds real
        # ones); REPRO601 scope, so only counts are recorded — never times.
        self._m_proposals = NULL_COUNTER
        self._m_retrains = NULL_COUNTER

    def attach_metrics(self, metrics) -> None:
        """Bind engine telemetry to a metrics scope (see ``repro.obs``).

        Records ``proposals`` (session proposal batches) and ``retrains``
        (cost-model refits), and forwards a ``feature_cache`` sub-scope to
        :meth:`~repro.core.autotune.features.FeatureCache.attach_metrics`.
        Observability is write-only: nothing recorded here feeds back into
        the session RNG, the explorer, or the cost model.
        """
        self._m_proposals = metrics.counter("proposals")
        self._m_retrains = metrics.counter("retrains")
        self.features.attach_metrics(metrics.scope("feature_cache"))

    # ------------------------------------------------------------------ #
    @property
    def result_name(self) -> str:
        """Name recorded in :attr:`TuningResult.tuner` (subclasses override:
        :class:`~repro.core.autotune.baselines.TVMStyleTuner` reports
        ``"tvm_style"``)."""
        return "ate" if self.space.pruned else "ate_unpruned"

    def session(self, initial_random: int = 16) -> TuningSession:
        """Start a step-wise tuning session (see :class:`TuningSession`).

        The session borrows the engine's mutable tuning state (RNG, explorer,
        cost model), so at most one session per engine may run to completion;
        :meth:`tune` is simply a session driven by the engine's own measurer.
        """
        return TuningSession(self, initial_random=initial_random)

    # ------------------------------------------------------------------ #
    def tune(self, initial_random: int = 16) -> TuningResult:
        """Run the full tuning loop and return the result.

        When a :class:`TuningDatabase` is attached, a previously recorded
        result for this ``(params, gpu, algorithm)`` triple is returned
        directly (no measurements), and a freshly tuned result is stored back
        for later runs and for identical layers elsewhere in a network.
        Two guards keep cached results honest: only engines searching the
        canonical pruned domain use the database (an unpruned TVM-style run
        must not serve or consume ATE records), and a record only satisfies
        requests whose measurement budget it covers (a quick low-budget
        record never pre-empts a more thorough search).
        """
        use_database = self.database is not None and self.space.pruned
        executor = self.measurer.executor
        if use_database:
            record = self.database.lookup(
                self.params,
                self.spec,
                self.algorithm,
                budget=self.max_measurements,
                noise=executor.noise,
                noise_seed=executor.seed,
            )
            if record is not None:
                return record.as_result()
        result = self._tune(initial_random)
        if use_database and any(t.valid for t in result.trials):
            self.database.put(
                TuningRecord.from_result(
                    result,
                    budget=self.max_measurements,
                    noise=executor.noise,
                    noise_seed=executor.seed,
                )
            )
        return result

    def _tune(self, initial_random: int) -> TuningResult:
        """Drive a session with the engine's own measurer (synchronous API)."""
        session = self.session(initial_random)
        while True:
            batch = session.propose()
            if not batch:
                break
            session.update(batch, self.measurer.measure_batch(batch))
        return session.result
