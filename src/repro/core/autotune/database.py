"""Persistent tuning database: share tuned configurations across layers/runs.

Networks repeat convolution shapes heavily (every ResNet stage re-uses the
same 3x3 layer many times, and ResNet-18/34 share most shapes outright), and
the paper's tuner spends essentially all of its time measuring batches of
configurations.  The :class:`TuningDatabase` removes the repeated work: the
best configuration found for a ``(ConvParams, GPUSpec, algorithm)`` triple is
recorded once and every later tuning request for the same triple — in the
same process or after a persistence round trip — is answered from the
database instead of re-running the search.

The database itself is a thin coordination façade: all state lives in a
pluggable :class:`~repro.core.autotune.store.RecordStore` backend (see
``store.py``) — :class:`~repro.core.autotune.store.JsonMapStore` for the
whole-file JSON map (the compatibility reference) or
:class:`~repro.core.autotune.store.LogStore` for the append-only log with
compaction and crash recovery that daemon-scale serving needs.  The façade
adds the request-level semantics: budget/conditions-aware :meth:`lookup`,
hit/miss accounting, and the :meth:`put` / :meth:`apply` write path.

The :class:`~repro.core.autotune.engine.AutoTuningEngine` consults an attached
database at the start of :meth:`~repro.core.autotune.engine.AutoTuningEngine.tune`
and stores its result when finished; the end-to-end model runner
(:class:`~repro.nets.runner.ModelRunner`) attaches one database across all
layers of all models it times.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from typing import Dict, Iterable, List, Optional, Union

from ...conv.tensor import ConvParams
from ...gpusim.spec import GPUSpec
from ...obs.metrics import NULL_COUNTER, NULL_GAUGE, Counter
from .store import (
    FORMAT_VERSION as _FORMAT_VERSION,
    JsonMapStore,
    LogStore,
    RecordStore,
    TuningDatabaseError,
    TuningRecord,
    _gpu_name,
    _params_key,
    read_map_file,
    write_map_file,
)

__all__ = [
    "RecordEnvelope",
    "TuningDatabase",
    "TuningDatabaseError",
    "TuningRecord",
    "default_database_path",
]

#: environment variable overriding the default on-disk database location.
DATABASE_ENV_VAR = "REPRO_TUNING_DB"


def default_database_path() -> str:
    """The default on-disk database location.

    ``$REPRO_TUNING_DB`` when set, otherwise ``~/.cache/repro-tuning.json``
    (honouring ``$XDG_CACHE_HOME``).
    """
    # reprolint: disable=REPRO602 - documented config-time path resolution
    override = os.environ.get(DATABASE_ENV_VAR)
    if override:
        return os.path.expanduser(override)
    # reprolint: disable=REPRO602 - XDG convention, resolved once at open time
    cache_home = os.environ.get("XDG_CACHE_HOME") or os.path.expanduser("~/.cache")
    return os.path.join(cache_home, "repro-tuning.json")


#: wire-format version of :class:`RecordEnvelope`.
_ENVELOPE_VERSION = 1


@dataclasses.dataclass(frozen=True)
class RecordEnvelope:
    """Serializable wrapper for one record travelling between processes.

    The streaming worker pool exchanges records over multiprocessing queues;
    the envelope pins the wire format (a plain JSON-native dict, so it works
    over any transport) and carries provenance: ``origin`` is the sending
    shard index (``-1`` = the parent) and ``revision`` the sender database's
    revision when the record was captured.  :meth:`from_wire` validates
    strictly and raises :class:`TuningDatabaseError` on anything malformed —
    a poisoned envelope must never reach :meth:`TuningDatabase.put`, where a
    NaN time would corrupt every later keep-better comparison.
    """

    record: TuningRecord
    origin: int = -1
    revision: int = 0

    def to_wire(self) -> Dict[str, object]:
        return {
            "v": _ENVELOPE_VERSION,
            "origin": self.origin,
            "revision": self.revision,
            "record": self.record.to_dict(),
        }

    @classmethod
    def from_wire(cls, payload: object) -> "RecordEnvelope":
        if not isinstance(payload, dict):
            raise TuningDatabaseError(
                f"record envelope must be a dict, got {type(payload).__name__}"
            )
        if payload.get("v") != _ENVELOPE_VERSION:
            raise TuningDatabaseError(
                f"unsupported record-envelope version {payload.get('v')!r}"
            )
        try:
            origin = int(payload["origin"])
            revision = int(payload["revision"])
            record = TuningRecord.from_dict(payload["record"])
        except TuningDatabaseError:
            raise
        except Exception as exc:
            raise TuningDatabaseError(f"malformed record envelope: {exc}") from exc
        if not math.isfinite(record.time_seconds) or record.time_seconds <= 0:
            raise TuningDatabaseError(
                f"record envelope carries invalid time {record.time_seconds!r}"
            )
        if not math.isfinite(record.gflops) or record.gflops < 0:
            raise TuningDatabaseError(
                f"record envelope carries invalid gflops {record.gflops!r}"
            )
        return cls(record=record, origin=origin, revision=revision)


class TuningDatabase:
    """Keep-better record map over a pluggable :class:`RecordStore` backend.

    ``hits``/``misses`` count :meth:`lookup` outcomes so callers (tests, the
    model runner) can verify that repeated layers reuse tuning work instead
    of re-measuring.

    The façade holds no state of its own beyond the hit/miss counters: the
    record map, revision counter and change log live in the backend, whose
    internal lock makes every write safe to share between a
    :class:`~repro.service.TuningService` driver thread and submitting
    threads.  Reads (:meth:`lookup`, :meth:`contains`) go through the
    backend's lock-free read-copy hot tier, so serving never contends with
    writers.  :meth:`apply` is the single documented write path for record
    batches; :meth:`put` is its one-record primitive.
    """

    def __init__(
        self,
        records: Iterable[TuningRecord] = (),
        path: Optional[Union[str, os.PathLike]] = None,
        store: Optional[RecordStore] = None,
    ) -> None:
        if store is not None and path is not None:
            raise ValueError("pass either a store or a path, not both")
        #: the persistence/serving backend; defaults to the whole-file JSON
        #: map for compatibility with every existing call site.
        self._store = store if store is not None else JsonMapStore(path=path)
        #: where :meth:`save` persists when called without a path (the
        #: backend's location; assignable for the legacy load()/default()
        #: contract).
        self.path = self._store.path
        self._hits = Counter("db.serve_hits")
        self._misses = Counter("db.serve_misses")
        # Telemetry mirrors (null no-ops until attach_metrics binds real
        # ones); the database sits in the REPRO601 no-wall-clock scope, so
        # only counts and levels are recorded.
        self._m_puts = NULL_COUNTER
        self._m_puts_effective = NULL_COUNTER
        self._m_serve_hits = NULL_COUNTER
        self._m_serve_misses = NULL_COUNTER
        self._m_revision = NULL_GAUGE
        for record in records:
            self.put(record)

    @property
    def store(self) -> RecordStore:
        """The backend this façade coordinates (read-only)."""
        return self._store

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    def attach_metrics(self, metrics) -> None:
        """Bind database telemetry to a metrics scope (see ``repro.obs``).

        Records ``puts_total`` vs ``puts_effective`` (keep-better inserts
        that actually changed a slot), ``serve_hits``/``serve_misses``
        (lookup outcomes) and the ``revision`` growth gauge, and wires the
        backend under the nested ``store`` scope (``db.store.*``: appends,
        compactions, recoveries — see :meth:`RecordStore.attach_metrics`).
        Observability never alters database state: instruments are written
        on the same code paths that already mutate the map, nothing more.
        """
        self._m_puts = metrics.counter("puts_total")
        self._m_puts_effective = metrics.counter("puts_effective")
        self._m_serve_hits = metrics.counter("serve_hits")
        self._m_serve_misses = metrics.counter("serve_misses")
        self._m_revision = metrics.gauge("revision")
        self._store.attach_metrics(metrics.scope("store"))

    # -- construction at the edges --------------------------------------- #
    @classmethod
    def default(cls) -> "TuningDatabase":
        """Open the default on-disk database (see :func:`default_database_path`).

        Loads the file when it exists, otherwise starts empty; either way the
        returned database remembers the location, so a bare :meth:`save`
        persists back to it.

        Error handling depends on who chose the location.  When
        ``$REPRO_TUNING_DB`` names the path, the caller asked for *that*
        database — an unreadable, truncated or unwritable file raises
        :class:`TuningDatabaseError` instead of silently starting empty (the
        old behaviour quietly discarded the user's records and then
        overwrote the file on the next save).  The implicit cache-directory
        default stays lenient: a corrupt cache entry is treated as empty and
        the next save rewrites it atomically.
        """
        path = default_database_path()
        # reprolint: disable=REPRO602 - same config-time read as default_database_path
        explicit = bool(os.environ.get(DATABASE_ENV_VAR))
        if os.path.exists(path):
            try:
                db = cls.open(path)
                db.path = path
            except (OSError, ValueError, KeyError, TypeError, AttributeError) as exc:
                if explicit:
                    raise TuningDatabaseError(
                        f"${DATABASE_ENV_VAR} points at {path!r} but it cannot be "
                        f"loaded ({exc}); fix or remove the file rather than "
                        "letting tuning silently restart from an empty database"
                    ) from exc
                # Implicit cache path: unreadable, bad version, or
                # structurally invalid payload all start empty.
                return cls(path=path)
            if explicit and not os.access(path, os.W_OK):
                raise TuningDatabaseError(
                    f"${DATABASE_ENV_VAR} points at {path!r} which is not "
                    "writable; tuning results could never be persisted back"
                )
            return db
        if explicit:
            # The file does not exist yet: probe the nearest existing
            # ancestor (save() creates the missing directories under it).
            # An unwritable or non-directory ancestor means the database
            # could never be saved — fail now, not after a full tuning run.
            probe = os.path.dirname(os.path.abspath(path))
            while not os.path.exists(probe):
                parent = os.path.dirname(probe)
                if parent == probe:  # pragma: no cover - filesystem root
                    break
                probe = parent
            if not os.path.isdir(probe) or not os.access(probe, os.W_OK):
                raise TuningDatabaseError(
                    f"${DATABASE_ENV_VAR} points at {path!r} but "
                    f"{probe!r} is not a writable directory; the database "
                    "could never be saved"
                )
        return cls(path=path)

    @classmethod
    def open(cls, path: Union[str, os.PathLike]) -> "TuningDatabase":
        """Open an on-disk database of either backend format.

        Sniffs the file: an append-only log (first line is a
        ``kind: "log"`` header, or a ``.snap`` sibling exists) opens as a
        recovered :class:`LogStore`; anything else goes through the
        whole-file map reader (:meth:`load`).  Use this at edges that
        accept a user-supplied path; use the constructors directly when
        the backend is known.
        """
        name = os.fspath(path)
        if cls._sniff_log(name):
            return cls(store=LogStore(name))
        return cls.load(name)

    @staticmethod
    def _sniff_log(name: str) -> bool:
        if os.path.exists(name + ".snap"):
            return True
        if not os.path.exists(name):
            return False
        try:
            with open(name, "r", encoding="utf-8") as fh:
                first = fh.readline()
            header = json.loads(first)
        except (OSError, ValueError):
            return False
        return isinstance(header, dict) and header.get("kind") == "log"

    # -- core map ------------------------------------------------------- #
    def __len__(self) -> int:
        return len(self._store)

    def records(self) -> List[TuningRecord]:
        return self._store.scan()

    def put(self, record: TuningRecord) -> TuningRecord:
        """Insert a record; the faster one wins among same-conditions records.

        Times measured under different executor conditions are not
        comparable, so each conditions set keeps its own record.  Exact time
        ties break deterministically on the configuration key, so merging a
        record set yields the same survivors in any order.  The surviving
        record of a same-conditions collision inherits the larger budget of
        the two: a configuration that beats the outcome of a more thorough
        search also satisfies requests at that search's budget.  This is
        the one-record primitive behind :meth:`apply`, the documented write
        path for record batches."""
        self._m_puts.inc()
        winner, effective = self._store.append(record)
        if effective:
            self._m_puts_effective.inc()
            self._m_revision.set(self._store.revision)
        return winner

    @property
    def revision(self) -> int:
        """Monotonic change counter (see :meth:`changes_since`)."""
        return self._store.revision

    def changes_since(self, revision: int) -> List[TuningRecord]:
        """Records whose slot changed after ``revision``, oldest change first.

        ``db.changes_since(checkpoint)`` with a ``checkpoint`` captured from
        :attr:`revision` is an incremental diff: applying the returned
        records to a replica that already saw ``checkpoint`` brings it up to
        date (keep-better apply is idempotent and order-independent, so
        over-delivery is always safe).
        """
        return self._store.changes_since(revision)

    def apply(
        self,
        records: Union["TuningDatabase", Iterable[TuningRecord]],
    ) -> List[TuningRecord]:
        """Keep-better fold of ``records``; returns the surviving changes.

        **The** write path for record batches (and the streaming pool's
        sync primitive): accepts a record iterable or a whole
        :class:`TuningDatabase`, lands each record via :meth:`put`
        (monotonic — an incoming record can only improve a slot, never
        regress it), and returns the records that actually changed the
        database (the winners, post budget-upgrade).  Callers use the
        return value for accounting and to decide what to re-broadcast; an
        empty list means the database already knew everything the batch
        carried.
        """
        if isinstance(records, TuningDatabase):
            records = records.records()
        applied: List[TuningRecord] = []
        for record in records:
            self._m_puts.inc()
            winner, effective = self._store.append(record)
            if effective:
                self._m_puts_effective.inc()
                applied.append(winner)
        if applied:
            self._m_revision.set(self._store.revision)
        return applied

    def lookup(
        self,
        params: ConvParams,
        spec: Union[GPUSpec, str],
        algorithm: str,
        budget: int = 0,
        noise: Optional[float] = None,
        noise_seed: Optional[int] = None,
    ) -> Optional[TuningRecord]:
        """Find the record for a triple, if it covers the caller's request.

        Two validity checks, each skipped when either side is unknown:

        * **budget** — a record produced with a smaller measurement budget
          than the caller is asking for does not count as a hit; the caller's
          more thorough search should run (and upgrade the record).
        * **measurement conditions** — a record measured under different
          executor noise/seed does not count as a hit; its time would not be
          reproducible by the caller's measurer.  Records of unknown
          conditions serve any caller; a caller with unknown conditions is
          served the fastest record on file.

        Runs entirely on the backend's lock-free read-copy hot tier, so a
        million lookups a second never stall behind a writer."""
        bucket = self._store.serve((_params_key(params), _gpu_name(spec), algorithm))
        if noise is None:
            candidates = list(bucket.values())
        else:
            candidates = [
                r
                for cond, r in bucket.items()
                if cond == (noise, noise_seed) or cond == (None, None)
            ]
        candidates = [
            r for r in candidates if not (budget and r.budget and r.budget < budget)
        ]
        if not candidates:
            self._misses.inc()
            self._m_serve_misses.inc()
            return None
        self._hits.inc()
        self._m_serve_hits.inc()
        return min(candidates, key=lambda r: r.time_seconds)

    def contains(
        self, params: ConvParams, spec: Union[GPUSpec, str], algorithm: str
    ) -> bool:
        """Membership probe that does not touch the hit/miss counters."""
        return bool(self._store.serve((_params_key(params), _gpu_name(spec), algorithm)))

    # -- persistence ---------------------------------------------------- #
    def save(self, path: Optional[Union[str, os.PathLike]] = None) -> str:
        """Persist durably; returns the path written.

        Without a path, asks the backend for a full snapshot at its own
        location (atomic whole-file rewrite for :class:`JsonMapStore`,
        fsync'd snapshot + log reset for :class:`LogStore`).  With an
        explicit ``path``, exports the live record set as a portable
        whole-file JSON map regardless of backend — the interchange format
        every build can read.
        """
        if path is None:
            target = self._store.snapshot()
            if target is None:
                if self.path is None:
                    raise ValueError(
                        "no path given and the database has no default path"
                    )
                return write_map_file(self.path, self.records())
            return target
        return write_map_file(path, self.records())

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "TuningDatabase":
        """Load a saved whole-file JSON map; ``OSError`` for I/O trouble,
        :class:`TuningDatabaseError` for truncated/corrupt/incompatible
        content — including a file written by a newer store format, which
        is rejected naming that format version.  See :meth:`open` for
        format sniffing that also accepts append-only logs."""
        db = cls(read_map_file(path))
        db.path = os.fspath(path)
        db._store.path = db.path
        return db

    def close(self) -> None:
        """Release backend resources (log file handles); idempotent."""
        self._store.close()

    # -- introspection --------------------------------------------------- #
    def describe(self) -> Dict[str, object]:
        """JSON-native status snapshot (serve it over the wire, or render
        with :func:`repro.obs.format_describe` for humans)."""
        return {
            "kind": "TuningDatabase",
            "records": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "revision": self.revision,
            "store": self._store.describe(),
        }
