"""Persistent tuning database: share tuned configurations across layers/runs.

Networks repeat convolution shapes heavily (every ResNet stage re-uses the
same 3x3 layer many times, and ResNet-18/34 share most shapes outright), and
the paper's tuner spends essentially all of its time measuring batches of
configurations.  The :class:`TuningDatabase` removes the repeated work: the
best configuration found for a ``(ConvParams, GPUSpec, algorithm)`` triple is
recorded once and every later tuning request for the same triple — in the
same process or after a JSON save/load round trip — is answered from the
database instead of re-running the search.

The :class:`~repro.core.autotune.engine.AutoTuningEngine` consults an attached
database at the start of :meth:`~repro.core.autotune.engine.AutoTuningEngine.tune`
and stores its result when finished; the end-to-end model runner
(:class:`~repro.nets.runner.ModelRunner`) attaches one database across all
layers of all models it times.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import tempfile
import threading
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ...conv.tensor import ConvParams, Layout
from ...gpusim.spec import GPUSpec
from ...obs.metrics import NULL_COUNTER, NULL_GAUGE
from .config import Configuration
from .engine import TrialRecord, TuningResult

__all__ = [
    "RecordEnvelope",
    "TuningDatabase",
    "TuningDatabaseError",
    "TuningRecord",
    "default_database_path",
]


class TuningDatabaseError(ValueError):
    """A tuning-database file or wire payload is unusable.

    Subclasses :class:`ValueError` so existing callers catching ``ValueError``
    around :meth:`TuningDatabase.load` keep working; raised with a message
    naming the offending path/payload so misconfiguration (a truncated
    ``$REPRO_TUNING_DB`` file, a poisoned sync-queue envelope) fails loudly
    instead of silently starting empty.
    """

_FORMAT_VERSION = 1

#: retained change-log tail; the log compacts once it reaches twice this.
_CHANGE_LOG_CAP = 4096

#: environment variable overriding the default on-disk database location.
DATABASE_ENV_VAR = "REPRO_TUNING_DB"


def default_database_path() -> str:
    """The default on-disk database location.

    ``$REPRO_TUNING_DB`` when set, otherwise ``~/.cache/repro-tuning.json``
    (honouring ``$XDG_CACHE_HOME``).
    """
    # reprolint: disable=REPRO602 - documented config-time path resolution
    override = os.environ.get(DATABASE_ENV_VAR)
    if override:
        return os.path.expanduser(override)
    # reprolint: disable=REPRO602 - XDG convention, resolved once at open time
    cache_home = os.environ.get("XDG_CACHE_HOME") or os.path.expanduser("~/.cache")
    return os.path.join(cache_home, "repro-tuning.json")


def _gpu_name(spec: Union[GPUSpec, str]) -> str:
    return spec.name if isinstance(spec, GPUSpec) else str(spec)


def _params_key(params: ConvParams) -> Tuple:
    return (
        params.in_height,
        params.in_width,
        params.in_channels,
        params.out_channels,
        params.ker_height,
        params.ker_width,
        params.stride,
        params.padding,
        params.batch,
        params.layout.value,
    )


def _params_to_dict(params: ConvParams) -> Dict[str, object]:
    d = dataclasses.asdict(params)
    d["layout"] = params.layout.value
    return d


def _params_from_dict(d: Dict[str, object]) -> ConvParams:
    d = dict(d)
    d["layout"] = Layout(d["layout"])
    return ConvParams(**d)


@dataclasses.dataclass(frozen=True)
class TuningRecord:
    """Best known implementation of one convolution problem on one GPU."""

    params: ConvParams
    gpu: str
    algorithm: str
    config: Configuration
    time_seconds: float
    gflops: float
    tuner: str = "ate"
    num_measurements: int = 0  # measurements spent producing this record
    space_size: int = 0
    #: measurement budget of the producing run; 0 = unknown.  The engine only
    #: serves a cached record to requests with an equal-or-smaller budget, so
    #: a quick low-budget record never pins down a thorough later search.
    budget: int = 0
    #: measurement conditions (GPUExecutor noise amplitude and seed) of the
    #: producing run; None = unknown.  Lookups from a measurer with different
    #: conditions are misses — their times would not be comparable.
    noise: Optional[float] = None
    noise_seed: Optional[int] = None

    def key(self) -> Tuple:
        """Problem identity: the ``(params, gpu, algorithm)`` triple."""
        return (_params_key(self.params), self.gpu, self.algorithm)

    def conditions(self) -> Tuple:
        """Measurement-conditions identity; records measured under different
        conditions coexist under the same problem key."""
        return (self.noise, self.noise_seed)

    def as_result(self) -> TuningResult:
        """Reconstitute a (single-trial) :class:`TuningResult` for callers
        that expect the tuner interface.

        The synthesized result contains exactly one trial (the recorded
        best), so its ``num_measurements`` is 1 and its convergence curve is
        a single point — neither the zero measurements the cache hit cost
        nor the ``self.num_measurements`` the original search spent.
        Consumers aggregating measurement counts or convergence speed must
        branch on ``from_cache`` (set True here) and read this record's
        ``num_measurements`` for the original cost."""
        result = TuningResult(
            tuner=self.tuner,
            params=self.params,
            gpu=self.gpu,
            space_size=self.space_size,
            from_cache=True,
        )
        result.trials.append(
            TrialRecord(
                index=0,
                config=self.config,
                time_seconds=self.time_seconds,
                gflops=self.gflops,
            )
        )
        return result

    def to_dict(self) -> Dict[str, object]:
        return {
            "params": _params_to_dict(self.params),
            "gpu": self.gpu,
            "algorithm": self.algorithm,
            "config": self.config.as_dict(),
            "time_seconds": self.time_seconds,
            "gflops": self.gflops,
            "tuner": self.tuner,
            "num_measurements": self.num_measurements,
            "space_size": self.space_size,
            "budget": self.budget,
            "noise": self.noise,
            "noise_seed": self.noise_seed,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "TuningRecord":
        return cls(
            params=_params_from_dict(d["params"]),
            gpu=str(d["gpu"]),
            algorithm=str(d["algorithm"]),
            config=Configuration(**d["config"]),
            time_seconds=float(d["time_seconds"]),
            gflops=float(d["gflops"]),
            tuner=str(d.get("tuner", "ate")),
            num_measurements=int(d.get("num_measurements", 0)),
            space_size=int(d.get("space_size", 0)),
            budget=int(d.get("budget", 0)),
            noise=None if d.get("noise") is None else float(d["noise"]),
            noise_seed=None if d.get("noise_seed") is None else int(d["noise_seed"]),
        )


#: wire-format version of :class:`RecordEnvelope`.
_ENVELOPE_VERSION = 1


@dataclasses.dataclass(frozen=True)
class RecordEnvelope:
    """Serializable wrapper for one record travelling between processes.

    The streaming worker pool exchanges records over multiprocessing queues;
    the envelope pins the wire format (a plain JSON-native dict, so it works
    over any transport) and carries provenance: ``origin`` is the sending
    shard index (``-1`` = the parent) and ``revision`` the sender database's
    revision when the record was captured.  :meth:`from_wire` validates
    strictly and raises :class:`TuningDatabaseError` on anything malformed —
    a poisoned envelope must never reach :meth:`TuningDatabase.put`, where a
    NaN time would corrupt every later keep-better comparison.
    """

    record: TuningRecord
    origin: int = -1
    revision: int = 0

    def to_wire(self) -> Dict[str, object]:
        return {
            "v": _ENVELOPE_VERSION,
            "origin": self.origin,
            "revision": self.revision,
            "record": self.record.to_dict(),
        }

    @classmethod
    def from_wire(cls, payload: object) -> "RecordEnvelope":
        if not isinstance(payload, dict):
            raise TuningDatabaseError(
                f"record envelope must be a dict, got {type(payload).__name__}"
            )
        if payload.get("v") != _ENVELOPE_VERSION:
            raise TuningDatabaseError(
                f"unsupported record-envelope version {payload.get('v')!r}"
            )
        try:
            origin = int(payload["origin"])
            revision = int(payload["revision"])
            record = TuningRecord.from_dict(payload["record"])
        except TuningDatabaseError:
            raise
        except Exception as exc:
            raise TuningDatabaseError(f"malformed record envelope: {exc}") from exc
        if not math.isfinite(record.time_seconds) or record.time_seconds <= 0:
            raise TuningDatabaseError(
                f"record envelope carries invalid time {record.time_seconds!r}"
            )
        if not math.isfinite(record.gflops) or record.gflops < 0:
            raise TuningDatabaseError(
                f"record envelope carries invalid gflops {record.gflops!r}"
            )
        return cls(record=record, origin=origin, revision=revision)


class TuningDatabase:
    """In-memory map of tuning records with JSON persistence.

    ``hits``/``misses`` count :meth:`lookup` outcomes so callers (tests, the
    model runner) can verify that repeated layers reuse tuning work instead
    of re-measuring.

    The map is protected by an internal re-entrant lock, so a database can be
    shared between a :class:`~repro.service.TuningService` driver thread and
    submitting threads; :meth:`save` writes atomically (temp file +
    ``os.replace``), so a crash mid-save never corrupts an existing file.
    """

    def __init__(
        self,
        records: Iterable[TuningRecord] = (),
        path: Optional[Union[str, os.PathLike]] = None,
    ) -> None:
        #: problem key -> {measurement conditions -> record}; records for the
        #: same problem measured under different conditions coexist, so two
        #: runners with different executors never evict each other's entries.
        self._records: Dict[Tuple, Dict[Tuple, TuningRecord]] = {}
        #: monotonic change counter: bumped once per *effective* put (an
        #: insert, a faster record, or a budget upgrade; a losing or equal
        #: record leaves it untouched).  ``_change_log`` appends the changed
        #: (problem, conditions) slot per bump, so :meth:`changes_since` can
        #: stream exactly the records that moved by slicing the tail — the
        #: primitive the worker pool's cross-shard exchange is built on —
        #: without rescanning the whole map every scheduling round.  The log
        #: is compacted once it doubles ``_CHANGE_LOG_CAP`` (``_log_base``
        #: tracks the revision of its first retained entry); a checkpoint
        #: older than the retained tail falls back to over-delivering the
        #: whole map, which keep-better apply makes safe.
        self._revision = 0
        self._log_base = 0
        self._change_log: List[Tuple[Tuple, Tuple]] = []
        self._lock = threading.RLock()
        #: where :meth:`save` persists when called without a path (set by
        #: :meth:`default` / :meth:`load`, or explicitly).
        self.path = os.fspath(path) if path is not None else None
        self.hits = 0
        self.misses = 0
        # Telemetry mirrors (null no-ops until attach_metrics binds real
        # ones); the database sits in the REPRO601 no-wall-clock scope, so
        # only counts and levels are recorded.
        self._m_puts = NULL_COUNTER
        self._m_puts_effective = NULL_COUNTER
        self._m_serve_hits = NULL_COUNTER
        self._m_serve_misses = NULL_COUNTER
        self._m_revision = NULL_GAUGE
        for record in records:
            self.put(record)

    def attach_metrics(self, metrics) -> None:
        """Bind database telemetry to a metrics scope (see ``repro.obs``).

        Records ``puts_total`` vs ``puts_effective`` (keep-better inserts
        that actually changed a slot), ``serve_hits``/``serve_misses``
        (lookup outcomes) and the ``revision`` growth gauge.  Observability
        never alters database state: instruments are written on the same
        code paths that already mutate the map, nothing more.
        """
        with self._lock:
            self._m_puts = metrics.counter("puts_total")
            self._m_puts_effective = metrics.counter("puts_effective")
            self._m_serve_hits = metrics.counter("serve_hits")
            self._m_serve_misses = metrics.counter("serve_misses")
            self._m_revision = metrics.gauge("revision")

    # -- default on-disk location --------------------------------------- #
    @classmethod
    def default(cls) -> "TuningDatabase":
        """Open the default on-disk database (see :func:`default_database_path`).

        Loads the file when it exists, otherwise starts empty; either way the
        returned database remembers the location, so a bare :meth:`save`
        persists back to it.

        Error handling depends on who chose the location.  When
        ``$REPRO_TUNING_DB`` names the path, the caller asked for *that*
        database — an unreadable, truncated or unwritable file raises
        :class:`TuningDatabaseError` instead of silently starting empty (the
        old behaviour quietly discarded the user's records and then
        overwrote the file on the next save).  The implicit cache-directory
        default stays lenient: a corrupt cache entry is treated as empty and
        the next save rewrites it atomically.
        """
        path = default_database_path()
        # reprolint: disable=REPRO602 - same config-time read as default_database_path
        explicit = bool(os.environ.get(DATABASE_ENV_VAR))
        if os.path.exists(path):
            try:
                db = cls.load(path)
                db.path = path
            except (OSError, ValueError, KeyError, TypeError, AttributeError) as exc:
                if explicit:
                    raise TuningDatabaseError(
                        f"${DATABASE_ENV_VAR} points at {path!r} but it cannot be "
                        f"loaded ({exc}); fix or remove the file rather than "
                        "letting tuning silently restart from an empty database"
                    ) from exc
                # Implicit cache path: unreadable, bad version, or
                # structurally invalid payload all start empty.
                return cls(path=path)
            if explicit and not os.access(path, os.W_OK):
                raise TuningDatabaseError(
                    f"${DATABASE_ENV_VAR} points at {path!r} which is not "
                    "writable; tuning results could never be persisted back"
                )
            return db
        if explicit:
            # The file does not exist yet: probe the nearest existing
            # ancestor (save() creates the missing directories under it).
            # An unwritable or non-directory ancestor means the database
            # could never be saved — fail now, not after a full tuning run.
            probe = os.path.dirname(os.path.abspath(path))
            while not os.path.exists(probe):
                parent = os.path.dirname(probe)
                if parent == probe:  # pragma: no cover - filesystem root
                    break
                probe = parent
            if not os.path.isdir(probe) or not os.access(probe, os.W_OK):
                raise TuningDatabaseError(
                    f"${DATABASE_ENV_VAR} points at {path!r} but "
                    f"{probe!r} is not a writable directory; the database "
                    "could never be saved"
                )
        return cls(path=path)

    # -- core map ------------------------------------------------------- #
    def __len__(self) -> int:
        with self._lock:
            return sum(len(bucket) for bucket in self._records.values())

    def records(self) -> List[TuningRecord]:
        with self._lock:
            return [r for bucket in self._records.values() for r in bucket.values()]

    def put(self, record: TuningRecord) -> TuningRecord:
        """Insert a record; the faster one wins among same-conditions records.

        Times measured under different executor conditions are not
        comparable, so each conditions set keeps its own record.  Exact time
        ties break deterministically on the configuration key, so merging a
        record set yields the same survivors in any order.  The surviving
        record of a same-conditions collision inherits the larger budget of
        the two: a configuration that beats the outcome of a more thorough
        search also satisfies requests at that search's budget."""
        with self._lock:
            self._m_puts.inc()
            bucket = self._records.setdefault(record.key(), {})
            cond = record.conditions()
            existing = bucket.get(cond)
            if existing is None:
                winner = record
            else:
                # Faster time wins; an exact time tie breaks on the config
                # key so the surviving record is a deterministic function of
                # the record *set*, not of arrival order (two shards finding
                # equal-time configs must converge on one winner whatever
                # the queue timing).
                if record.time_seconds < existing.time_seconds or (
                    record.time_seconds == existing.time_seconds
                    and record.config.key() < existing.config.key()
                ):
                    winner = record
                else:
                    winner = existing
                budget = max(record.budget, existing.budget)
                if budget != winner.budget:
                    winner = dataclasses.replace(winner, budget=budget)
            if winner is not existing:
                # Effective change: log it so changes_since() streams it.
                # A losing (or identical) record leaves the revision
                # untouched, which is what keeps record exchange loop-free:
                # re-applying a record the database already holds never
                # re-broadcasts it.
                bucket[cond] = winner
                self._change_log.append((record.key(), cond))
                self._revision += 1
                self._m_puts_effective.inc()
                self._m_revision.set(self._revision)
                if len(self._change_log) >= 2 * _CHANGE_LOG_CAP:
                    # Amortised O(1) compaction keeps a daemon-lifetime
                    # database's log bounded; stale checkpoints fall back
                    # to safe over-delivery in changes_since().
                    del self._change_log[:_CHANGE_LOG_CAP]
                    self._log_base += _CHANGE_LOG_CAP
            return bucket[cond]

    @property
    def revision(self) -> int:
        """Monotonic change counter (see :meth:`changes_since`)."""
        with self._lock:
            return self._revision

    def changes_since(self, revision: int) -> List[TuningRecord]:
        """Records whose slot changed after ``revision``, oldest change first.

        ``db.changes_since(checkpoint)`` with a ``checkpoint`` captured from
        :attr:`revision` is an incremental diff: applying the returned
        records to a replica that already saw ``checkpoint`` brings it up to
        date (keep-better apply is idempotent and order-independent, so
        over-delivery is always safe).
        """
        with self._lock:
            if revision < self._log_base:
                # The checkpoint predates the retained log tail (compacted
                # away): over-deliver everything — idempotent keep-better
                # apply makes that merely redundant, never wrong.
                return self.records()
            seen: set = set()
            changed: List[TuningRecord] = []
            for slot in self._change_log[max(revision - self._log_base, 0):]:
                if slot not in seen:
                    seen.add(slot)
                    key, cond = slot
                    changed.append(self._records[key][cond])
            return changed

    def apply(self, records: Iterable[TuningRecord]) -> List[TuningRecord]:
        """Keep-better fold of ``records``; returns the surviving changes.

        The streaming pool's sync primitive: each record lands via
        :meth:`put` (monotonic — an incoming record can only improve a slot,
        never regress it), and the returned list holds the records that
        actually changed the database (the winners, post budget-upgrade).
        Callers use the return value for accounting and to decide what to
        re-broadcast; an empty list means the database already knew
        everything the batch carried.
        """
        applied: List[TuningRecord] = []
        with self._lock:
            for record in records:
                before = self._revision
                kept = self.put(record)
                if self._revision != before:
                    applied.append(kept)
        return applied

    def lookup(
        self,
        params: ConvParams,
        spec: Union[GPUSpec, str],
        algorithm: str,
        budget: int = 0,
        noise: Optional[float] = None,
        noise_seed: Optional[int] = None,
    ) -> Optional[TuningRecord]:
        """Find the record for a triple, if it covers the caller's request.

        Two validity checks, each skipped when either side is unknown:

        * **budget** — a record produced with a smaller measurement budget
          than the caller is asking for does not count as a hit; the caller's
          more thorough search should run (and upgrade the record).
        * **measurement conditions** — a record measured under different
          executor noise/seed does not count as a hit; its time would not be
          reproducible by the caller's measurer.  Records of unknown
          conditions serve any caller; a caller with unknown conditions is
          served the fastest record on file."""
        with self._lock:
            bucket = self._records.get(
                (_params_key(params), _gpu_name(spec), algorithm), {}
            )
            if noise is None:
                candidates = list(bucket.values())
            else:
                candidates = [
                    r
                    for cond, r in bucket.items()
                    if cond == (noise, noise_seed) or cond == (None, None)
                ]
            candidates = [
                r for r in candidates if not (budget and r.budget and r.budget < budget)
            ]
            if not candidates:
                self.misses += 1
                self._m_serve_misses.inc()
                return None
            self.hits += 1
            self._m_serve_hits.inc()
            return min(candidates, key=lambda r: r.time_seconds)

    def contains(
        self, params: ConvParams, spec: Union[GPUSpec, str], algorithm: str
    ) -> bool:
        """Membership probe that does not touch the hit/miss counters."""
        with self._lock:
            return (_params_key(params), _gpu_name(spec), algorithm) in self._records

    def add_result(
        self,
        result: TuningResult,
        budget: int = 0,
        noise: Optional[float] = None,
        noise_seed: Optional[int] = None,
    ) -> TuningRecord:
        """Record the best trial of a finished tuning run.

        ``budget`` is the measurement budget the run was allowed (its
        ``max_measurements``), which may exceed ``result.num_measurements``
        when the run stopped early on patience; ``noise``/``noise_seed`` are
        the measurement conditions of the run's executor."""
        best = result.best_trial
        return self.put(
            TuningRecord(
                params=result.params,
                gpu=result.gpu,
                algorithm=best.config.algorithm,
                config=best.config,
                time_seconds=best.time_seconds,
                gflops=best.gflops,
                tuner=result.tuner,
                num_measurements=result.num_measurements,
                space_size=result.space_size,
                budget=budget,
                noise=noise,
                noise_seed=noise_seed,
            )
        )

    def merge(
        self, other: Union["TuningDatabase", Iterable[TuningRecord]]
    ) -> "TuningDatabase":
        """Fold another database (or a bare record iterable) into this one.

        Collisions resolve through :meth:`put` — per (problem, conditions)
        the better (faster, larger-covered-budget) record survives — which is
        what makes the worker pool's merge of independently tuned shard
        databases safe: no worker's result can regress another's.
        """
        records = other.records() if isinstance(other, TuningDatabase) else other
        self.apply(records)
        return self

    # -- persistence ---------------------------------------------------- #
    def save(self, path: Optional[Union[str, os.PathLike]] = None) -> str:
        """Atomically persist to ``path`` (default: :attr:`path`).

        The payload is written to a temporary sibling file and moved into
        place with ``os.replace``, so readers never observe a half-written
        database and a crash mid-save leaves any previous file intact.
        Parent directories are created as needed.  Returns the path written.
        """
        target = os.fspath(path) if path is not None else self.path
        if target is None:
            raise ValueError("no path given and the database has no default path")
        payload = {
            "version": _FORMAT_VERSION,
            "records": [r.to_dict() for r in self.records()],
        }
        directory = os.path.dirname(os.path.abspath(target))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(target) + ".", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
            os.replace(tmp_path, target)
        except BaseException:
            # The half-written temp file must not survive a failed save.
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return target

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "TuningDatabase":
        """Load a saved database; ``OSError`` for I/O trouble,
        :class:`TuningDatabaseError` for truncated/corrupt/incompatible
        content (with the offending path in the message)."""
        with open(path, "r", encoding="utf-8") as fh:
            try:
                payload = json.load(fh)
            except ValueError as exc:  # includes json.JSONDecodeError
                raise TuningDatabaseError(
                    f"{os.fspath(path)!r} is not valid JSON (truncated save or "
                    f"foreign file?): {exc}"
                ) from exc
        if not isinstance(payload, dict):
            raise TuningDatabaseError(
                f"{os.fspath(path)!r} does not hold a tuning database "
                f"(top level is {type(payload).__name__}, expected an object)"
            )
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise TuningDatabaseError(
                f"{os.fspath(path)!r}: unsupported tuning-database version {version!r}"
            )
        try:
            db = cls(TuningRecord.from_dict(d) for d in payload.get("records", []))
        except TuningDatabaseError:
            raise
        except Exception as exc:
            raise TuningDatabaseError(
                f"{os.fspath(path)!r} holds malformed tuning records: {exc}"
            ) from exc
        db.path = os.fspath(path)
        return db

    def describe(self) -> str:
        with self._lock:
            # Snapshot under the lock: size and both counters must come from
            # the same moment, and the counter reads themselves race lookup()
            # writers otherwise (flagged by reprolint REPRO201).
            return (
                f"TuningDatabase[{len(self)} records, "
                f"{self.hits} hits / {self.misses} misses]"
            )
