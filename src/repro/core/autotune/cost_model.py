"""Learned cost model: gradient-boosted regression trees from scratch.

The paper (like TVM) trains an XGBoost model on (configuration, runtime)
pairs and uses it to rank unmeasured configurations.  XGBoost is not
available offline, so this module implements the same idea in NumPy:

* :class:`RegressionTree` — a depth-limited CART tree with quantile-candidate
  splits, squared-error criterion and minimum-leaf-size regularisation;
* :class:`GradientBoostedTrees` — stage-wise boosting of those trees on the
  residuals (squared-error gradient boosting) with shrinkage and optional
  feature/row subsampling;
* :class:`CostModel` — the tuner-facing wrapper: it is trained on *negative
  log runtime* (so "bigger is better" for ranking), refuses to predict until
  it has seen a minimum number of samples, and exposes a ranking helper.

The implementation is vectorised: split search evaluates all candidate
thresholds for one feature at once with cumulative sums.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["RegressionTree", "GradientBoostedTrees", "CostModel"]


def _routing_arrays(
    feature: Sequence[int],
    threshold: Sequence[float],
    left: Sequence[int],
    right: Sequence[int],
    value: Sequence[float],
) -> Tuple[np.ndarray, ...]:
    """Flat tree arrays prepared for the level-synchronous descent.

    Leaves become self-loops (``left = right = node`` with a dummy feature
    ``0``), so a fixed number of ``node -> child`` gather steps routes every
    row to its leaf without per-level masking; extra steps past a shallow
    leaf are no-ops.
    """
    feat = np.asarray(feature, dtype=np.intp)
    nodes = np.arange(feat.size, dtype=np.intp)
    leaf = feat < 0
    return (
        np.where(leaf, 0, feat),
        np.asarray(threshold, dtype=np.float64),
        np.where(leaf, nodes, np.asarray(left, dtype=np.intp)),
        np.where(leaf, nodes, np.asarray(right, dtype=np.intp)),
        np.asarray(value, dtype=np.float64),
    )


class RegressionTree:
    """A depth-limited regression tree (CART, squared error)."""

    def __init__(
        self,
        max_depth: int = 4,
        min_samples_leaf: int = 3,
        max_candidate_splits: int = 16,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_candidate_splits = max_candidate_splits
        # Flat arrays describing the tree; node 0 is the root.
        self._feature: List[int] = []
        self._threshold: List[float] = []
        self._left: List[int] = []
        self._right: List[int] = []
        self._value: List[float] = []
        self._arrays: Optional[Tuple[np.ndarray, ...]] = None
        self._depth = 0

    # ------------------------------------------------------------------ #
    def _new_node(self, value: float) -> int:
        self._feature.append(-1)
        self._threshold.append(0.0)
        self._left.append(-1)
        self._right.append(-1)
        self._value.append(value)
        return len(self._value) - 1

    def _best_split(
        self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> Optional[Tuple[int, float, float]]:
        """Return (feature, threshold, gain) of the best split, or None."""
        n, d = x.shape
        if n < 2 * self.min_samples_leaf:
            return None
        base_err = float(np.var(y) * n)
        best: Optional[Tuple[int, float, float]] = None
        for f in range(d):
            col = x[:, f]
            order = np.argsort(col, kind="mergesort")
            sorted_col = col[order]
            sorted_y = y[order]
            # Candidate thresholds at quantiles between distinct values.
            uniques = np.unique(sorted_col)
            if uniques.size < 2:
                continue
            if uniques.size - 1 > self.max_candidate_splits:
                qs = np.linspace(0, uniques.size - 1, self.max_candidate_splits + 1)
                cut_values = uniques[np.unique(qs.astype(int))]
            else:
                cut_values = uniques
            thresholds = (cut_values[:-1] + cut_values[1:]) / 2.0

            csum = np.cumsum(sorted_y)
            csum_sq = np.cumsum(sorted_y**2)
            total = csum[-1]
            total_sq = csum_sq[-1]
            # Position of each threshold: number of samples on the left.
            lefts = np.searchsorted(sorted_col, thresholds, side="right")
            valid = (lefts >= self.min_samples_leaf) & (
                lefts <= n - self.min_samples_leaf
            )
            if not np.any(valid):
                continue
            lefts = lefts[valid]
            thr = thresholds[valid]
            left_sum = csum[lefts - 1]
            left_sq = csum_sq[lefts - 1]
            right_sum = total - left_sum
            right_sq = total_sq - left_sq
            nl = lefts.astype(np.float64)
            nr = n - nl
            err = (left_sq - left_sum**2 / nl) + (right_sq - right_sum**2 / nr)
            idx = int(np.argmin(err))
            gain = base_err - float(err[idx])
            if gain > 1e-12 and (best is None or gain > best[2]):
                best = (f, float(thr[idx]), gain)
        return best

    def _build(
        self, x: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator
    ) -> int:
        node = self._new_node(float(np.mean(y)))
        self._depth = max(self._depth, depth)
        if depth >= self.max_depth:
            return node
        split = self._best_split(x, y, rng)
        if split is None:
            return node
        f, thr, _ = split
        mask = x[:, f] <= thr
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return node
        self._feature[node] = f
        self._threshold[node] = thr
        self._left[node] = self._build(x[mask], y[mask], depth + 1, rng)
        self._right[node] = self._build(x[~mask], y[~mask], depth + 1, rng)
        return node

    # ------------------------------------------------------------------ #
    def fit(self, x: np.ndarray, y: np.ndarray, rng: Optional[np.random.Generator] = None) -> "RegressionTree":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
            raise ValueError("x must be (n, d) and y must be (n,)")
        if x.shape[0] == 0:
            raise ValueError("cannot fit a tree on an empty dataset")
        self._feature, self._threshold = [], []
        self._left, self._right, self._value = [], [], []
        self._arrays = None
        self._depth = 0
        self._build(x, y, depth=0, rng=rng or np.random.default_rng(0))
        self._arrays = _routing_arrays(
            self._feature, self._threshold, self._left, self._right, self._value
        )
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Route all rows through the tree level by level (vectorised).

        Every row takes exactly the branch the scalar walk would take (the
        same ``<=`` comparisons on the same float64 values), so the output is
        bit-identical to a per-row descent while touching each tree level with
        whole-array gathers instead of a Python loop per sample.  Leaves are
        self-looping in the routing arrays (see :func:`_routing_arrays`), so
        the walk simply runs for the tree depth with no per-level masking.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        if not self._value:
            raise RuntimeError("tree is not fitted")
        feature, threshold, left, right, value = self._arrays
        rows = np.arange(x.shape[0])
        node = np.zeros(x.shape[0], dtype=np.intp)
        for _ in range(self._depth):
            node = np.where(
                x[rows, feature[node]] <= threshold[node], left[node], right[node]
            )
        return value[node]

    @property
    def num_nodes(self) -> int:
        return len(self._value)


class GradientBoostedTrees:
    """Squared-error gradient boosting over :class:`RegressionTree`."""

    def __init__(
        self,
        n_estimators: int = 60,
        learning_rate: float = 0.15,
        max_depth: int = 4,
        min_samples_leaf: int = 3,
        subsample: float = 0.9,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not (0.0 < learning_rate <= 1.0):
            raise ValueError("learning_rate must be in (0, 1]")
        if not (0.0 < subsample <= 1.0):
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self._trees: List[RegressionTree] = []
        self._base: float = 0.0
        self._stacked: Optional[Tuple[np.ndarray, ...]] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape[0] != y.shape[0] or x.shape[0] == 0:
            raise ValueError("x and y must be non-empty with matching lengths")
        rng = np.random.default_rng(self.seed)
        self._trees = []
        self._base = float(np.mean(y))
        pred = np.full_like(y, self._base)
        n = x.shape[0]
        for _ in range(self.n_estimators):
            residual = y - pred
            if self.subsample < 1.0 and n > 8:
                idx = rng.choice(n, size=max(4, int(n * self.subsample)), replace=False)
            else:
                idx = np.arange(n)
            tree = RegressionTree(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            ).fit(x[idx], residual[idx], rng)
            update = tree.predict(x)
            pred = pred + self.learning_rate * update
            self._trees.append(tree)
            if float(np.max(np.abs(residual))) < 1e-12:
                break
        self._stack_trees()
        return self

    def _stack_trees(self) -> None:
        """Concatenate all trees' routing arrays into one node pool.

        The ensemble descent then advances *every tree for every row* with a
        single gather per level (``node`` is a ``(trees, rows)`` matrix of
        pool indices), instead of one Python-level predict call per tree.
        """
        offsets = np.cumsum([0] + [t.num_nodes for t in self._trees][:-1])
        feat, thr, left, right, value = (
            np.concatenate(cols)
            for cols in zip(*(t._arrays for t in self._trees))
        )
        pool = np.concatenate(
            [np.full(t.num_nodes, off, dtype=np.intp) for t, off in zip(self._trees, offsets)]
        )
        # Children interleaved per node (child[2k] = left, child[2k+1] =
        # right, rebased into the pool): one gather routes a level.
        child = np.empty(2 * feat.size, dtype=np.intp)
        child[0::2] = left + pool
        child[1::2] = right + pool
        self._stacked = (
            feat,
            thr,
            child,
            value,
            np.asarray(offsets, dtype=np.intp),
            max(t._depth for t in self._trees),
        )
        self._row_base: Optional[np.ndarray] = None  # cached per input shape
        self._row_base_shape: Optional[Tuple[int, int]] = None

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Ensemble prediction, bit-identical to summing per-tree predicts.

        All trees descend together on the stacked node pool (one fancy-indexed
        gather per level); the leaf values are then accumulated tree by tree
        in boosting order, exactly like the unstacked loop, so the float
        addition order — and hence the result — is unchanged.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        if not self._trees:
            raise RuntimeError("model is not fitted")
        feat, thr, child, value, roots, depth = self._stacked
        n = x.shape[0]
        x_flat = np.ascontiguousarray(x).reshape(-1)
        # Flat (trees * rows) node vector; row r of every tree reads features
        # from x_flat[r * d + feature].  The row offsets only depend on the
        # input shape, so they are cached across same-shaped predicts.
        if self._row_base is None or self._row_base_shape != x.shape:
            self._row_base = np.tile(
                np.arange(0, n * x.shape[1], x.shape[1]), roots.size
            )
            self._row_base_shape = x.shape
        row_base = self._row_base
        node = np.repeat(roots, n)
        for _ in range(depth):
            go_right = x_flat[row_base + feat[node]] > thr[node]
            node = child[node * 2 + go_right]
        leaf_values = value[node].reshape(roots.size, n)
        pred = np.full(n, self._base, dtype=np.float64)
        for t in range(roots.size):
            pred += self.learning_rate * leaf_values[t]
        return pred

    @property
    def num_trees(self) -> int:
        return len(self._trees)


@dataclass
class CostModel:
    """Tuner-facing cost model trained on measured configurations.

    The target is ``-log(runtime)`` so that larger scores mean faster
    configurations; :meth:`rank` sorts candidate feature rows by predicted
    score (descending).  Until ``min_samples`` measurements are available the
    model reports itself as untrained and the explorer falls back to random
    exploration, matching the paper's cold-start behaviour.
    """

    min_samples: int = 8
    n_estimators: int = 60
    learning_rate: float = 0.15
    max_depth: int = 4
    seed: int = 0
    _model: Optional[GradientBoostedTrees] = field(default=None, repr=False)
    _num_samples: int = 0

    @property
    def is_trained(self) -> bool:
        return self._model is not None

    @property
    def num_samples(self) -> int:
        return self._num_samples

    def fit(self, features: np.ndarray, runtimes: Sequence[float]) -> bool:
        """Train on measured runtimes (seconds).  Returns True if trained."""
        runtimes = np.asarray(list(runtimes), dtype=np.float64)
        features = np.asarray(features, dtype=np.float64)
        if features.shape[0] != runtimes.shape[0]:
            raise ValueError("features and runtimes must have the same length")
        finite = np.isfinite(runtimes) & (runtimes > 0)
        features, runtimes = features[finite], runtimes[finite]
        self._num_samples = int(features.shape[0])
        if self._num_samples < self.min_samples:
            self._model = None
            return False
        target = -np.log(runtimes)
        self._model = GradientBoostedTrees(
            n_estimators=self.n_estimators,
            learning_rate=self.learning_rate,
            max_depth=self.max_depth,
            seed=self.seed,
        ).fit(features, target)
        return True

    def predict_score(self, features: np.ndarray) -> np.ndarray:
        """Predicted ``-log(runtime)`` (higher is better)."""
        if not self.is_trained:
            raise RuntimeError("cost model is not trained yet")
        return self._model.predict(np.asarray(features, dtype=np.float64))

    def predict_runtime(self, features: np.ndarray) -> np.ndarray:
        """Predicted runtime in seconds."""
        return np.exp(-self.predict_score(features))

    def rank(self, features: np.ndarray) -> np.ndarray:
        """Indices of candidate rows sorted from best to worst predicted."""
        scores = self.predict_score(features)
        return np.argsort(-scores, kind="mergesort")
