"""Tuning configurations (Section 6.1, Table 1).

A *configuration* is one concrete low-level implementation of a dataflow
template: the output tile ``(x, y, z)``, the per-axis thread counts
``(Nxt, Nyt, Nzt)``, the data layout, the shared memory allocated to each
thread block, and — for the Winograd template — the output tile extent ``e``.

:func:`build_profile` lowers a configuration to a
:class:`~repro.gpusim.kernels.KernelProfile` so the GPU simulator can
"measure" it; :class:`Measurer` wraps that in the interface the tuners use.

Measurement runs in two modes:

* scalar — :meth:`Measurer.measure` lowers and executes one configuration
  (the lowered profile is cached so a feasibility probe never lowers twice);
* batched — :meth:`Measurer.measure_batch` lowers a whole tuner batch with
  :func:`lower_batch` (NumPy array arithmetic, no per-configuration profile
  objects) and executes it through
  :meth:`~repro.gpusim.executor.GPUExecutor.run_batch`.  Results are
  bit-identical to the scalar path, including the deterministic noise term.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...conv.tensor import ConvParams, Layout
from ...conv.winograd import winograd_flops
from ...gpusim.executor import ExecutionResult, GPUExecutor
from ...gpusim.kernels import (
    _LAYOUT_COALESCING,
    DATAFLOW_COMPUTE_EFF,
    DIRECT_KERNEL_NAME,
    KernelProfile,
    ProfileBatch,
    direct_dataflow_profile,
    winograd_dataflow_profile,
    winograd_kernel_name,
)
from ...gpusim.spec import GPUSpec
from ...obs.metrics import BATCH_SIZE_BOUNDS, NULL_COUNTER, NULL_HISTOGRAM
from ..dataflow.common import OutputTile

__all__ = [
    "Configuration",
    "ConfigArray",
    "build_profile",
    "lower_batch",
    "PendingBatch",
    "Measurer",
]

#: low-level knob gains shared by the scalar and the vectorised lowering.
_UNROLL_GAIN = {1: 0.88, 2: 0.96, 4: 1.0, 8: 0.94}
_CONTIGUOUS_AXIS = {Layout.CHW: "x", Layout.CWH: "y", Layout.HWC: "z"}
#: final coalescing per (layout, loop-order-ends-on-contiguous-axis), built
#: with the exact scalar expression so both paths agree bit-for-bit.
_COALESCING_LUT = {
    (layout, ends): min(1.0, _LAYOUT_COALESCING[layout] * (1.0 if ends else 0.85))
    for layout in Layout.all()
    for ends in (True, False)
}


@dataclasses.dataclass(frozen=True)
class Configuration:
    """One point of the configuration space."""

    algorithm: str  # "direct" or "winograd"
    tile_x: int
    tile_y: int
    tile_z: int
    threads_x: int
    threads_y: int
    threads_z: int
    layout: Layout = Layout.CHW
    smem_per_block: int = 48 * 1024  # bytes (S_b in Table 1)
    e: int = 2  # Winograd output tile extent; ignored for "direct"
    unroll: int = 4  # inner-loop unroll factor
    loop_order: str = "zyx"  # traversal order of the tile loops

    #: loop orders explored by the low-level template (innermost axis last).
    LOOP_ORDERS = ("zyx", "zxy", "yxz", "yzx", "xyz", "xzy")
    #: unroll factors explored by the low-level template.
    UNROLL_FACTORS = (1, 2, 4, 8)

    def __post_init__(self) -> None:
        if self.algorithm not in ("direct", "winograd"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        for name in ("tile_x", "tile_y", "tile_z", "threads_x", "threads_y", "threads_z"):
            v = getattr(self, name)
            if not isinstance(v, int) or v <= 0:
                raise ValueError(f"{name} must be a positive integer, got {v!r}")
        if self.smem_per_block <= 0:
            raise ValueError("smem_per_block must be positive")
        if self.e < 1:
            raise ValueError("e must be >= 1")
        if self.unroll not in self.UNROLL_FACTORS:
            raise ValueError(f"unroll must be one of {self.UNROLL_FACTORS}")
        if self.loop_order not in self.LOOP_ORDERS:
            raise ValueError(f"loop_order must be one of {self.LOOP_ORDERS}")
        if not isinstance(self.layout, Layout):
            object.__setattr__(self, "layout", Layout(self.layout))

    # ------------------------------------------------------------------ #
    @property
    def tile(self) -> OutputTile:
        return OutputTile(x=self.tile_x, y=self.tile_y, z=self.tile_z)

    @property
    def threads_per_block(self) -> int:
        return self.threads_x * self.threads_y * self.threads_z

    def smem_elements(self, dtype_size: int = 4) -> int:
        return self.smem_per_block // dtype_size

    def key(self) -> Tuple:
        """Hashable identity used for dataset de-duplication."""
        return (
            self.algorithm,
            self.tile_x,
            self.tile_y,
            self.tile_z,
            self.threads_x,
            self.threads_y,
            self.threads_z,
            self.layout.value,
            self.smem_per_block,
            self.e,
            self.unroll,
            self.loop_order,
        )

    def as_dict(self) -> Dict[str, object]:
        # Shallow field copy: every field is a scalar (layout normalised
        # below), and dataclasses.asdict's recursive deep copy dominates
        # record serialisation on the log-store append path.
        d = dict(self.__dict__)
        d["layout"] = self.layout.value
        return d

    def describe(self) -> str:
        base = (
            f"{self.algorithm}[tile={self.tile_x}x{self.tile_y}x{self.tile_z}, "
            f"threads={self.threads_x}x{self.threads_y}x{self.threads_z}, "
            f"layout={self.layout.value}, smem={self.smem_per_block // 1024}KiB"
        )
        if self.algorithm == "winograd":
            base += f", e={self.e}"
        return base + "]"


#: code tables shared by every structure-of-arrays consumer.  The codes are
#: positions in the canonical option tuples, so ``ConfigArray`` round-trips
#: ``Configuration`` lists losslessly (property-tested).
ALGORITHMS: Tuple[str, ...] = ("direct", "winograd")
_ALGO_CODE = {name: i for i, name in enumerate(ALGORITHMS)}
_LAYOUTS: Tuple[Layout, ...] = Layout.all()
_LAYOUT_CODE = {layout: i for i, layout in enumerate(_LAYOUTS)}
_ORDER_CODE = {order: i for i, order in enumerate(Configuration.LOOP_ORDERS)}
#: order_contiguous[layout_code, order_code] — does the loop order end on the
#: layout's contiguous axis?  (Same predicate as the scalar lowering.)
ORDER_CONTIGUOUS = np.array(
    [
        [order.endswith(_CONTIGUOUS_AXIS[layout]) for order in Configuration.LOOP_ORDERS]
        for layout in _LAYOUTS
    ],
    dtype=bool,
)


@dataclasses.dataclass
class ConfigArray:
    """Structure-of-arrays view of a batch of :class:`Configuration` values.

    The search-side twin of :class:`~repro.gpusim.kernels.ProfileBatch`: one
    int64 column per knob, with the categorical knobs (algorithm, layout,
    loop order) stored as codes into the canonical option tuples
    (:data:`ALGORITHMS`, ``Layout.all()``, ``Configuration.LOOP_ORDERS``).
    The vectorised search hot path — :meth:`SearchSpace.sample_batch`,
    :meth:`SearchSpace.neighbor_batch`, the column-wise
    :func:`~repro.core.autotune.features.feature_matrix` and the lock-step
    explorer — operates on whole columns; :meth:`to_configs` /
    :meth:`from_configs` round-trip losslessly, so the array representation
    never changes *what* is searched, only how fast the batch is processed.
    """

    algo: np.ndarray  # codes into ALGORITHMS
    tile_x: np.ndarray
    tile_y: np.ndarray
    tile_z: np.ndarray
    threads_x: np.ndarray
    threads_y: np.ndarray
    threads_z: np.ndarray
    layout: np.ndarray  # codes into Layout.all()
    smem_per_block: np.ndarray
    e: np.ndarray
    unroll: np.ndarray
    order: np.ndarray  # codes into Configuration.LOOP_ORDERS

    #: column names, in Configuration.key() order.
    FIELDS = (
        "algo",
        "tile_x",
        "tile_y",
        "tile_z",
        "threads_x",
        "threads_y",
        "threads_z",
        "layout",
        "smem_per_block",
        "e",
        "unroll",
        "order",
    )

    def __post_init__(self) -> None:
        n = None
        for name in self.FIELDS:
            col = np.ascontiguousarray(getattr(self, name), dtype=np.int64)
            if col.ndim != 1:
                raise ValueError(f"column {name} must be one-dimensional")
            if n is None:
                n = col.shape[0]
            elif col.shape[0] != n:
                raise ValueError("all columns must have the same length")
            setattr(self, name, col)

    # ------------------------------------------------------------------ #
    @classmethod
    def _raw(cls, columns: Dict[str, np.ndarray]) -> "ConfigArray":
        """Internal constructor for columns already known to be valid int64
        arrays of equal length (skips ``__post_init__`` normalisation — the
        hot-path row operations below build thousands of arrays per walk)."""
        self = object.__new__(cls)
        for name in cls.FIELDS:
            object.__setattr__(self, name, columns[name])
        return self

    def __len__(self) -> int:
        return self.algo.shape[0]

    @property
    def threads_per_block(self) -> np.ndarray:
        return self.threads_x * self.threads_y * self.threads_z

    @classmethod
    def from_configs(cls, configs: Sequence[Configuration]) -> "ConfigArray":
        """Pack a list of configurations into columns (lossless)."""
        n = len(configs)
        cols = {name: np.empty(n, dtype=np.int64) for name in cls.FIELDS}
        for i, c in enumerate(configs):
            cols["algo"][i] = _ALGO_CODE[c.algorithm]
            cols["tile_x"][i] = c.tile_x
            cols["tile_y"][i] = c.tile_y
            cols["tile_z"][i] = c.tile_z
            cols["threads_x"][i] = c.threads_x
            cols["threads_y"][i] = c.threads_y
            cols["threads_z"][i] = c.threads_z
            cols["layout"][i] = _LAYOUT_CODE[c.layout]
            cols["smem_per_block"][i] = c.smem_per_block
            cols["e"][i] = c.e
            cols["unroll"][i] = c.unroll
            cols["order"][i] = _ORDER_CODE[c.loop_order]
        return cls(**cols)

    @classmethod
    def filled(cls, n: int, algorithm: str) -> "ConfigArray":
        """An ``n``-row array of placeholder rows for one algorithm (the rows
        are overwritten column-wise by the vectorised samplers)."""
        cols = {name: np.ones(n, dtype=np.int64) for name in cls.FIELDS}
        cols["algo"] = np.full(n, _ALGO_CODE[algorithm], dtype=np.int64)
        return cls(**cols)

    @classmethod
    def concat(cls, arrays: Sequence["ConfigArray"]) -> "ConfigArray":
        if len(arrays) == 1:
            return arrays[0]
        return cls._raw(
            {
                name: np.concatenate([getattr(a, name) for a in arrays])
                for name in cls.FIELDS
            }
        )

    def take(self, indices) -> "ConfigArray":
        """Row subset (index array or boolean mask)."""
        indices = np.asarray(indices)
        if indices.dtype == bool:
            indices = np.flatnonzero(indices)
        return self._raw({name: getattr(self, name)[indices] for name in self.FIELDS})

    def copy(self) -> "ConfigArray":
        return self._raw({name: getattr(self, name).copy() for name in self.FIELDS})

    def where(self, mask: np.ndarray, other: "ConfigArray") -> "ConfigArray":
        """Rows from ``other`` where ``mask`` holds, else from ``self``."""
        return self._raw(
            {
                name: np.where(mask, getattr(other, name), getattr(self, name))
                for name in self.FIELDS
            }
        )

    def key_matrix(self) -> np.ndarray:
        """An ``(n, 12)`` int64 matrix whose rows identify configurations.

        The row is an injective recoding of :meth:`Configuration.key` (the
        categorical knobs appear as their codes), so row-level deduplication
        over the matrix — e.g. ``np.unique(..., axis=0)`` in the vectorised
        explorer — agrees exactly with key-based deduplication.
        """
        return np.stack([getattr(self, name) for name in self.FIELDS], axis=1)

    def config_at(self, i: int) -> Configuration:
        """Materialise row ``i`` as a :class:`Configuration`."""
        return Configuration(
            algorithm=ALGORITHMS[self.algo[i]],
            tile_x=int(self.tile_x[i]),
            tile_y=int(self.tile_y[i]),
            tile_z=int(self.tile_z[i]),
            threads_x=int(self.threads_x[i]),
            threads_y=int(self.threads_y[i]),
            threads_z=int(self.threads_z[i]),
            layout=_LAYOUTS[self.layout[i]],
            smem_per_block=int(self.smem_per_block[i]),
            e=int(self.e[i]),
            unroll=int(self.unroll[i]),
            loop_order=Configuration.LOOP_ORDERS[self.order[i]],
        )

    def to_configs(self) -> List[Configuration]:
        return [self.config_at(i) for i in range(len(self))]


def build_profile(
    config: Configuration, params: ConvParams, spec: GPUSpec
) -> KernelProfile:
    """Lower a configuration to a kernel profile on a given GPU.

    Raises ``ValueError`` if the configuration is infeasible on the device
    (too much shared memory per block, too many threads, Winograd requested
    for an incompatible problem).
    """
    if config.smem_per_block > spec.shared_mem_per_sm:
        raise ValueError(
            f"configuration requests {config.smem_per_block} B shared memory; "
            f"{spec.name} offers {spec.shared_mem_per_sm} B per SM"
        )
    if config.threads_per_block > spec.max_threads_per_block:
        raise ValueError(
            f"{config.threads_per_block} threads per block exceeds the device limit "
            f"{spec.max_threads_per_block}"
        )
    if config.algorithm == "winograd":
        if not params.winograd_compatible():
            raise ValueError("Winograd configuration for a non-Winograd problem")
        profile = winograd_dataflow_profile(
            params,
            config.tile,
            e=config.e,
            dtype_size=spec.dtype_size,
            threads_per_block=config.threads_per_block,
            layout=config.layout,
        )
    else:
        profile = direct_dataflow_profile(
            params,
            config.tile,
            dtype_size=spec.dtype_size,
            threads_per_block=config.threads_per_block,
            layout=config.layout,
        )
    # The schedule may only use the shared memory the configuration allocates;
    # a block whose working set exceeds S_b is infeasible.
    if profile.smem_per_block > config.smem_per_block:
        raise ValueError(
            f"working set {profile.smem_per_block} B exceeds the configured "
            f"shared memory {config.smem_per_block} B"
        )

    # Low-level knobs: unrolling trades register pressure against loop
    # overhead; the loop traversal order decides whether consecutive threads
    # touch consecutive addresses of the innermost (layout-dependent) axis.
    unroll_gain = _UNROLL_GAIN[config.unroll]
    contiguous_axis = _CONTIGUOUS_AXIS[config.layout]
    order_gain = 1.0 if config.loop_order.endswith(contiguous_axis) else 0.85
    compute_eff = min(1.0, profile.compute_efficiency * unroll_gain)
    coalescing = min(1.0, profile.coalescing * order_gain)
    return profile.with_(
        smem_per_block=config.smem_per_block,
        compute_efficiency=compute_eff,
        coalescing=coalescing,
    )


def _io_may_overflow_int64(params: ConvParams) -> bool:
    """Whether the vectorised I/O products could exceed int64.

    A conservative bound on the largest product formed below, (number of
    blocks) x (per-block input/weight elements): blocks never exceed the
    output-element count, the per-block halo is at most ``(k+s)`` per tile
    axis unit, and the 2^59 threshold leaves an 8x margin for ceil-division
    slack.  Within int64 range the vectorised integers are exact and convert
    to float64 with the same rounding as the scalar Python ints."""
    p = params
    max_blocks = p.out_width * p.out_height * p.out_channels * p.batch
    per_block = max(
        (p.ker_width + p.stride) * (p.ker_height + p.stride), p.ker_height * p.ker_width
    ) * p.in_channels
    return max_blocks * per_block >= 2**59


def _lower_scalar_into(
    config: Configuration,
    i: int,
    params: ConvParams,
    spec: GPUSpec,
    feasible: np.ndarray,
    flops: np.ndarray,
    dram: np.ndarray,
    threads: np.ndarray,
    blocks: np.ndarray,
    eff: np.ndarray,
    coal: np.ndarray,
    names: List[str],
) -> None:
    """Scalar-lowering fallback: fill row ``i`` of the batch arrays from
    :func:`build_profile` (bit-identical by construction)."""
    try:
        profile = build_profile(config, params, spec)
    except ValueError:
        return
    if (
        profile.threads_per_block > spec.max_threads_per_block
        or profile.threads_per_block > spec.max_threads_per_sm
    ):
        # The executor would reject the launch (same rule as the vectorised
        # feasibility mask): infeasible, not a batch-wide error.
        return
    feasible[i] = True
    flops[i] = profile.flops
    dram[i] = profile.dram_bytes
    threads[i] = profile.threads_per_block
    blocks[i] = profile.num_blocks
    eff[i] = profile.compute_efficiency
    coal[i] = profile.coalescing
    names[i] = profile.name


def lower_batch(
    configs: Sequence[Configuration], params: ConvParams, spec: GPUSpec
) -> Tuple[np.ndarray, ProfileBatch]:
    """Vectorised :func:`build_profile` over a whole batch of configurations.

    Returns ``(feasible, batch)`` where ``feasible`` is a boolean mask over
    ``configs`` (exactly the configurations for which :func:`build_profile`
    would succeed) and ``batch`` is the :class:`ProfileBatch` of the feasible
    configurations, in input order.  All quantities are computed with the same
    arithmetic as the scalar lowering, so executing the batch reproduces the
    scalar measurements bit-for-bit.
    """
    n = len(configs)
    feasible = np.zeros(n, dtype=bool)
    flops = np.zeros(n, dtype=np.float64)
    dram = np.zeros(n, dtype=np.float64)
    threads = np.zeros(n, dtype=np.int64)
    blocks = np.zeros(n, dtype=np.int64)
    eff = np.zeros(n, dtype=np.float64)
    coal = np.zeros(n, dtype=np.float64)
    names: List[str] = [""] * n

    p = params
    smem_cfg = np.fromiter((c.smem_per_block for c in configs), np.int64, n)
    layout_values = [c.layout.value for c in configs]

    # Group by (algorithm, e): within a group the FLOP count and kernel name
    # are constants and every other quantity vectorises over the tile knobs.
    groups: Dict[Tuple[str, int], List[int]] = {}
    for i, c in enumerate(configs):
        groups.setdefault((c.algorithm, c.e if c.algorithm == "winograd" else 0), []).append(i)

    for (algorithm, e), idx_list in groups.items():
        if algorithm == "winograd" and not p.winograd_compatible():
            continue  # the whole group is infeasible, exactly as build_profile raises
        idx = np.asarray(idx_list, dtype=np.intp)
        group = [configs[i] for i in idx_list]
        if _io_may_overflow_int64(p):
            # Astronomically large problems would wrap the int64 I/O products
            # below (the scalar path uses unbounded Python ints); lower those
            # through the scalar constructors instead of producing garbage.
            for i in idx_list:
                _lower_scalar_into(
                    configs[i], i, p, spec,
                    feasible, flops, dram, threads, blocks, eff, coal, names,
                )
            continue
        m = len(group)
        knobs = np.array(
            [
                (c.tile_x, c.tile_y, c.tile_z, c.threads_x * c.threads_y * c.threads_z)
                for c in group
            ],
            dtype=np.int64,
        )
        tx, ty, tz, treq = knobs[:, 0], knobs[:, 1], knobs[:, 2], knobs[:, 3]

        # What follows is the vectorised counterpart of the scalar lowering:
        # tile clipping / block grid / smem from the profile constructors in
        # repro.gpusim.kernels, I/O volumes from repro.core.dataflow.direct
        # and .winograd (Eq. 20/22). Any edit there must be mirrored here —
        # the bit-identity property tests in tests/test_batched_measurement.py
        # enforce the contract.
        x = np.minimum(tx, p.out_width)
        y = np.minimum(ty, p.out_height)
        z = np.minimum(tz, p.out_channels)
        blocks_g = (
            -(-p.out_width // x) * -(-p.out_height // y) * -(-p.out_channels // z)
        ) * p.batch

        if algorithm == "winograd":
            r = p.ker_height
            t = e + r - 1
            halo = (x + r - 1) * (y + r - 1)
            input_reads = blocks_g * halo * p.in_channels
            weight_reads = blocks_g * z * r * r * p.in_channels
            overhead = 2.0 * t * t / (e * e)
            temp_elems = np.ceil(overhead * (x * y * z)).astype(np.int64)
            smem_elems = temp_elems + halo + z * r * r
            flops_const = float(winograd_flops(p, e=e))
            name = winograd_kernel_name(e)
            base_eff = DATAFLOW_COMPUTE_EFF["winograd"]
        else:
            foot = ((x - 1) * p.stride + p.ker_width) * ((y - 1) * p.stride + p.ker_height)
            input_reads = blocks_g * (foot * p.in_channels)
            weight_reads = blocks_g * (p.ker_height * p.ker_width * p.in_channels * z)
            smem_elems = x * y * z + foot + p.ker_height * p.ker_width * z
            flops_const = float(p.flops)
            name = DIRECT_KERNEL_NAME
            base_eff = DATAFLOW_COMPUTE_EFF["direct"]

        # IOVolume.total evaluates ((input + weight) + output) + extra.
        total = (
            input_reads.astype(np.float64)
            + weight_reads.astype(np.float64)
            + float(p.output_elements)
            + 0.0
        )
        profile_smem = smem_elems * spec.dtype_size

        smem_g = smem_cfg[idx]
        threads_g = np.maximum(32, np.minimum(1024, treq))
        ok = (
            (smem_g <= spec.shared_mem_per_sm)
            & (treq <= spec.max_threads_per_block)
            & (profile_smem <= smem_g)
            # The clamped launch must also fit the device, or the executor
            # rejects it (threads above the per-block or per-SM limits);
            # such configurations are infeasible, not batch-wide errors.
            & (threads_g <= spec.max_threads_per_block)
            & (threads_g <= spec.max_threads_per_sm)
        )
        eff_lut = {u: min(1.0, base_eff * g) for u, g in _UNROLL_GAIN.items()}

        feasible[idx] = ok
        flops[idx] = flops_const
        dram[idx] = total * spec.dtype_size
        threads[idx] = threads_g
        blocks[idx] = blocks_g
        eff[idx] = np.fromiter((eff_lut[c.unroll] for c in group), np.float64, m)
        coal[idx] = np.fromiter(
            (
                _COALESCING_LUT[c.layout, c.loop_order.endswith(_CONTIGUOUS_AXIS[c.layout])]
                for c in group
            ),
            np.float64,
            m,
        )
        for i in idx_list:
            names[i] = name

    sel = np.flatnonzero(feasible)
    batch = ProfileBatch(
        names=[names[i] for i in sel],
        flops=flops[sel],
        dram_bytes=dram[sel],
        smem_per_block=smem_cfg[sel],
        threads_per_block=threads[sel],
        num_blocks=blocks[sel],
        coalescing=coal[sel],
        compute_efficiency=eff[sel],
        layout_values=[layout_values[i] for i in sel],
    )
    return feasible, batch


@dataclasses.dataclass
class PendingBatch:
    """A lowered-but-not-yet-executed slice of a :meth:`Measurer.measure_batch`.

    Produced by :meth:`Measurer.prepare_batch` and consumed by
    :meth:`Measurer.finish_batch`; ``batch`` holds the feasible uncached
    configurations in input order (the work an executor must run), while
    ``results`` already carries the cache hits.
    """

    #: per-input-config results; cache hits prefilled, the rest ``None``.
    results: List[Optional[ExecutionResult]]
    #: configuration key -> input indices awaiting that key's execution.
    pending: Dict[Tuple, List[int]]
    #: keys of the uncached configurations, in lowering order.
    pending_keys: List[Tuple]
    #: feasibility mask over ``pending_keys`` (from :func:`lower_batch`).
    feasible: np.ndarray
    #: the lowered feasible configurations, ready for the executor.
    batch: ProfileBatch

    def __len__(self) -> int:
        """Number of configurations the executor must run."""
        return len(self.batch)


class Measurer:
    """Measurement harness: run configurations on the simulated GPU.

    Plays the role of the paper's template manager + hardware measurements.
    Results are memoised because the simulator is deterministic for a given
    configuration (it models the *averaged* runtime of repeated runs); a
    configuration found infeasible is memoised as ``None`` so feasibility
    probes and measurements never lower the same configuration twice.
    """

    def __init__(self, params: ConvParams, spec: GPUSpec, noise: float = 0.05, seed: int = 2021):
        self.params = params
        self.spec = spec
        self.executor = GPUExecutor(spec, noise=noise, seed=seed)
        #: key -> ExecutionResult, or None for configurations that failed to lower.
        self._cache: Dict[Tuple, Optional[ExecutionResult]] = {}
        self.num_measurements = 0
        # Telemetry mirrors (null no-ops until attach_metrics binds real
        # ones); REPRO601 scope, so only counts/sizes are recorded.
        self._m_measurements = NULL_COUNTER
        self._m_batch_size = NULL_HISTOGRAM

    def attach_metrics(self, metrics) -> None:
        """Bind measurement telemetry to a metrics scope (see ``repro.obs``).

        Records ``measurements`` (simulator executions) and ``batch_size``
        (configs per prepared batch), and forwards an ``executor`` sub-scope
        to :meth:`~repro.gpusim.executor.GPUExecutor.attach_metrics`.
        """
        self._m_measurements = metrics.counter("measurements")
        self._m_batch_size = metrics.histogram("batch_size", BATCH_SIZE_BOUNDS)
        self.executor.attach_metrics(metrics.scope("executor"))

    # -- scalar path --------------------------------------------------- #
    def _measure_uncached(self, config: Configuration) -> Optional[ExecutionResult]:
        try:
            profile = build_profile(config, self.params, self.spec)
            # The executor applies its own launch limits (e.g. more threads
            # per block than an SM can keep resident); a rejected launch is
            # an infeasible configuration, same as a failed lowering.
            execution = self.executor.run(profile)
        except ValueError:
            return None
        self.num_measurements += 1
        self._m_measurements.inc()
        return execution

    def try_measure(self, config: Configuration) -> Optional[ExecutionResult]:
        """Measure a configuration, or return ``None`` if it is infeasible.

        The single lowering produced here serves both the feasibility check
        and the measurement (previously each accepted measurement lowered the
        configuration twice, once in ``is_feasible`` and once in ``measure``).
        """
        key = config.key()
        if key not in self._cache:
            self._cache[key] = self._measure_uncached(config)
        return self._cache[key]

    def is_feasible(self, config: Configuration) -> bool:
        return self.try_measure(config) is not None

    def measure(self, config: Configuration) -> ExecutionResult:
        """Simulated execution of the configuration (memoised)."""
        execution = self.try_measure(config)
        if execution is None:
            raise ValueError(f"infeasible configuration {config.describe()}")
        return execution

    # -- batched path -------------------------------------------------- #
    def prepare_batch(self, configs: Sequence[Configuration]) -> "PendingBatch":
        """Lower a batch without executing it (the front half of
        :meth:`measure_batch`).

        Cache hits and duplicate keys are resolved immediately; the
        not-yet-measured configurations are lowered with :func:`lower_batch`
        into ``PendingBatch.batch``, ready to be executed — possibly packed
        together with pending batches of *other* measurers via
        :meth:`~repro.gpusim.executor.GPUExecutor.run_batch_groups` — and
        handed back to :meth:`finish_batch`.
        """
        self._m_batch_size.observe(len(configs))
        results: List[Optional[ExecutionResult]] = [None] * len(configs)
        pending: Dict[Tuple, List[int]] = {}
        pending_configs: List[Configuration] = []
        pending_keys: List[Tuple] = []
        for i, config in enumerate(configs):
            key = config.key()
            if key in self._cache:
                results[i] = self._cache[key]
            elif key in pending:
                pending[key].append(i)
            else:
                pending[key] = [i]
                pending_configs.append(config)
                pending_keys.append(key)
        feasible, batch = lower_batch(pending_configs, self.params, self.spec)
        return PendingBatch(results, pending, pending_keys, feasible, batch)

    def finish_batch(
        self, prepared: "PendingBatch", executions: Sequence[ExecutionResult]
    ) -> List[Optional[ExecutionResult]]:
        """Record the executor results of a prepared batch (the back half of
        :meth:`measure_batch`).

        ``executions`` must be the executor's results for exactly
        ``prepared.batch`` (one entry per feasible lowered configuration, in
        order); the measurement cache and counter are updated exactly as the
        one-call path does.
        """
        it = iter(executions)
        for key, ok in zip(prepared.pending_keys, prepared.feasible.tolist()):
            execution = next(it) if ok else None
            if execution is not None:
                self.num_measurements += 1
                self._m_measurements.inc()
            self._cache[key] = execution
            for i in prepared.pending[key]:
                prepared.results[i] = execution
        return prepared.results

    def measure_batch(
        self, configs: Sequence[Configuration]
    ) -> List[Optional[ExecutionResult]]:
        """Measure a whole batch at once; ``None`` marks infeasible entries.

        Uncached configurations are lowered with :func:`lower_batch` and
        executed through the vectorised
        :meth:`~repro.gpusim.executor.GPUExecutor.run_batch`, producing
        results bit-identical to the scalar path (same noise term included).
        The call is ``prepare_batch`` + ``run_batch`` + ``finish_batch``;
        callers that want to pack several measurers' work into one executor
        call use the two halves directly.
        """
        prepared = self.prepare_batch(configs)
        executions = (
            self.executor.run_batch(prepared.batch) if len(prepared.batch) else ()
        )
        return self.finish_batch(prepared, executions)

    def time_seconds(self, config: Configuration) -> float:
        return self.measure(config).time_seconds

    def gflops(self, config: Configuration) -> float:
        return self.measure(config).achieved_gflops
