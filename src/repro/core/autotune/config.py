"""Tuning configurations (Section 6.1, Table 1).

A *configuration* is one concrete low-level implementation of a dataflow
template: the output tile ``(x, y, z)``, the per-axis thread counts
``(Nxt, Nyt, Nzt)``, the data layout, the shared memory allocated to each
thread block, and — for the Winograd template — the output tile extent ``e``.

:func:`build_profile` lowers a configuration to a
:class:`~repro.gpusim.kernels.KernelProfile` so the GPU simulator can
"measure" it; :class:`Measurer` wraps that in the interface the tuners use.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Tuple

from ...conv.tensor import ConvParams, Layout
from ...gpusim.executor import ExecutionResult, GPUExecutor
from ...gpusim.kernels import (
    KernelProfile,
    direct_dataflow_profile,
    winograd_dataflow_profile,
)
from ...gpusim.spec import GPUSpec
from ..dataflow.common import OutputTile

__all__ = ["Configuration", "build_profile", "Measurer"]


@dataclasses.dataclass(frozen=True)
class Configuration:
    """One point of the configuration space."""

    algorithm: str  # "direct" or "winograd"
    tile_x: int
    tile_y: int
    tile_z: int
    threads_x: int
    threads_y: int
    threads_z: int
    layout: Layout = Layout.CHW
    smem_per_block: int = 48 * 1024  # bytes (S_b in Table 1)
    e: int = 2  # Winograd output tile extent; ignored for "direct"
    unroll: int = 4  # inner-loop unroll factor
    loop_order: str = "zyx"  # traversal order of the tile loops

    #: loop orders explored by the low-level template (innermost axis last).
    LOOP_ORDERS = ("zyx", "zxy", "yxz", "yzx", "xyz", "xzy")
    #: unroll factors explored by the low-level template.
    UNROLL_FACTORS = (1, 2, 4, 8)

    def __post_init__(self) -> None:
        if self.algorithm not in ("direct", "winograd"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        for name in ("tile_x", "tile_y", "tile_z", "threads_x", "threads_y", "threads_z"):
            v = getattr(self, name)
            if not isinstance(v, int) or v <= 0:
                raise ValueError(f"{name} must be a positive integer, got {v!r}")
        if self.smem_per_block <= 0:
            raise ValueError("smem_per_block must be positive")
        if self.e < 1:
            raise ValueError("e must be >= 1")
        if self.unroll not in self.UNROLL_FACTORS:
            raise ValueError(f"unroll must be one of {self.UNROLL_FACTORS}")
        if self.loop_order not in self.LOOP_ORDERS:
            raise ValueError(f"loop_order must be one of {self.LOOP_ORDERS}")
        if not isinstance(self.layout, Layout):
            object.__setattr__(self, "layout", Layout(self.layout))

    # ------------------------------------------------------------------ #
    @property
    def tile(self) -> OutputTile:
        return OutputTile(x=self.tile_x, y=self.tile_y, z=self.tile_z)

    @property
    def threads_per_block(self) -> int:
        return self.threads_x * self.threads_y * self.threads_z

    def smem_elements(self, dtype_size: int = 4) -> int:
        return self.smem_per_block // dtype_size

    def key(self) -> Tuple:
        """Hashable identity used for dataset de-duplication."""
        return (
            self.algorithm,
            self.tile_x,
            self.tile_y,
            self.tile_z,
            self.threads_x,
            self.threads_y,
            self.threads_z,
            self.layout.value,
            self.smem_per_block,
            self.e,
            self.unroll,
            self.loop_order,
        )

    def as_dict(self) -> Dict[str, object]:
        d = dataclasses.asdict(self)
        d["layout"] = self.layout.value
        return d

    def describe(self) -> str:
        base = (
            f"{self.algorithm}[tile={self.tile_x}x{self.tile_y}x{self.tile_z}, "
            f"threads={self.threads_x}x{self.threads_y}x{self.threads_z}, "
            f"layout={self.layout.value}, smem={self.smem_per_block // 1024}KiB"
        )
        if self.algorithm == "winograd":
            base += f", e={self.e}"
        return base + "]"


def build_profile(
    config: Configuration, params: ConvParams, spec: GPUSpec
) -> KernelProfile:
    """Lower a configuration to a kernel profile on a given GPU.

    Raises ``ValueError`` if the configuration is infeasible on the device
    (too much shared memory per block, too many threads, Winograd requested
    for an incompatible problem).
    """
    if config.smem_per_block > spec.shared_mem_per_sm:
        raise ValueError(
            f"configuration requests {config.smem_per_block} B shared memory; "
            f"{spec.name} offers {spec.shared_mem_per_sm} B per SM"
        )
    if config.threads_per_block > spec.max_threads_per_block:
        raise ValueError(
            f"{config.threads_per_block} threads per block exceeds the device limit "
            f"{spec.max_threads_per_block}"
        )
    if config.algorithm == "winograd":
        if not params.winograd_compatible():
            raise ValueError("Winograd configuration for a non-Winograd problem")
        profile = winograd_dataflow_profile(
            params,
            config.tile,
            e=config.e,
            dtype_size=spec.dtype_size,
            threads_per_block=config.threads_per_block,
            layout=config.layout,
        )
    else:
        profile = direct_dataflow_profile(
            params,
            config.tile,
            dtype_size=spec.dtype_size,
            threads_per_block=config.threads_per_block,
            layout=config.layout,
        )
    # The schedule may only use the shared memory the configuration allocates;
    # a block whose working set exceeds S_b is infeasible.
    if profile.smem_per_block > config.smem_per_block:
        raise ValueError(
            f"working set {profile.smem_per_block} B exceeds the configured "
            f"shared memory {config.smem_per_block} B"
        )

    # Low-level knobs: unrolling trades register pressure against loop
    # overhead; the loop traversal order decides whether consecutive threads
    # touch consecutive addresses of the innermost (layout-dependent) axis.
    unroll_gain = {1: 0.88, 2: 0.96, 4: 1.0, 8: 0.94}[config.unroll]
    contiguous_axis = {Layout.CHW: "x", Layout.CWH: "y", Layout.HWC: "z"}[config.layout]
    order_gain = 1.0 if config.loop_order.endswith(contiguous_axis) else 0.85
    compute_eff = min(1.0, profile.compute_efficiency * unroll_gain)
    coalescing = min(1.0, profile.coalescing * order_gain)
    return profile.with_(
        smem_per_block=config.smem_per_block,
        compute_efficiency=compute_eff,
        coalescing=coalescing,
    )


class Measurer:
    """Measurement harness: run a configuration on the simulated GPU.

    Plays the role of the paper's template manager + hardware measurements.
    Results are memoised because the simulator is deterministic for a given
    configuration (it models the *averaged* runtime of repeated runs).
    """

    def __init__(self, params: ConvParams, spec: GPUSpec, noise: float = 0.05, seed: int = 2021):
        self.params = params
        self.spec = spec
        self.executor = GPUExecutor(spec, noise=noise, seed=seed)
        self._cache: Dict[Tuple, ExecutionResult] = {}
        self.num_measurements = 0

    def is_feasible(self, config: Configuration) -> bool:
        try:
            build_profile(config, self.params, self.spec)
        except ValueError:
            return False
        return True

    def measure(self, config: Configuration) -> ExecutionResult:
        """Simulated execution of the configuration (memoised)."""
        key = config.key()
        if key not in self._cache:
            profile = build_profile(config, self.params, self.spec)
            self._cache[key] = self.executor.run(profile)
            self.num_measurements += 1
        return self._cache[key]

    def time_seconds(self, config: Configuration) -> float:
        return self.measure(config).time_seconds

    def gflops(self, config: Configuration) -> float:
        return self.measure(config).achieved_gflops
