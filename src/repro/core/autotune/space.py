"""Configuration spaces: the TVM-style full space and the pruned ATE domain.

Table 1 of the paper defines the *searching domain* of the auto-tuning
engine: on top of the generic template knobs (tile sizes dividing the output
extents, per-axis thread counts dividing the tile sizes, layout, shared
memory per block, loop order, unrolling) it imposes the constraints derived
from the I/O-optimality condition:

* ``S_b ≤ S_sm / 2``            (at least two resident blocks per SM),
* ``x·y·z ≤ S_b``               (the output tile fits in shared memory),
* ``z ≤ sqrt(S_b / R)``  and  ``x·y ≤ sqrt(S_b · R)``  (from ``x·y = R·z``).

:class:`SearchSpace` with ``pruned=False`` models the unpruned space a
TVM-style tuner explores; ``pruned=True`` applies the constraints above.
Table 2's "Size of Search Space" columns are ``SearchSpace.size()`` of the
two variants.

The space is a **frozen** dataclass: the option tables and the ``size()``
memo are derived from ``params``/``spec``/``algorithm``/``pruned`` once in
``__post_init__``, so mutating those fields afterwards would silently serve
stale tables.  Freezing turns that staleness hazard into an immediate
``FrozenInstanceError``; build a new space instead of mutating one.

Next to the scalar operations (``random_configuration``, ``neighbor``,
``contains``) the space exposes their array-at-a-time twins over
:class:`~repro.core.autotune.config.ConfigArray` columns —
:meth:`SearchSpace.sample_batch`, :meth:`SearchSpace.neighbor_batch`,
:meth:`SearchSpace.contains_batch` and the vectorised feasibility masks
(:meth:`SearchSpace.tile_ok_mask`, :meth:`SearchSpace.thread_ok_mask`) —
which the lock-step explorer uses to advance every walker per NumPy call
instead of per Python call.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from functools import partial
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ...conv.tensor import ConvParams, Layout, divisors
from ...gpusim.spec import GPUSpec
from .config import _ALGO_CODE, ConfigArray, Configuration

__all__ = ["SearchSpace"]


def _thread_options(extent: int, limit: int = 32) -> Tuple[int, ...]:
    """Thread counts along one axis: divisors of the tile extent, capped."""
    return tuple(d for d in divisors(extent) if d <= limit)


#: sentinel padding value for the ragged thread-option tables (larger than any
#: real thread count, so ``table < value`` index arithmetic ignores the pad).
_PAD = np.int64(1 << 40)


def _option_table(tile_opts: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    """Padded per-tile-extent thread options: ``(table, lengths)``.

    Row ``i`` lists ``_thread_options(tile_opts[i])`` padded with ``_PAD``;
    ``lengths[i]`` is the real option count of that row.
    """
    rows = [_thread_options(v) for v in tile_opts]
    width = max(len(r) for r in rows)
    table = np.full((len(rows), width), _PAD, dtype=np.int64)
    for i, r in enumerate(rows):
        table[i, : len(r)] = r
    lengths = np.asarray([len(r) for r in rows], dtype=np.int64)
    return table, lengths


def _member_mask(opts: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Membership of ``values`` in the sorted option array ``opts``."""
    idx = np.minimum(np.searchsorted(opts, values), opts.size - 1)
    return opts[idx] == values


def _adjacent_in_sorted(
    opts: np.ndarray, values: np.ndarray, u: np.ndarray
) -> np.ndarray:
    """Vectorised :meth:`SearchSpace._adjacent` over a sorted option array.

    ``values`` must be members of ``opts``; ``u`` in ``[0, 1)`` picks the step
    direction where both neighbours exist (``u < 0.5`` steps down).
    """
    n = opts.shape[0]
    if n == 1:
        return values.copy()
    idx = np.searchsorted(opts, values)
    step = np.where(u < 0.5, -1, 1)
    step = np.where(idx == 0, 1, step)
    step = np.where(idx == n - 1, -1, step)
    return opts[idx + step]


@dataclass(frozen=True)
class SearchSpace:
    """Enumerable configuration space for one (problem, GPU, algorithm) triple."""

    params: ConvParams
    spec: GPUSpec
    algorithm: str = "direct"
    pruned: bool = False
    e_options: Sequence[int] = (2, 3, 4)
    max_threads_per_block: int = 1024

    def __post_init__(self) -> None:
        if self.algorithm not in ("direct", "winograd"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.algorithm == "winograd" and not self.params.winograd_compatible():
            raise ValueError("Winograd space requested for a non-Winograd problem")
        # The dataclass is frozen (see the module docstring): derived state is
        # written once here via object.__setattr__ and never invalidated.
        set_ = partial(object.__setattr__, self)
        set_("_tile_x_opts", divisors(self.params.out_width))
        set_("_tile_y_opts", divisors(self.params.out_height))
        set_("_tile_z_opts", divisors(self.params.out_channels))
        set_("_layouts", Layout.all())
        set_("_smem_opts", self._shared_memory_options())
        set_(
            "_e_opts",
            tuple(self.e_options) if self.algorithm == "winograd" else (2,),
        )
        set_("_unrolls", Configuration.UNROLL_FACTORS)
        set_("_orders", Configuration.LOOP_ORDERS)
        set_("_size", None)
        # Column tables for the vectorised batch operations.
        set_("_algo_code", _ALGO_CODE[self.algorithm])
        set_("_tile_arrs", tuple(
            np.asarray(opts, dtype=np.int64)
            for opts in (self._tile_x_opts, self._tile_y_opts, self._tile_z_opts)
        ))
        set_("_smem_arr", np.asarray(self._smem_opts, dtype=np.int64))
        set_("_e_arr", np.sort(np.asarray(self._e_opts, dtype=np.int64)))
        set_("_unroll_arr", np.asarray(self._unrolls, dtype=np.int64))
        set_("_thread_tables", tuple(
            _option_table(opts)
            for opts in (self._tile_x_opts, self._tile_y_opts, self._tile_z_opts)
        ))

    # ------------------------------------------------------------------ #
    # Option enumeration
    # ------------------------------------------------------------------ #
    def _shared_memory_options(self) -> Tuple[int, ...]:
        """Candidate shared-memory allocations per block (bytes)."""
        cap = self.spec.shared_mem_per_sm
        if self.pruned:
            cap = cap // 2  # Table 1: S_b <= S_sm / 2
        options = []
        size = 8 * 1024
        while size <= cap:
            options.append(size)
            size *= 2
        if not options:
            options.append(cap)
        return tuple(options)

    def _capacity_per_output(self) -> float:
        """On-chip elements needed per in-flight output element.

        The direct dataflow keeps one partial sum per output; the Winograd
        dataflow keeps the two ``(e+r-1)^2`` temporary arrays per ``e x e``
        output tile (Section 5.3), i.e. ``2(e+r-1)^2/e^2`` elements per output.
        The smallest ``e`` gives the loosest constraint, so the domain uses it.
        """
        if self.algorithm != "winograd":
            return 1.0
        r = self.params.ker_height
        e = min(self._e_opts) if hasattr(self, "_e_opts") and self._e_opts else min(self.e_options)
        t = e + r - 1
        return 2.0 * t * t / (e * e)

    def _tile_ok(self, x: int, y: int, z: int, smem: int) -> bool:
        """Tile-level constraints of Table 1."""
        sb_elements = smem // self.spec.dtype_size
        overhead = self._capacity_per_output()
        if overhead * x * y * z > sb_elements:
            # The resident working set must fit the configured shared memory
            # (for Winograd this includes the temporary-array overhead).
            return False
        if self.pruned:
            r = self.params.reuse_factor
            if z > math.sqrt(sb_elements / r):
                return False
            if x * y > math.sqrt(sb_elements * r):
                return False
        return True

    def _thread_ok(self, tx: int, ty: int, tz: int) -> bool:
        return tx * ty * tz <= min(self.max_threads_per_block, self.spec.max_threads_per_block)

    # ------------------------------------------------------------------ #
    # Size and iteration
    # ------------------------------------------------------------------ #
    def size(self) -> int:
        """Number of configurations in the space (computed exactly).

        The full enumeration is expensive for unpruned spaces, so the count
        is memoised: every tuning run, result record and benchmark that asks
        for the size of the same space pays for the enumeration at most once.
        """
        if self._size is None:
            object.__setattr__(self, "_size", self._compute_size())
        return self._size

    def _compute_size(self) -> int:
        total = 0
        per_layout_order_unroll = len(self._layouts) * len(self._orders) * len(self._unrolls)
        for smem in self._smem_opts:
            for _e in self._e_opts:
                for x in self._tile_x_opts:
                    tx_opts = _thread_options(x)
                    for y in self._tile_y_opts:
                        ty_opts = _thread_options(y)
                        for z in self._tile_z_opts:
                            if not self._tile_ok(x, y, z, smem):
                                continue
                            tz_opts = _thread_options(z)
                            thread_combos = sum(
                                1
                                for tx in tx_opts
                                for ty in ty_opts
                                for tz in tz_opts
                                if self._thread_ok(tx, ty, tz)
                            )
                            total += thread_combos * per_layout_order_unroll
        return total

    def iter_tiles(self, smem: int) -> Iterator[Tuple[int, int, int]]:
        for x in self._tile_x_opts:
            for y in self._tile_y_opts:
                for z in self._tile_z_opts:
                    if self._tile_ok(x, y, z, smem):
                        yield (x, y, z)

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def contains(self, config: Configuration) -> bool:
        """Whether a configuration belongs to this space."""
        if config.algorithm != self.algorithm:
            return False
        if config.tile_x not in self._tile_x_opts:
            return False
        if config.tile_y not in self._tile_y_opts:
            return False
        if config.tile_z not in self._tile_z_opts:
            return False
        if config.smem_per_block not in self._smem_opts:
            return False
        if config.e not in self._e_opts:
            return False
        if config.tile_x % config.threads_x or config.threads_x > 32:
            return False
        if config.tile_y % config.threads_y or config.threads_y > 32:
            return False
        if config.tile_z % config.threads_z or config.threads_z > 32:
            return False
        if not self._thread_ok(config.threads_x, config.threads_y, config.threads_z):
            return False
        return self._tile_ok(
            config.tile_x, config.tile_y, config.tile_z, config.smem_per_block
        )

    # ------------------------------------------------------------------ #
    # Sampling and neighbourhoods
    # ------------------------------------------------------------------ #
    def random_configuration(self, rng: random.Random, max_tries: int = 200) -> Configuration:
        """Draw one uniformly-ish random configuration from the space."""
        for _ in range(max_tries):
            smem = rng.choice(self._smem_opts)
            e = rng.choice(self._e_opts)
            x = rng.choice(self._tile_x_opts)
            y = rng.choice(self._tile_y_opts)
            z = rng.choice(self._tile_z_opts)
            if not self._tile_ok(x, y, z, smem):
                continue
            tx = rng.choice(_thread_options(x))
            ty = rng.choice(_thread_options(y))
            tz = rng.choice(_thread_options(z))
            if not self._thread_ok(tx, ty, tz):
                continue
            return Configuration(
                algorithm=self.algorithm,
                tile_x=x,
                tile_y=y,
                tile_z=z,
                threads_x=tx,
                threads_y=ty,
                threads_z=tz,
                layout=rng.choice(self._layouts),
                smem_per_block=smem,
                e=e,
                unroll=rng.choice(self._unrolls),
                loop_order=rng.choice(self._orders),
            )
        raise RuntimeError(
            "could not sample a feasible configuration; the space may be empty"
        )

    def sample(self, rng: random.Random, count: int) -> List[Configuration]:
        return [self.random_configuration(rng) for _ in range(count)]

    def _adjacent(self, options: Sequence, value, rng: random.Random):
        """Pick a neighbouring option (one step up or down the sorted list)."""
        opts = list(options)
        if value not in opts or len(opts) == 1:
            return rng.choice(opts)
        idx = opts.index(value)
        candidates = [i for i in (idx - 1, idx + 1) if 0 <= i < len(opts)]
        return opts[rng.choice(candidates)]

    def neighbor(self, config: Configuration, rng: random.Random, max_tries: int = 50) -> Configuration:
        """A random-walk step: perturb one knob to an adjacent legal value.

        Used both by the paper's parallel random-walk explorer and by the
        simulated-annealing baseline.
        """
        if not self.contains(config):
            return self.random_configuration(rng)
        knobs = [
            "tile_x",
            "tile_y",
            "tile_z",
            "threads",
            "layout",
            "smem",
            "unroll",
            "order",
        ]
        if self.algorithm == "winograd" and len(self._e_opts) > 1:
            knobs.append("e")
        for _ in range(max_tries):
            knob = rng.choice(knobs)
            d = config.as_dict()
            if knob == "tile_x":
                d["tile_x"] = self._adjacent(self._tile_x_opts, config.tile_x, rng)
                d["threads_x"] = 1
            elif knob == "tile_y":
                d["tile_y"] = self._adjacent(self._tile_y_opts, config.tile_y, rng)
                d["threads_y"] = 1
            elif knob == "tile_z":
                d["tile_z"] = self._adjacent(self._tile_z_opts, config.tile_z, rng)
                d["threads_z"] = 1
            elif knob == "threads":
                axis = rng.choice(("x", "y", "z"))
                extent = d[f"tile_{axis}"]
                d[f"threads_{axis}"] = self._adjacent(
                    _thread_options(extent), d[f"threads_{axis}"], rng
                )
            elif knob == "layout":
                d["layout"] = rng.choice([lay for lay in self._layouts if lay != config.layout])
            elif knob == "smem":
                d["smem_per_block"] = self._adjacent(
                    self._smem_opts, config.smem_per_block, rng
                )
            elif knob == "unroll":
                d["unroll"] = self._adjacent(self._unrolls, config.unroll, rng)
            elif knob == "order":
                d["loop_order"] = rng.choice(
                    [o for o in self._orders if o != config.loop_order]
                )
            elif knob == "e":
                d["e"] = self._adjacent(self._e_opts, config.e, rng)
            candidate = Configuration(**d)
            if self.contains(candidate):
                return candidate
        return self.random_configuration(rng)

    # ------------------------------------------------------------------ #
    # Vectorised batch operations (the search-side hot path)
    # ------------------------------------------------------------------ #
    def tile_ok_mask(
        self, x: np.ndarray, y: np.ndarray, z: np.ndarray, smem: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`_tile_ok`: Table 1's tile constraints per row.

        Uses the same float arithmetic (``math.sqrt`` and ``np.sqrt`` are both
        correctly rounded), so the mask agrees with the scalar predicate on
        every row.
        """
        sb_elements = smem // self.spec.dtype_size
        overhead = self._capacity_per_output()
        ok = ~(overhead * (x * y * z) > sb_elements)
        if self.pruned:
            r = self.params.reuse_factor
            ok &= ~(z > np.sqrt(sb_elements / r))
            ok &= ~(x * y > np.sqrt(sb_elements * r))
        return ok

    def thread_ok_mask(
        self, tx: np.ndarray, ty: np.ndarray, tz: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`_thread_ok`."""
        limit = min(self.max_threads_per_block, self.spec.max_threads_per_block)
        return tx * ty * tz <= limit

    def contains_batch(self, configs: ConfigArray) -> np.ndarray:
        """Vectorised :meth:`contains`: membership mask over the rows."""
        ok = configs.algo == self._algo_code
        tiles = (configs.tile_x, configs.tile_y, configs.tile_z)
        threads = (configs.threads_x, configs.threads_y, configs.threads_z)
        for tile, thread, opts in zip(tiles, threads, self._tile_arrs):
            ok &= _member_mask(opts, tile)
            ok &= (tile % np.maximum(thread, 1) == 0) & (thread <= 32) & (thread >= 1)
        ok &= _member_mask(self._smem_arr, configs.smem_per_block)
        ok &= _member_mask(self._e_arr, configs.e)
        ok &= self.thread_ok_mask(*threads)
        ok &= self.tile_ok_mask(*tiles, configs.smem_per_block)
        return ok

    def _sample_columns(
        self, gen: np.random.Generator, m: int
    ) -> Tuple[ConfigArray, np.ndarray]:
        """Draw ``m`` candidate rows and their feasibility mask (one rejection
        round of :meth:`sample_batch`)."""
        out = ConfigArray.filled(m, self.algorithm)
        out.smem_per_block = self._smem_arr[gen.integers(0, self._smem_arr.size, m)]
        out.e = self._e_arr[gen.integers(0, self._e_arr.size, m)]
        tile_idx = []
        for tile_arr, name in zip(self._tile_arrs, ("tile_x", "tile_y", "tile_z")):
            idx = gen.integers(0, tile_arr.size, m)
            tile_idx.append(idx)
            setattr(out, name, tile_arr[idx])
        ok = self.tile_ok_mask(out.tile_x, out.tile_y, out.tile_z, out.smem_per_block)
        for axis, name in enumerate(("threads_x", "threads_y", "threads_z")):
            table, lengths = self._thread_tables[axis]
            pick = gen.integers(0, lengths[tile_idx[axis]])
            setattr(out, name, table[tile_idx[axis], pick])
        ok &= self.thread_ok_mask(out.threads_x, out.threads_y, out.threads_z)
        out.layout = gen.integers(0, len(self._layouts), m)
        out.unroll = self._unroll_arr[gen.integers(0, self._unroll_arr.size, m)]
        out.order = gen.integers(0, len(self._orders), m)
        return out, ok

    def sample_batch(
        self, gen: np.random.Generator, count: int, max_rounds: int = 200
    ) -> ConfigArray:
        """Vectorised :meth:`sample`: ``count`` feasible rows in one array.

        Rejection-samples whole column batches (same knob distributions as
        :meth:`random_configuration`, drawn from ``gen`` instead of a
        ``random.Random``) until ``count`` rows pass the feasibility masks.
        """
        if count <= 0:
            return ConfigArray.filled(0, self.algorithm)
        parts: List[ConfigArray] = []
        have = 0
        for _ in range(max_rounds):
            m = max(2 * (count - have), 32)
            cand, ok = self._sample_columns(gen, m)
            if ok.any():
                parts.append(cand.take(ok))
                have += int(ok.sum())
            if have >= count:
                merged = ConfigArray.concat(parts)
                return merged.take(np.arange(count))
        raise RuntimeError(
            "could not sample a feasible configuration; the space may be empty"
        )

    #: knobs perturbed by :meth:`neighbor_batch`, in :meth:`neighbor` order.
    _KNOBS = ("tile_x", "tile_y", "tile_z", "threads", "layout", "smem", "unroll", "order")
    #: uniform draws consumed per neighbour attempt (knob, axis/alternative,
    #: adjacency direction) — the unit of the explorer's per-walker blocks.
    DRAWS_PER_NEIGHBOR_ROUND = 3

    def _perturb(self, base: ConfigArray, u: np.ndarray) -> ConfigArray:
        """One neighbour attempt per row: perturb one knob to an adjacent
        legal value, driven by the per-row uniforms ``u`` (shape ``(m, 3)``)."""
        knobs = list(self._KNOBS)
        if self.algorithm == "winograd" and len(self._e_opts) > 1:
            knobs.append("e")
        cand = base.copy()
        knob = np.minimum((u[:, 0] * len(knobs)).astype(np.intp), len(knobs) - 1)
        u_alt, u_dir = u[:, 1], u[:, 2]
        axis_names = ("x", "y", "z")
        for k, name in enumerate(knobs):
            rows = np.flatnonzero(knob == k)
            if rows.size == 0:
                continue
            if name in ("tile_x", "tile_y", "tile_z"):
                axis = ("tile_x", "tile_y", "tile_z").index(name)
                cur = getattr(base, name)[rows]
                new = _adjacent_in_sorted(self._tile_arrs[axis], cur, u_dir[rows])
                getattr(cand, name)[rows] = new
                getattr(cand, f"threads_{axis_names[axis]}")[rows] = 1
            elif name == "threads":
                axis_pick = np.minimum((u_alt[rows] * 3).astype(np.intp), 2)
                for axis in range(3):
                    sub = rows[axis_pick == axis]
                    if sub.size == 0:
                        continue
                    table, lengths = self._thread_tables[axis]
                    tile_arr = self._tile_arrs[axis]
                    tname = f"tile_{axis_names[axis]}"
                    thname = f"threads_{axis_names[axis]}"
                    tile_idx = np.searchsorted(tile_arr, getattr(base, tname)[sub])
                    cur = getattr(base, thname)[sub]
                    opt_rows = table[tile_idx]
                    n_opts = lengths[tile_idx]
                    idx = (opt_rows < cur[:, None]).sum(axis=1)
                    step = np.where(u_dir[sub] < 0.5, -1, 1)
                    step = np.where(idx == 0, 1, step)
                    step = np.where(idx == n_opts - 1, -1, step)
                    step = np.where(n_opts == 1, 0, step)
                    getattr(cand, thname)[sub] = opt_rows[
                        np.arange(sub.size), idx + step
                    ]
            elif name == "layout":
                alt = np.minimum((u_alt[rows] * 2).astype(np.int64), 1)
                cur = base.layout[rows]
                cand.layout[rows] = alt + (alt >= cur)
            elif name == "smem":
                cand.smem_per_block[rows] = _adjacent_in_sorted(
                    self._smem_arr, base.smem_per_block[rows], u_dir[rows]
                )
            elif name == "unroll":
                cand.unroll[rows] = _adjacent_in_sorted(
                    self._unroll_arr, base.unroll[rows], u_dir[rows]
                )
            elif name == "order":
                n_alt = len(self._orders) - 1
                alt = np.minimum((u_alt[rows] * n_alt).astype(np.int64), n_alt - 1)
                cur = base.order[rows]
                cand.order[rows] = alt + (alt >= cur)
            else:  # "e"
                cand.e[rows] = _adjacent_in_sorted(
                    self._e_arr, base.e[rows], u_dir[rows]
                )
        return cand

    def neighbor_batch(
        self,
        configs: ConfigArray,
        uniforms: Optional[np.ndarray] = None,
        *,
        gen: Optional[np.random.Generator] = None,
        fallback_gen: Optional[np.random.Generator] = None,
        max_rounds: int = 6,
        assume_contained: bool = False,
    ) -> ConfigArray:
        """Vectorised :meth:`neighbor`: one random-walk step for every row.

        Each round perturbs one knob per still-unresolved row to an adjacent
        legal value and keeps the rows whose candidates pass
        :meth:`contains_batch`; unresolved rows retry (fresh knob draw) next
        round, mirroring the scalar retry loop in lock-step.

        Randomness comes from ``uniforms`` — shape ``(len(configs),
        3 * max_rounds)``, row ``i`` holding walker ``i``'s draws in round
        order — so callers with per-walker RNG streams stay in control of
        which stream feeds which row; round ``r`` consumes columns
        ``3r..3r+2`` whether or not the row still needs them, keeping stream
        consumption data-independent.  Alternatively pass ``gen`` to draw the
        block internally (shared stream).  Rows that are not in the space, or
        that fail every round, fall back to fresh :meth:`sample_batch` rows
        from ``fallback_gen`` (the scalar path's ``random_configuration``
        fallback) or, when ``fallback_gen`` is ``None``, keep their input row.
        ``assume_contained=True`` skips the membership pre-check for callers
        whose rows are in the space by construction (the lock-step explorer).
        """
        n = len(configs)
        if uniforms is None:
            if gen is None:
                raise ValueError("neighbor_batch needs either uniforms or gen")
            uniforms = gen.random((n, self.DRAWS_PER_NEIGHBOR_ROUND * max_rounds))
        rounds = uniforms.shape[1] // self.DRAWS_PER_NEIGHBOR_ROUND
        result = configs.copy()
        if assume_contained:
            pending = np.arange(n, dtype=np.intp)
        else:
            # Rows outside the space never reach _perturb (their knob values
            # may not be in the option tables); they go straight to fallback.
            pending = np.flatnonzero(self.contains_batch(configs))
        resolved = np.zeros(n, dtype=bool)
        # Most rows resolve in the first round, so each retry round operates
        # only on the shrinking failure set (every round perturbs the
        # *original* row with that round's uniform columns, mirroring the
        # scalar retry loop in lock-step).
        for r in range(rounds):
            if pending.size == 0:
                break
            cols = slice(
                self.DRAWS_PER_NEIGHBOR_ROUND * r,
                self.DRAWS_PER_NEIGHBOR_ROUND * (r + 1),
            )
            cand = self._perturb(configs.take(pending), uniforms[pending, cols])
            # Perturbations only move knobs within the option tables (and a
            # changed tile resets its axis threads to 1), so table membership
            # is preserved by construction; only the feasibility constraints
            # need re-checking.
            ok = self.tile_ok_mask(
                cand.tile_x, cand.tile_y, cand.tile_z, cand.smem_per_block
            ) & self.thread_ok_mask(cand.threads_x, cand.threads_y, cand.threads_z)
            done = pending[ok]
            if done.size:
                resolved[done] = True
                for name in ConfigArray.FIELDS:
                    getattr(result, name)[done] = getattr(cand, name)[ok]
            pending = pending[~ok]
        failed = np.flatnonzero(~resolved)
        if failed.size and fallback_gen is not None:
            fresh = self.sample_batch(fallback_gen, failed.size)
            for name in ConfigArray.FIELDS:
                getattr(result, name)[failed] = getattr(fresh, name)
        return result

    def describe(self) -> str:
        kind = "pruned (ATE)" if self.pruned else "full (TVM-style)"
        return (
            f"SearchSpace[{self.algorithm}, {kind}] for {self.params.describe()} "
            f"on {self.spec.name}: {self.size():,} configurations"
        )
