"""Configuration spaces: the TVM-style full space and the pruned ATE domain.

Table 1 of the paper defines the *searching domain* of the auto-tuning
engine: on top of the generic template knobs (tile sizes dividing the output
extents, per-axis thread counts dividing the tile sizes, layout, shared
memory per block, loop order, unrolling) it imposes the constraints derived
from the I/O-optimality condition:

* ``S_b ≤ S_sm / 2``            (at least two resident blocks per SM),
* ``x·y·z ≤ S_b``               (the output tile fits in shared memory),
* ``z ≤ sqrt(S_b / R)``  and  ``x·y ≤ sqrt(S_b · R)``  (from ``x·y = R·z``).

:class:`SearchSpace` with ``pruned=False`` models the unpruned space a
TVM-style tuner explores; ``pruned=True`` applies the constraints above.
Table 2's "Size of Search Space" columns are ``SearchSpace.size()`` of the
two variants.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ...conv.tensor import ConvParams, Layout, divisors
from ...gpusim.spec import GPUSpec
from .config import Configuration

__all__ = ["SearchSpace"]


def _thread_options(extent: int, limit: int = 32) -> Tuple[int, ...]:
    """Thread counts along one axis: divisors of the tile extent, capped."""
    return tuple(d for d in divisors(extent) if d <= limit)


@dataclass
class SearchSpace:
    """Enumerable configuration space for one (problem, GPU, algorithm) triple."""

    params: ConvParams
    spec: GPUSpec
    algorithm: str = "direct"
    pruned: bool = False
    e_options: Sequence[int] = (2, 3, 4)
    max_threads_per_block: int = 1024

    def __post_init__(self) -> None:
        if self.algorithm not in ("direct", "winograd"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.algorithm == "winograd" and not self.params.winograd_compatible():
            raise ValueError("Winograd space requested for a non-Winograd problem")
        self._tile_x_opts = divisors(self.params.out_width)
        self._tile_y_opts = divisors(self.params.out_height)
        self._tile_z_opts = divisors(self.params.out_channels)
        self._layouts = Layout.all()
        self._smem_opts = self._shared_memory_options()
        self._e_opts: Tuple[int, ...] = (
            tuple(self.e_options) if self.algorithm == "winograd" else (2,)
        )
        self._unrolls = Configuration.UNROLL_FACTORS
        self._orders = Configuration.LOOP_ORDERS
        self._size: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Option enumeration
    # ------------------------------------------------------------------ #
    def _shared_memory_options(self) -> Tuple[int, ...]:
        """Candidate shared-memory allocations per block (bytes)."""
        cap = self.spec.shared_mem_per_sm
        if self.pruned:
            cap = cap // 2  # Table 1: S_b <= S_sm / 2
        options = []
        size = 8 * 1024
        while size <= cap:
            options.append(size)
            size *= 2
        if not options:
            options.append(cap)
        return tuple(options)

    def _capacity_per_output(self) -> float:
        """On-chip elements needed per in-flight output element.

        The direct dataflow keeps one partial sum per output; the Winograd
        dataflow keeps the two ``(e+r-1)^2`` temporary arrays per ``e x e``
        output tile (Section 5.3), i.e. ``2(e+r-1)^2/e^2`` elements per output.
        The smallest ``e`` gives the loosest constraint, so the domain uses it.
        """
        if self.algorithm != "winograd":
            return 1.0
        r = self.params.ker_height
        e = min(self._e_opts) if hasattr(self, "_e_opts") and self._e_opts else min(self.e_options)
        t = e + r - 1
        return 2.0 * t * t / (e * e)

    def _tile_ok(self, x: int, y: int, z: int, smem: int) -> bool:
        """Tile-level constraints of Table 1."""
        sb_elements = smem // self.spec.dtype_size
        overhead = self._capacity_per_output()
        if overhead * x * y * z > sb_elements:
            # The resident working set must fit the configured shared memory
            # (for Winograd this includes the temporary-array overhead).
            return False
        if self.pruned:
            r = self.params.reuse_factor
            if z > math.sqrt(sb_elements / r):
                return False
            if x * y > math.sqrt(sb_elements * r):
                return False
        return True

    def _thread_ok(self, tx: int, ty: int, tz: int) -> bool:
        return tx * ty * tz <= min(self.max_threads_per_block, self.spec.max_threads_per_block)

    # ------------------------------------------------------------------ #
    # Size and iteration
    # ------------------------------------------------------------------ #
    def size(self) -> int:
        """Number of configurations in the space (computed exactly).

        The full enumeration is expensive for unpruned spaces, so the count
        is memoised: every tuning run, result record and benchmark that asks
        for the size of the same space pays for the enumeration at most once.
        """
        if self._size is None:
            self._size = self._compute_size()
        return self._size

    def _compute_size(self) -> int:
        total = 0
        per_layout_order_unroll = len(self._layouts) * len(self._orders) * len(self._unrolls)
        for smem in self._smem_opts:
            for e in self._e_opts:
                for x in self._tile_x_opts:
                    tx_opts = _thread_options(x)
                    for y in self._tile_y_opts:
                        ty_opts = _thread_options(y)
                        for z in self._tile_z_opts:
                            if not self._tile_ok(x, y, z, smem):
                                continue
                            tz_opts = _thread_options(z)
                            thread_combos = sum(
                                1
                                for tx in tx_opts
                                for ty in ty_opts
                                for tz in tz_opts
                                if self._thread_ok(tx, ty, tz)
                            )
                            total += thread_combos * per_layout_order_unroll
        return total

    def iter_tiles(self, smem: int) -> Iterator[Tuple[int, int, int]]:
        for x in self._tile_x_opts:
            for y in self._tile_y_opts:
                for z in self._tile_z_opts:
                    if self._tile_ok(x, y, z, smem):
                        yield (x, y, z)

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def contains(self, config: Configuration) -> bool:
        """Whether a configuration belongs to this space."""
        if config.algorithm != self.algorithm:
            return False
        if config.tile_x not in self._tile_x_opts:
            return False
        if config.tile_y not in self._tile_y_opts:
            return False
        if config.tile_z not in self._tile_z_opts:
            return False
        if config.smem_per_block not in self._smem_opts:
            return False
        if config.e not in self._e_opts:
            return False
        if config.tile_x % config.threads_x or config.threads_x > 32:
            return False
        if config.tile_y % config.threads_y or config.threads_y > 32:
            return False
        if config.tile_z % config.threads_z or config.threads_z > 32:
            return False
        if not self._thread_ok(config.threads_x, config.threads_y, config.threads_z):
            return False
        return self._tile_ok(
            config.tile_x, config.tile_y, config.tile_z, config.smem_per_block
        )

    # ------------------------------------------------------------------ #
    # Sampling and neighbourhoods
    # ------------------------------------------------------------------ #
    def random_configuration(self, rng: random.Random, max_tries: int = 200) -> Configuration:
        """Draw one uniformly-ish random configuration from the space."""
        for _ in range(max_tries):
            smem = rng.choice(self._smem_opts)
            e = rng.choice(self._e_opts)
            x = rng.choice(self._tile_x_opts)
            y = rng.choice(self._tile_y_opts)
            z = rng.choice(self._tile_z_opts)
            if not self._tile_ok(x, y, z, smem):
                continue
            tx = rng.choice(_thread_options(x))
            ty = rng.choice(_thread_options(y))
            tz = rng.choice(_thread_options(z))
            if not self._thread_ok(tx, ty, tz):
                continue
            return Configuration(
                algorithm=self.algorithm,
                tile_x=x,
                tile_y=y,
                tile_z=z,
                threads_x=tx,
                threads_y=ty,
                threads_z=tz,
                layout=rng.choice(self._layouts),
                smem_per_block=smem,
                e=e,
                unroll=rng.choice(self._unrolls),
                loop_order=rng.choice(self._orders),
            )
        raise RuntimeError(
            "could not sample a feasible configuration; the space may be empty"
        )

    def sample(self, rng: random.Random, count: int) -> List[Configuration]:
        return [self.random_configuration(rng) for _ in range(count)]

    def _adjacent(self, options: Sequence, value, rng: random.Random):
        """Pick a neighbouring option (one step up or down the sorted list)."""
        opts = list(options)
        if value not in opts or len(opts) == 1:
            return rng.choice(opts)
        idx = opts.index(value)
        candidates = [i for i in (idx - 1, idx + 1) if 0 <= i < len(opts)]
        return opts[rng.choice(candidates)]

    def neighbor(self, config: Configuration, rng: random.Random, max_tries: int = 50) -> Configuration:
        """A random-walk step: perturb one knob to an adjacent legal value.

        Used both by the paper's parallel random-walk explorer and by the
        simulated-annealing baseline.
        """
        if not self.contains(config):
            return self.random_configuration(rng)
        knobs = [
            "tile_x",
            "tile_y",
            "tile_z",
            "threads",
            "layout",
            "smem",
            "unroll",
            "order",
        ]
        if self.algorithm == "winograd" and len(self._e_opts) > 1:
            knobs.append("e")
        for _ in range(max_tries):
            knob = rng.choice(knobs)
            d = config.as_dict()
            if knob == "tile_x":
                d["tile_x"] = self._adjacent(self._tile_x_opts, config.tile_x, rng)
                d["threads_x"] = 1
            elif knob == "tile_y":
                d["tile_y"] = self._adjacent(self._tile_y_opts, config.tile_y, rng)
                d["threads_y"] = 1
            elif knob == "tile_z":
                d["tile_z"] = self._adjacent(self._tile_z_opts, config.tile_z, rng)
                d["threads_z"] = 1
            elif knob == "threads":
                axis = rng.choice(("x", "y", "z"))
                extent = d[f"tile_{axis}"]
                d[f"threads_{axis}"] = self._adjacent(
                    _thread_options(extent), d[f"threads_{axis}"], rng
                )
            elif knob == "layout":
                d["layout"] = rng.choice([lay for lay in self._layouts if lay != config.layout])
            elif knob == "smem":
                d["smem_per_block"] = self._adjacent(
                    self._smem_opts, config.smem_per_block, rng
                )
            elif knob == "unroll":
                d["unroll"] = self._adjacent(self._unrolls, config.unroll, rng)
            elif knob == "order":
                d["loop_order"] = rng.choice(
                    [o for o in self._orders if o != config.loop_order]
                )
            elif knob == "e":
                d["e"] = self._adjacent(self._e_opts, config.e, rng)
            candidate = Configuration(**d)
            if self.contains(candidate):
                return candidate
        return self.random_configuration(rng)

    def describe(self) -> str:
        kind = "pruned (ATE)" if self.pruned else "full (TVM-style)"
        return (
            f"SearchSpace[{self.algorithm}, {kind}] for {self.params.describe()} "
            f"on {self.spec.name}: {self.size():,} configurations"
        )
