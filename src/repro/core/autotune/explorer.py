"""Configuration explorer: parallel random walks guided by the cost model.

Section 6.2's searching process: ``n_s`` walkers start from random (or
previously promising) configurations; each walker repeatedly steps to a
neighbouring configuration, accepting moves that the cost model predicts to
be faster (with a small temperature so the walk can escape local minima);
after a fixed number of steps the best-predicted configurations visited by
all walkers are returned as the next measurement batch.

Two implementations share that algorithm:

* :class:`ScalarRandomWalkExplorer` — one ``Configuration`` object at a time
  through ``space.neighbor`` / per-row features / a scalar Metropolis loop.
  It is the quality reference: simple to audit, and the vectorised explorer
  is property-tested to find configurations at least as good at equal budget.
* :class:`ParallelRandomWalkExplorer` — the search-side hot path.  All
  walkers advance in lock-step over a
  :class:`~repro.core.autotune.config.ConfigArray`: one batched
  :meth:`~repro.core.autotune.space.SearchSpace.neighbor_batch` draw, one
  :meth:`~repro.core.autotune.cost_model.CostModel.predict_score` call on a
  column-wise :func:`~repro.core.autotune.features.feature_matrix`, and one
  vectorised Metropolis accept per step.

**RNG streams** (documented for reproducibility, same precedent as
:class:`~repro.core.autotune.baselines.ParallelTemperingSATuner`'s per-chain
streams).  The vectorised explorer derives its generators from
``np.random.SeedSequence(seed).spawn(2 + num_walkers)``:

* child ``0`` — the *fill* stream: initial walker states that are not seeded
  from measurements, infeasible-neighbour restarts, and the ε-greedy /
  shortfall random fills at the end of each proposal;
* child ``1`` — the *score* stream: the random scores used while the cost
  model is still untrained;
* child ``2 + i`` — walker ``i``'s private stream.  Each :meth:`propose`
  call draws walker ``i``'s whole uniform block — shape ``(walk_length,
  3 * neighbor_rounds + 1)``, i.e. per step the
  :meth:`~repro.core.autotune.space.SearchSpace.neighbor_batch` draws
  followed by one Metropolis uniform — in a single call, so a walker's
  stream position depends only on how many proposals ran, never on other
  walkers' histories or on data-dependent retry counts.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ...conv.tensor import ConvParams
from ...gpusim.spec import GPUSpec
from .config import ConfigArray, Configuration
from .cost_model import CostModel
from .features import FeatureCache, feature_matrix
from .space import SearchSpace

__all__ = [
    "ExplorerConfig",
    "ParallelRandomWalkExplorer",
    "ScalarRandomWalkExplorer",
]


@dataclass(frozen=True)
class ExplorerConfig:
    """Hyper-parameters of the parallel random-walk explorer."""

    num_walkers: int = 16
    walk_length: int = 24
    temperature: float = 0.08
    restart_fraction: float = 0.25
    epsilon: float = 0.1  # fraction of each batch drawn uniformly at random
    neighbor_rounds: int = 8  # lock-step retries per neighbour draw (vectorised)

    def __post_init__(self) -> None:
        if self.num_walkers < 1 or self.walk_length < 1:
            raise ValueError("num_walkers and walk_length must be >= 1")
        if self.temperature < 0:
            raise ValueError("temperature must be non-negative")
        if not (0.0 <= self.restart_fraction <= 1.0):
            raise ValueError("restart_fraction must be in [0, 1]")
        if not (0.0 <= self.epsilon <= 1.0):
            raise ValueError("epsilon must be in [0, 1]")
        if self.neighbor_rounds < 1:
            raise ValueError("neighbor_rounds must be >= 1")


class ScalarRandomWalkExplorer:
    """Reference explorer: cost-model-guided random walks, one config at a time.

    This is the original Python-level implementation of Section 6.2's
    searching process, retained as the quality yardstick for the vectorised
    :class:`ParallelRandomWalkExplorer` (same hyper-parameters, same
    acceptance rule; the property tests compare best-found runtimes at equal
    measurement budget).
    """

    def __init__(
        self,
        space: SearchSpace,
        params: ConvParams,
        spec: GPUSpec,
        config: Optional[ExplorerConfig] = None,
        seed: int = 0,
        feature_cache: Optional[FeatureCache] = None,
    ) -> None:
        self.space = space
        self.params = params
        self.spec = spec
        self.config = config or ExplorerConfig()
        self.rng = random.Random(seed)
        #: walkers revisit configurations across proposals; cache their rows
        #: (pass the engine's cache in so measured configs featurise once).
        self._features = feature_cache or FeatureCache(params, spec)

    # ------------------------------------------------------------------ #
    def _score(self, model: Optional[CostModel], configs: Sequence[Configuration]) -> np.ndarray:
        """Predicted score (higher = faster); random scores when untrained."""
        if model is not None and model.is_trained:
            return model.predict_score(self._features.matrix(configs))
        return np.asarray([self.rng.random() for _ in configs])

    def propose(
        self,
        model: Optional[CostModel],
        batch_size: int,
        seeds: Sequence[Configuration] = (),
        visited: Optional[Set[Tuple]] = None,
    ) -> List[Configuration]:
        """Return up to ``batch_size`` promising, unvisited configurations.

        ``seeds`` (typically the best configurations measured so far) start a
        fraction of the walkers; the rest start from random samples.
        """
        visited = set(visited or ())
        cfg = self.config
        walkers: List[Configuration] = []
        seeds = [s for s in seeds if self.space.contains(s)]
        num_seeded = min(len(seeds), int(round(cfg.num_walkers * (1 - cfg.restart_fraction))))
        walkers.extend(seeds[:num_seeded])
        while len(walkers) < cfg.num_walkers:
            walkers.append(self.space.random_configuration(self.rng))

        scores = self._score(model, walkers)
        best_seen: Dict[Tuple, Tuple[float, Configuration]] = {}
        for w, s in zip(walkers, scores):
            best_seen[w.key()] = (float(s), w)

        current = list(walkers)
        current_scores = list(map(float, scores))
        for _ in range(cfg.walk_length):
            proposals = [self.space.neighbor(c, self.rng) for c in current]
            prop_scores = self._score(model, proposals)
            for i, (cand, cand_score) in enumerate(zip(proposals, prop_scores)):
                cand_score = float(cand_score)
                delta = cand_score - current_scores[i]
                accept = delta >= 0 or (
                    cfg.temperature > 0
                    and self.rng.random() < math.exp(delta / cfg.temperature)
                )
                if accept:
                    current[i] = cand
                    current_scores[i] = cand_score
                key = cand.key()
                if key not in best_seen or cand_score > best_seen[key][0]:
                    best_seen[key] = (cand_score, cand)

        # ε-greedy exploration: reserve part of the batch for uniform samples so
        # a misleading early cost model cannot trap every walker in one basin.
        num_random = int(round(cfg.epsilon * batch_size)) if batch_size > 1 else 0
        num_guided = batch_size - num_random

        ranked = sorted(best_seen.values(), key=lambda t: -t[0])
        batch: List[Configuration] = []
        for _, candidate in ranked:
            if candidate.key() in visited:
                continue
            batch.append(candidate)
            visited.add(candidate.key())
            if len(batch) >= num_guided:
                break
        # One uniform-random fill covers both the reserved ε-greedy slots and
        # any guided slots the walks could not fill with unvisited candidates.
        # (The previous code had two identical fill loops — both targeting
        # batch_size, since num_guided + num_random == batch_size — whose
        # attempt caps added up; the single loop keeps the combined cap.)
        attempts = 0
        while len(batch) < batch_size and attempts < 40 * batch_size:
            attempts += 1
            candidate = self.space.random_configuration(self.rng)
            if candidate.key() in visited:
                continue
            batch.append(candidate)
            visited.add(candidate.key())
        return batch


class ParallelRandomWalkExplorer:
    """Search the configuration space with cost-model-guided random walks.

    The vectorised lock-step implementation (see the module docstring for the
    algorithm and the per-walker RNG stream layout): walker state lives in a
    :class:`ConfigArray`, each step advances *all* walkers with one batched
    neighbour draw, one cost-model scoring call and one vectorised Metropolis
    accept, and the visited-candidate ranking deduplicates on the integer
    :meth:`ConfigArray.key_matrix` instead of per-config key tuples.
    """

    def __init__(
        self,
        space: SearchSpace,
        params: ConvParams,
        spec: GPUSpec,
        config: Optional[ExplorerConfig] = None,
        seed: int = 0,
        feature_cache: Optional[FeatureCache] = None,
    ) -> None:
        self.space = space
        self.params = params
        self.spec = spec
        self.config = config or ExplorerConfig()
        self.seed = seed
        #: kept for API compatibility with the scalar explorer (the measured
        #: dataset shares rows through it); the lock-step scoring path
        #: featurises whole ConfigArray columns instead.
        self._features = feature_cache or FeatureCache(params, spec)
        children = np.random.SeedSequence(seed).spawn(2 + self.config.num_walkers)
        self._fill_rng = np.random.default_rng(children[0])
        self._score_rng = np.random.default_rng(children[1])
        self._walker_rngs = [np.random.default_rng(c) for c in children[2:]]

    # ------------------------------------------------------------------ #
    def _score(self, model: Optional[CostModel], configs: ConfigArray) -> np.ndarray:
        """Predicted score (higher = faster); random scores when untrained."""
        if model is None or not model.is_trained:
            return self._score_rng.random(len(configs))
        return model.predict_score(feature_matrix(configs, self.params, self.spec))

    def _walker_blocks(self) -> np.ndarray:
        """Per-walker uniform blocks for one proposal (see module docstring).

        Shape ``(num_walkers, walk_length, 3 * neighbor_rounds + 1)``; the
        block of walker ``i`` comes entirely from stream child ``2 + i``.
        """
        cfg = self.config
        width = SearchSpace.DRAWS_PER_NEIGHBOR_ROUND * cfg.neighbor_rounds + 1
        return np.stack(
            [g.random((cfg.walk_length, width)) for g in self._walker_rngs]
        )

    def propose(
        self,
        model: Optional[CostModel],
        batch_size: int,
        seeds: Sequence[Configuration] = (),
        visited: Optional[Set[Tuple]] = None,
    ) -> List[Configuration]:
        """Return up to ``batch_size`` promising, unvisited configurations.

        ``seeds`` (typically the best configurations measured so far) start a
        fraction of the walkers; the rest start from random samples.
        """
        visited = set(visited or ())
        cfg = self.config
        seeds = [s for s in seeds if self.space.contains(s)]
        num_seeded = min(len(seeds), int(round(cfg.num_walkers * (1 - cfg.restart_fraction))))
        parts = []
        if num_seeded:
            parts.append(ConfigArray.from_configs(seeds[:num_seeded]))
        if cfg.num_walkers - num_seeded:
            parts.append(
                self.space.sample_batch(self._fill_rng, cfg.num_walkers - num_seeded)
            )
        current = ConfigArray.concat(parts)
        current_scores = self._score(model, current)

        # Every candidate any walker visits, with its score; deduplicated and
        # ranked after the walk (same max-score-per-key rule as the scalar
        # explorer's best_seen dict).
        seen_arrays = [current]
        seen_scores = [current_scores]

        blocks = self._walker_blocks()
        metro_col = SearchSpace.DRAWS_PER_NEIGHBOR_ROUND * cfg.neighbor_rounds
        for t in range(cfg.walk_length):
            u = blocks[:, t, :]
            proposals = self.space.neighbor_batch(
                current,
                u[:, :metro_col],
                fallback_gen=self._fill_rng,
                assume_contained=True,
            )
            prop_scores = self._score(model, proposals)
            delta = prop_scores - current_scores
            if cfg.temperature > 0:
                # exp only where delta < 0: identical accept decisions, no
                # float overflow for large positive deltas.
                p_accept = np.exp(np.minimum(delta, 0.0) / cfg.temperature)
                accept = (delta >= 0) | (u[:, metro_col] < p_accept)
            else:
                accept = delta >= 0
            current = current.where(accept, proposals)
            current_scores = np.where(accept, prop_scores, current_scores)
            seen_arrays.append(proposals)
            seen_scores.append(prop_scores)

        all_configs = ConfigArray.concat(seen_arrays)
        all_scores = np.concatenate(seen_scores)
        # Deduplicate on the key matrix keeping each key's best score, then
        # rank best-first.  Identical key rows are identical configurations,
        # so any representative index per group works.
        keys, group = np.unique(all_configs.key_matrix(), axis=0, return_inverse=True)
        group_best = np.full(keys.shape[0], -np.inf)
        np.maximum.at(group_best, group, all_scores)
        representative = np.zeros(keys.shape[0], dtype=np.intp)
        representative[group] = np.arange(all_scores.size, dtype=np.intp)
        # Rank best-first; break score ties by first-visit order, like the
        # scalar explorer's insertion-ordered best_seen dict (tree-model
        # scores tie often, and lexicographic-key tie-breaking would bias the
        # batch towards one corner of the space).
        first_visit = np.full(keys.shape[0], all_scores.size, dtype=np.intp)
        np.minimum.at(first_visit, group, np.arange(all_scores.size, dtype=np.intp))
        order = np.lexsort((first_visit, -group_best))

        num_random = int(round(cfg.epsilon * batch_size)) if batch_size > 1 else 0
        num_guided = batch_size - num_random

        batch: List[Configuration] = []
        for g in order:
            if len(batch) >= num_guided:
                break
            candidate = all_configs.config_at(representative[g])
            key = candidate.key()
            if key in visited:
                continue
            batch.append(candidate)
            visited.add(key)
        # One uniform-random fill covers both the reserved ε-greedy slots and
        # any guided slots the walks could not fill with unvisited candidates
        # (same combined attempt cap as the scalar explorer).
        attempts = 0
        while len(batch) < batch_size and attempts < 40 * batch_size:
            chunk = self.space.sample_batch(
                self._fill_rng, min(batch_size - len(batch), 40 * batch_size - attempts)
            )
            attempts += len(chunk)
            for i in range(len(chunk)):
                candidate = chunk.config_at(i)
                key = candidate.key()
                if key in visited or len(batch) >= batch_size:
                    continue
                batch.append(candidate)
                visited.add(key)
        return batch
