"""Configuration explorer: parallel random walks guided by the cost model.

Section 6.2's searching process: ``n_s`` walkers start from random (or
previously promising) configurations; each walker repeatedly steps to a
neighbouring configuration, accepting moves that the cost model predicts to
be faster (with a small temperature so the walk can escape local minima);
after a fixed number of steps the best-predicted configurations visited by
all walkers are returned as the next measurement batch.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ...conv.tensor import ConvParams
from ...gpusim.spec import GPUSpec
from .config import Configuration
from .cost_model import CostModel
from .features import FeatureCache
from .space import SearchSpace

__all__ = ["ExplorerConfig", "ParallelRandomWalkExplorer"]


@dataclass(frozen=True)
class ExplorerConfig:
    """Hyper-parameters of the parallel random-walk explorer."""

    num_walkers: int = 16
    walk_length: int = 24
    temperature: float = 0.08
    restart_fraction: float = 0.25
    epsilon: float = 0.1  # fraction of each batch drawn uniformly at random

    def __post_init__(self) -> None:
        if self.num_walkers < 1 or self.walk_length < 1:
            raise ValueError("num_walkers and walk_length must be >= 1")
        if self.temperature < 0:
            raise ValueError("temperature must be non-negative")
        if not (0.0 <= self.restart_fraction <= 1.0):
            raise ValueError("restart_fraction must be in [0, 1]")
        if not (0.0 <= self.epsilon <= 1.0):
            raise ValueError("epsilon must be in [0, 1]")


class ParallelRandomWalkExplorer:
    """Search the configuration space with cost-model-guided random walks."""

    def __init__(
        self,
        space: SearchSpace,
        params: ConvParams,
        spec: GPUSpec,
        config: Optional[ExplorerConfig] = None,
        seed: int = 0,
        feature_cache: Optional[FeatureCache] = None,
    ) -> None:
        self.space = space
        self.params = params
        self.spec = spec
        self.config = config or ExplorerConfig()
        self.rng = random.Random(seed)
        #: walkers revisit configurations across proposals; cache their rows
        #: (pass the engine's cache in so measured configs featurise once).
        self._features = feature_cache or FeatureCache(params, spec)

    # ------------------------------------------------------------------ #
    def _score(self, model: Optional[CostModel], configs: Sequence[Configuration]) -> np.ndarray:
        """Predicted score (higher = faster); random scores when untrained."""
        if model is not None and model.is_trained:
            return model.predict_score(self._features.matrix(configs))
        return np.asarray([self.rng.random() for _ in configs])

    def propose(
        self,
        model: Optional[CostModel],
        batch_size: int,
        seeds: Sequence[Configuration] = (),
        visited: Optional[Set[Tuple]] = None,
    ) -> List[Configuration]:
        """Return up to ``batch_size`` promising, unvisited configurations.

        ``seeds`` (typically the best configurations measured so far) start a
        fraction of the walkers; the rest start from random samples.
        """
        visited = set(visited or ())
        cfg = self.config
        walkers: List[Configuration] = []
        seeds = [s for s in seeds if self.space.contains(s)]
        num_seeded = min(len(seeds), int(round(cfg.num_walkers * (1 - cfg.restart_fraction))))
        walkers.extend(seeds[:num_seeded])
        while len(walkers) < cfg.num_walkers:
            walkers.append(self.space.random_configuration(self.rng))

        scores = self._score(model, walkers)
        best_seen: Dict[Tuple, Tuple[float, Configuration]] = {}
        for w, s in zip(walkers, scores):
            best_seen[w.key()] = (float(s), w)

        current = list(walkers)
        current_scores = list(map(float, scores))
        for _ in range(cfg.walk_length):
            proposals = [self.space.neighbor(c, self.rng) for c in current]
            prop_scores = self._score(model, proposals)
            for i, (cand, cand_score) in enumerate(zip(proposals, prop_scores)):
                cand_score = float(cand_score)
                delta = cand_score - current_scores[i]
                accept = delta >= 0 or (
                    cfg.temperature > 0
                    and self.rng.random() < math.exp(delta / cfg.temperature)
                )
                if accept:
                    current[i] = cand
                    current_scores[i] = cand_score
                key = cand.key()
                if key not in best_seen or cand_score > best_seen[key][0]:
                    best_seen[key] = (cand_score, cand)

        # ε-greedy exploration: reserve part of the batch for uniform samples so
        # a misleading early cost model cannot trap every walker in one basin.
        num_random = int(round(cfg.epsilon * batch_size)) if batch_size > 1 else 0
        num_guided = batch_size - num_random

        ranked = sorted(best_seen.values(), key=lambda t: -t[0])
        batch: List[Configuration] = []
        for _, candidate in ranked:
            if candidate.key() in visited:
                continue
            batch.append(candidate)
            visited.add(candidate.key())
            if len(batch) >= num_guided:
                break
        # One uniform-random fill covers both the reserved ε-greedy slots and
        # any guided slots the walks could not fill with unvisited candidates.
        # (The previous code had two identical fill loops — both targeting
        # batch_size, since num_guided + num_random == batch_size — whose
        # attempt caps added up; the single loop keeps the combined cap.)
        attempts = 0
        while len(batch) < batch_size and attempts < 40 * batch_size:
            attempts += 1
            candidate = self.space.random_configuration(self.rng)
            if candidate.key() in visited:
                continue
            batch.append(candidate)
            visited.add(candidate.key())
        return batch
