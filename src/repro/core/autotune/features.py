"""Feature extraction for the learned cost model.

The cost model never sees raw hardware counters — it learns from a fixed
feature vector derived from the configuration and the problem, mirroring the
knob/curve features TVM feeds XGBoost.  Features are cheap analytical
quantities (tile extents, thread counts, shared-memory pressure, estimated
traffic, arithmetic intensity, layout/order one-hots); they intentionally
do *not* include the simulator's efficiency constants, so the model has to
learn the mapping from measurements.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ...conv.tensor import ConvParams, Layout
from ...gpusim.spec import GPUSpec
from ..dataflow.common import OutputTile, ceil_div
from ..dataflow.direct import direct_dataflow_io
from ..dataflow.winograd import winograd_dataflow_io
from .config import Configuration

__all__ = ["FEATURE_NAMES", "feature_vector", "feature_matrix", "FeatureCache"]


FEATURE_NAMES: List[str] = [
    "log_tile_x",
    "log_tile_y",
    "log_tile_z",
    "log_tile_outputs",
    "log_threads",
    "threads_warp_remainder",
    "log_blocks",
    "blocks_per_sm_wave",
    "smem_fraction",
    "smem_pressure",
    "log_traffic",
    "arithmetic_intensity",
    "optimality_residual",
    "halo_overhead",
    "unroll",
    "order_contiguous",
    "layout_chw",
    "layout_cwh",
    "layout_hwc",
    "is_winograd",
    "winograd_e",
]


def _log(v: float) -> float:
    return math.log2(max(float(v), 1e-12))


def feature_vector(
    config: Configuration, params: ConvParams, spec: GPUSpec
) -> np.ndarray:
    """Return the feature vector of one configuration (see FEATURE_NAMES)."""
    tile = OutputTile(config.tile_x, config.tile_y, config.tile_z).clip_to(params)
    threads = config.threads_per_block
    blocks = (
        ceil_div(params.out_width, tile.x)
        * ceil_div(params.out_height, tile.y)
        * ceil_div(params.out_channels, tile.z)
        * params.batch
    )

    if config.algorithm == "winograd" and params.winograd_compatible():
        io = winograd_dataflow_io(params, tile, config.e)
        flops = 2.0 * params.macs / max(1.0, (config.e**2) / (config.e + params.ker_height - 1) ** 2 * 4)
        is_wino = 1.0
    else:
        io = direct_dataflow_io(params, tile)
        flops = float(params.flops)
        is_wino = 0.0
    traffic_bytes = io.total * spec.dtype_size

    halo = tile.input_footprint(params)
    smem_elements = tile.outputs + halo + params.ker_height * params.ker_width * tile.z
    smem_bytes = smem_elements * spec.dtype_size
    r = params.reuse_factor
    residual = abs(tile.x * tile.y - r * tile.z) / max(1.0, r * tile.z)

    contiguous_axis = {Layout.CHW: "x", Layout.CWH: "y", Layout.HWC: "z"}[config.layout]
    order_contig = 1.0 if config.loop_order.endswith(contiguous_axis) else 0.0

    values = [
        _log(tile.x),
        _log(tile.y),
        _log(tile.z),
        _log(tile.outputs),
        _log(threads),
        float(threads % spec.warp_size) / spec.warp_size,
        _log(blocks),
        min(4.0, blocks / spec.num_sms),
        config.smem_per_block / spec.shared_mem_per_sm,
        min(4.0, smem_bytes / max(1, config.smem_per_block)),
        _log(traffic_bytes),
        min(512.0, flops / max(1.0, traffic_bytes)),
        min(4.0, residual),
        min(8.0, halo / max(1, tile.x * tile.y)),
        float(config.unroll),
        order_contig,
        1.0 if config.layout == Layout.CHW else 0.0,
        1.0 if config.layout == Layout.CWH else 0.0,
        1.0 if config.layout == Layout.HWC else 0.0,
        is_wino,
        float(config.e) if is_wino else 0.0,
    ]
    return np.asarray(values, dtype=np.float64)


def feature_matrix(
    configs: Sequence[Configuration], params: ConvParams, spec: GPUSpec
) -> np.ndarray:
    """Stack feature vectors for a batch of configurations."""
    if not configs:
        return np.zeros((0, len(FEATURE_NAMES)), dtype=np.float64)
    return np.stack([feature_vector(c, params, spec) for c in configs])


class FeatureCache:
    """Memoised :func:`feature_vector` for one ``(params, spec)`` problem.

    A tuning run featurises the same configurations many times — every
    retraining iteration rebuilds the feature matrix of the whole measured
    dataset, and the explorer re-scores configurations its walkers revisit.
    The cache computes each configuration's vector once (keyed by
    :meth:`Configuration.key`) and reuses the stored row, so a growing
    dataset only pays for its *new* rows.  ``matrix`` stacks the cached rows
    exactly like :func:`feature_matrix`, hence bit-identical features.
    """

    def __init__(self, params: ConvParams, spec: GPUSpec) -> None:
        self.params = params
        self.spec = spec
        self._rows: Dict[Tuple, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def vector(self, config: Configuration) -> np.ndarray:
        key = config.key()
        row = self._rows.get(key)
        if row is None:
            row = feature_vector(config, self.params, self.spec)
            self._rows[key] = row
        return row

    def matrix(self, configs: Sequence[Configuration]) -> np.ndarray:
        if not configs:
            return np.zeros((0, len(FEATURE_NAMES)), dtype=np.float64)
        return np.stack([self.vector(c) for c in configs])
