"""Feature extraction for the learned cost model.

The cost model never sees raw hardware counters — it learns from a fixed
feature vector derived from the configuration and the problem, mirroring the
knob/curve features TVM feeds XGBoost.  Features are cheap analytical
quantities (tile extents, thread counts, shared-memory pressure, estimated
traffic, arithmetic intensity, layout/order one-hots); they intentionally
do *not* include the simulator's efficiency constants, so the model has to
learn the mapping from measurements.

Two equivalent paths produce the features:

* per-row — :func:`feature_vector` computes one configuration's vector;
* column-wise — :func:`feature_matrix` called with a
  :class:`~repro.core.autotune.config.ConfigArray` computes all 21 features
  over whole NumPy columns at once (the search-side hot path).  The two are
  bit-identical (property-tested): integer quantities are exact in int64
  (guarded by the same overflow bound as the vectorised lowering), float
  expressions evaluate in the same order, and the ``log2`` columns go through
  one ``math.log2`` call per *distinct* value, so no platform-dependent
  vectorised transcendental can introduce a stray ulp.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ...conv.tensor import ConvParams, Layout
from ...gpusim.spec import GPUSpec
from ...obs.metrics import NULL_COUNTER, MetricsRegistry
from ..dataflow.common import OutputTile, ceil_div
from ..dataflow.direct import direct_dataflow_io
from ..dataflow.winograd import winograd_dataflow_io
from .config import (
    _ALGO_CODE,
    _LAYOUT_CODE,
    ORDER_CONTIGUOUS,
    ConfigArray,
    Configuration,
    _io_may_overflow_int64,
)

__all__ = ["FEATURE_NAMES", "feature_vector", "feature_matrix", "FeatureCache"]


FEATURE_NAMES: List[str] = [
    "log_tile_x",
    "log_tile_y",
    "log_tile_z",
    "log_tile_outputs",
    "log_threads",
    "threads_warp_remainder",
    "log_blocks",
    "blocks_per_sm_wave",
    "smem_fraction",
    "smem_pressure",
    "log_traffic",
    "arithmetic_intensity",
    "optimality_residual",
    "halo_overhead",
    "unroll",
    "order_contiguous",
    "layout_chw",
    "layout_cwh",
    "layout_hwc",
    "is_winograd",
    "winograd_e",
]


def _log(v: float) -> float:
    return math.log2(max(float(v), 1e-12))


def _log_column(values: np.ndarray) -> np.ndarray:
    """Per-element ``_log`` over a column, bit-identical to the scalar path.

    The distinct values of a feature column are few (they come from small
    option tables), so the column is mapped through one ``math.log2`` call
    per unique value instead of ``np.log2`` — identical results on every
    platform regardless of how the array transcendental is vectorised.
    """
    a = np.asarray(values)
    order = np.argsort(a, kind="stable")
    sorted_a = a[order]
    first = np.empty(a.size, dtype=bool)
    first[0] = True
    np.not_equal(sorted_a[1:], sorted_a[:-1], out=first[1:])
    logs = np.fromiter((_log(v) for v in sorted_a[first]), np.float64)
    out = np.empty(a.size, dtype=np.float64)
    out[order] = logs[np.cumsum(first) - 1]
    return out


def feature_vector(
    config: Configuration, params: ConvParams, spec: GPUSpec
) -> np.ndarray:
    """Return the feature vector of one configuration (see FEATURE_NAMES)."""
    tile = OutputTile(config.tile_x, config.tile_y, config.tile_z).clip_to(params)
    threads = config.threads_per_block
    blocks = (
        ceil_div(params.out_width, tile.x)
        * ceil_div(params.out_height, tile.y)
        * ceil_div(params.out_channels, tile.z)
        * params.batch
    )

    if config.algorithm == "winograd" and params.winograd_compatible():
        io = winograd_dataflow_io(params, tile, config.e)
        flops = 2.0 * params.macs / max(1.0, (config.e**2) / (config.e + params.ker_height - 1) ** 2 * 4)
        is_wino = 1.0
    else:
        io = direct_dataflow_io(params, tile)
        flops = float(params.flops)
        is_wino = 0.0
    traffic_bytes = io.total * spec.dtype_size

    halo = tile.input_footprint(params)
    smem_elements = tile.outputs + halo + params.ker_height * params.ker_width * tile.z
    smem_bytes = smem_elements * spec.dtype_size
    r = params.reuse_factor
    residual = abs(tile.x * tile.y - r * tile.z) / max(1.0, r * tile.z)

    contiguous_axis = {Layout.CHW: "x", Layout.CWH: "y", Layout.HWC: "z"}[config.layout]
    order_contig = 1.0 if config.loop_order.endswith(contiguous_axis) else 0.0

    values = [
        _log(tile.x),
        _log(tile.y),
        _log(tile.z),
        _log(tile.outputs),
        _log(threads),
        float(threads % spec.warp_size) / spec.warp_size,
        _log(blocks),
        min(4.0, blocks / spec.num_sms),
        config.smem_per_block / spec.shared_mem_per_sm,
        min(4.0, smem_bytes / max(1, config.smem_per_block)),
        _log(traffic_bytes),
        min(512.0, flops / max(1.0, traffic_bytes)),
        min(4.0, residual),
        min(8.0, halo / max(1, tile.x * tile.y)),
        float(config.unroll),
        order_contig,
        1.0 if config.layout == Layout.CHW else 0.0,
        1.0 if config.layout == Layout.CWH else 0.0,
        1.0 if config.layout == Layout.HWC else 0.0,
        is_wino,
        float(config.e) if is_wino else 0.0,
    ]
    return np.asarray(values, dtype=np.float64)


def _feature_matrix_soa(
    configs: ConfigArray, params: ConvParams, spec: GPUSpec
) -> np.ndarray:
    """Column-wise :func:`feature_vector` over a :class:`ConfigArray`.

    Every expression below is the whole-column transliteration of one line of
    the scalar function; the comments in :func:`feature_vector` are the
    reference, and the bit-identity property tests in
    ``tests/test_vectorized_search.py`` enforce the contract.
    """
    p = params
    n = len(configs)
    out = np.empty((n, len(FEATURE_NAMES)), dtype=np.float64)
    # Clipped tile (OutputTile.clip_to) and launch shape.
    x = np.minimum(configs.tile_x, p.out_width)
    y = np.minimum(configs.tile_y, p.out_height)
    z = np.minimum(configs.tile_z, p.out_channels)
    threads = configs.threads_per_block
    blocks = (-(-p.out_width // x)) * (-(-p.out_height // y)) * (-(-p.out_channels // z)) * p.batch

    wino = (configs.algo == _ALGO_CODE["winograd"]) & p.winograd_compatible()
    # The x' * y' input halo (OutputTile.input_footprint) feeds both the
    # direct-dataflow reads and the halo/smem features below.
    halo = ((x - 1) * p.stride + p.ker_width) * ((y - 1) * p.stride + p.ker_height)
    # Direct-dataflow I/O (Eq. 20) and FLOPs for every row, then the Winograd
    # rows (Eq. 22 / the e-dependent FLOP discount) overwrite their slots.
    input_reads = (blocks * (halo * p.in_channels)).astype(np.float64)
    weight_reads = (blocks * (p.ker_height * p.ker_width * p.in_channels * z)).astype(
        np.float64
    )
    flops = np.full(n, float(p.flops))
    if wino.any():
        e = configs.e[wino]
        r_k = p.ker_height
        halo_w = (x[wino] + r_k - 1) * (y[wino] + r_k - 1)
        input_reads[wino] = (blocks[wino] * halo_w * p.in_channels).astype(np.float64)
        weight_reads[wino] = (
            blocks[wino] * z[wino] * r_k * r_k * p.in_channels
        ).astype(np.float64)
        flops[wino] = 2.0 * p.macs / np.maximum(1.0, e**2 / (e + r_k - 1) ** 2 * 4)
    # IOVolume.total evaluates ((input + weight) + output) + extra.
    traffic_bytes = (
        input_reads + weight_reads + float(p.output_elements) + 0.0
    ) * spec.dtype_size

    smem_bytes = (x * y * z + halo + p.ker_height * p.ker_width * z) * spec.dtype_size
    r = p.reuse_factor
    residual = np.abs(x * y - r * z) / np.maximum(1.0, r * z)

    out[:, 0] = _log_column(x)
    out[:, 1] = _log_column(y)
    out[:, 2] = _log_column(z)
    out[:, 3] = _log_column(x * y * z)
    out[:, 4] = _log_column(threads)
    out[:, 5] = (threads % spec.warp_size).astype(np.float64) / spec.warp_size
    out[:, 6] = _log_column(blocks)
    out[:, 7] = np.minimum(4.0, blocks / spec.num_sms)
    out[:, 8] = configs.smem_per_block / spec.shared_mem_per_sm
    out[:, 9] = np.minimum(
        4.0, smem_bytes / np.maximum(1, configs.smem_per_block)
    )
    out[:, 10] = _log_column(traffic_bytes)
    out[:, 11] = np.minimum(512.0, flops / np.maximum(1.0, traffic_bytes))
    out[:, 12] = np.minimum(4.0, residual)
    out[:, 13] = np.minimum(8.0, halo / np.maximum(1, x * y))
    out[:, 14] = configs.unroll.astype(np.float64)
    out[:, 15] = ORDER_CONTIGUOUS[configs.layout, configs.order].astype(np.float64)
    out[:, 16] = (configs.layout == _LAYOUT_CODE[Layout.CHW]).astype(np.float64)
    out[:, 17] = (configs.layout == _LAYOUT_CODE[Layout.CWH]).astype(np.float64)
    out[:, 18] = (configs.layout == _LAYOUT_CODE[Layout.HWC]).astype(np.float64)
    out[:, 19] = wino.astype(np.float64)
    out[:, 20] = np.where(wino, configs.e.astype(np.float64), 0.0)
    return out


def feature_matrix(
    configs: Union[ConfigArray, Sequence[Configuration]],
    params: ConvParams,
    spec: GPUSpec,
) -> np.ndarray:
    """Feature matrix of a batch of configurations.

    Accepts either a sequence of :class:`Configuration` (stacked per-row
    vectors, the reference path) or a :class:`ConfigArray` (column-wise fast
    path, bit-identical to the stacked rows).  Problems whose I/O products
    could overflow int64 take the per-row path, mirroring the vectorised
    lowering's guard.
    """
    if isinstance(configs, ConfigArray):
        if len(configs) == 0:
            return np.zeros((0, len(FEATURE_NAMES)), dtype=np.float64)
        if _io_may_overflow_int64(params):
            return np.stack(
                [feature_vector(c, params, spec) for c in configs.to_configs()]
            )
        return _feature_matrix_soa(configs, params, spec)
    if not configs:
        return np.zeros((0, len(FEATURE_NAMES)), dtype=np.float64)
    return np.stack([feature_vector(c, params, spec) for c in configs])


class FeatureCache:
    """Memoised :func:`feature_vector` for one ``(params, spec)`` problem.

    A tuning run featurises the same configurations many times — every
    retraining iteration rebuilds the feature matrix of the whole measured
    dataset, and the explorer re-scores configurations its walkers revisit.
    The cache computes each configuration's vector once (keyed by
    :meth:`Configuration.key`) and reuses the stored row, so a growing
    dataset only pays for its *new* rows.  ``matrix`` stacks the cached rows
    exactly like :func:`feature_matrix`, hence bit-identical features.

    ``max_entries`` bounds the cache for long-lived service runs (which would
    otherwise accumulate one row per distinct configuration forever): when
    the cap is exceeded the oldest-inserted rows are evicted FIFO.  Eviction
    only ever forces a recomputation — rows are pure functions of the
    configuration — so capped caches stay bit-identical to unbounded ones
    (the default).  ``hits`` / ``misses`` / ``evictions`` count cache traffic
    for service telemetry.
    """

    def __init__(
        self,
        params: ConvParams,
        spec: GPUSpec,
        max_entries: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")
        self.params = params
        self.spec = spec
        self.max_entries = max_entries
        self._rows: Dict[Tuple, np.ndarray] = {}
        # Per-cache traffic counters live on a private metrics registry (the
        # counters are thread-safe and snapshot-able); ``hits``/``misses``/
        # ``evictions`` stay available as read-only views.  attach_metrics
        # binds additional fleet mirrors (null no-ops until then) so service
        # runs aggregate cache traffic across engines without disturbing the
        # exact per-cache counts the tests assert on.
        self._metrics = MetricsRegistry()
        self._c_hits = self._metrics.counter("feature_cache.hits")
        self._c_misses = self._metrics.counter("feature_cache.misses")
        self._c_evictions = self._metrics.counter("feature_cache.evictions")
        self._m_hits = NULL_COUNTER
        self._m_misses = NULL_COUNTER
        self._m_evictions = NULL_COUNTER

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def hits(self) -> int:
        return self._c_hits.value

    @property
    def misses(self) -> int:
        return self._c_misses.value

    @property
    def evictions(self) -> int:
        return self._c_evictions.value

    def attach_metrics(self, metrics) -> None:
        """Mirror cache traffic into a shared metrics scope (see ``repro.obs``)."""
        self._m_hits = metrics.counter("hits")
        self._m_misses = metrics.counter("misses")
        self._m_evictions = metrics.counter("evictions")

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._rows),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def vector(self, config: Configuration) -> np.ndarray:
        key = config.key()
        row = self._rows.get(key)
        if row is None:
            self._c_misses.inc()
            self._m_misses.inc()
            row = feature_vector(config, self.params, self.spec)
            if self.max_entries is not None and len(self._rows) >= self.max_entries:
                # FIFO eviction: dicts preserve insertion order.
                self._rows.pop(next(iter(self._rows)))
                self._c_evictions.inc()
                self._m_evictions.inc()
            self._rows[key] = row
        else:
            self._c_hits.inc()
            self._m_hits.inc()
        return row

    def matrix(self, configs: Sequence[Configuration]) -> np.ndarray:
        if not configs:
            return np.zeros((0, len(FEATURE_NAMES)), dtype=np.float64)
        return np.stack([self.vector(c) for c in configs])
