"""The step-wise tuning-session protocol shared by every tuner.

Every search strategy in this package — the ATE engine and all five baseline
tuners — runs as a *session*: a resumable object that owns the search state
(all RNG included) and alternates strictly between

* :meth:`~TuningSessionProtocol.propose` — return the next batch of
  configurations to measure (``[]`` once the run is finished), and
* :meth:`~TuningSessionProtocol.update` — receive the measurements of exactly
  that batch, in proposal order, with ``None`` marking infeasible entries.

The session never measures anything itself, so the *driver* chooses the
measurement strategy: the synchronous ``tune()`` methods measure each batch
immediately through the tuner's own
:meth:`~repro.core.autotune.config.Measurer.measure_batch`, while the
concurrent :class:`~repro.service.TuningService` interleaves many sessions
and packs their batches into shared executor calls.  Because a session
consumes measurements in exactly the order it proposed them and all
randomness lives inside the session, **any driver that feeds back faithful
measurements reproduces the synchronous run bit-for-bit** — that equivalence
is property-tested on full trajectories for every tuner.

This module holds the protocol itself plus the result structures every
session fills in (:class:`TrialRecord`, :class:`TuningResult`) and the shared
:func:`record_trial` bookkeeping, so the engine
(:class:`~repro.core.autotune.engine.TuningSession`) and the baselines
(:class:`~repro.core.autotune.baselines.BaselineSession`) record trials
identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...conv.tensor import ConvParams
    from ...gpusim.executor import ExecutionResult
    from .config import Configuration

__all__ = ["TrialRecord", "TuningResult", "TuningSessionProtocol", "record_trial"]


@dataclass(frozen=True)
class TrialRecord:
    """One measured configuration."""

    index: int
    config: "Configuration"
    time_seconds: float
    gflops: float

    @property
    def valid(self) -> bool:
        return np.isfinite(self.time_seconds) and self.time_seconds > 0


@dataclass
class TuningResult:
    """Outcome of one tuning run."""

    tuner: str
    params: "ConvParams"
    gpu: str
    trials: List[TrialRecord] = field(default_factory=list)
    space_size: int = 0
    #: True when the result was served from a TuningDatabase instead of tuning.
    from_cache: bool = False

    @property
    def num_measurements(self) -> int:
        return len(self.trials)

    @property
    def best_trial(self) -> TrialRecord:
        valid = [t for t in self.trials if t.valid]
        if not valid:
            raise RuntimeError("no valid measurement recorded")
        return min(valid, key=lambda t: t.time_seconds)

    @property
    def best_config(self) -> "Configuration":
        return self.best_trial.config

    @property
    def best_time(self) -> float:
        return self.best_trial.time_seconds

    @property
    def best_gflops(self) -> float:
        return self.best_trial.gflops

    def best_gflops_curve(self) -> List[float]:
        """Best-so-far GFLOP/s after each measurement (Figure 11's y-axis)."""
        curve: List[float] = []
        best = 0.0
        for t in self.trials:
            if t.valid:
                best = max(best, t.gflops)
            curve.append(best)
        return curve

    def measurements_to_reach(self, fraction: float = 0.99) -> int:
        """Number of measurements needed to reach ``fraction`` of the final
        best GFLOP/s (a convergence-speed summary used by the benchmarks)."""
        if not (0.0 < fraction <= 1.0):
            raise ValueError("fraction must be in (0, 1]")
        curve = self.best_gflops_curve()
        if not curve or curve[-1] <= 0.0:
            # No valid trial was ever recorded: the curve is identically zero
            # and "fraction of the final best" is meaningless — report 0
            # instead of pretending convergence at the first measurement.
            return 0
        target = fraction * curve[-1]
        for i, v in enumerate(curve):
            if v >= target:
                return i + 1
        return len(curve)


def record_trial(
    result: TuningResult,
    config: "Configuration",
    execution: Optional["ExecutionResult"],
) -> TrialRecord:
    """Append one measurement outcome to ``result``.

    ``execution is None`` marks an infeasible configuration and is recorded as
    an invalid (infinite-time) trial; every session records trials through
    this single helper so the engine and the baselines account identically.
    """
    index = len(result.trials)
    if execution is None:
        record = TrialRecord(
            index=index, config=config, time_seconds=float("inf"), gflops=0.0
        )
    else:
        record = TrialRecord(
            index=index,
            config=config,
            time_seconds=execution.time_seconds,
            gflops=execution.achieved_gflops,
        )
    result.trials.append(record)
    return record


@runtime_checkable
class TuningSessionProtocol(Protocol):
    """Structural interface every step-wise tuning session satisfies.

    Implementations: :class:`~repro.core.autotune.engine.TuningSession` (the
    ATE / TVM-style engine) and
    :class:`~repro.core.autotune.baselines.BaselineSession` (random search,
    simulated annealing, parallel tempering, genetic).  The
    :class:`~repro.service.TuningService` schedules any mixture of them.
    """

    result: TuningResult

    @property
    def finished(self) -> bool:  # pragma: no cover - protocol stub
        ...

    def propose(self) -> List["Configuration"]:  # pragma: no cover - stub
        ...

    def update(
        self,
        configs: Sequence["Configuration"],
        executions: Sequence[Optional["ExecutionResult"]],
    ) -> None:  # pragma: no cover - protocol stub
        ...
