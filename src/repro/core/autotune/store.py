"""Pluggable record-store backends behind :class:`TuningDatabase`.

The tuning database is the system of record for every configuration the
tuner has ever found (ROADMAP north star: heavy traffic from millions of
users), so its persistence and serving surface is a formal backend
protocol rather than a hard-wired JSON file:

* :class:`RecordStore` — the backend contract.  A store owns the
  in-memory keep-better map, the revision counter and change log (the
  replication primitive the streaming worker pool syncs on), and a
  **read-copy hot tier**: bucket dicts are copy-on-write and published
  into a top-level dict under the store lock, so :meth:`RecordStore.serve`
  reads without taking the lock and million-record serving never contends
  with writers.
* :class:`JsonMapStore` — the whole-file JSON map (the original
  ``TuningDatabase`` format), retained as the compatibility reference.
  Durability is explicit: :meth:`~JsonMapStore.snapshot` rewrites the
  entire map atomically, O(db) per call.
* :class:`LogStore` — an append-only JSON-lines record log.  Every
  *effective* append (an insert, a faster record, or a budget upgrade)
  writes one line, so a durable put is O(1) amortised; a dead-record
  ratio threshold triggers compaction (fsync'd snapshot of the live set,
  then an atomic log reset); recovery folds the snapshot and replays the
  log tail, tolerating exactly one truncated trailing line (a crash
  mid-append).

All backends resolve collisions through the same keep-better fold
(:func:`resolve_record`), so swapping backends never changes a tuning
trajectory: the surviving record set is a deterministic function of the
record *set*, not of arrival order or storage layout.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ...conv.tensor import ConvParams, Layout
from ...gpusim.spec import GPUSpec
from ...obs.metrics import NULL_COUNTER, NULL_GAUGE
from .config import Configuration
from .session import TrialRecord, TuningResult

__all__ = [
    "FORMAT_VERSION",
    "JsonMapStore",
    "LogStore",
    "RecordStore",
    "TuningDatabaseError",
    "TuningRecord",
    "read_map_file",
    "resolve_record",
    "write_map_file",
]

#: on-disk format version stamped into every file either backend writes
#: (map files, log headers, log snapshots).  Readers reject a *newer*
#: format loudly, naming the version — a file from a future build must
#: never be silently misread or clobbered.
FORMAT_VERSION = 1

#: retained change-log tail; the log compacts once it reaches twice this.
_CHANGE_LOG_CAP = 4096


class TuningDatabaseError(ValueError):
    """A tuning-database file or wire payload is unusable.

    Subclasses :class:`ValueError` so existing callers catching
    ``ValueError`` around load/recover keep working; raised with a message
    naming the offending path/payload so misconfiguration (a truncated
    ``$REPRO_TUNING_DB`` file, a poisoned sync-queue envelope, a store
    written by a newer build) fails loudly instead of silently starting
    empty.
    """


def _gpu_name(spec: Union[GPUSpec, str]) -> str:
    return spec.name if isinstance(spec, GPUSpec) else str(spec)


def _params_key(params: ConvParams) -> Tuple:
    return (
        params.in_height,
        params.in_width,
        params.in_channels,
        params.out_channels,
        params.ker_height,
        params.ker_width,
        params.stride,
        params.padding,
        params.batch,
        params.layout.value,
    )


def _params_to_dict(params: ConvParams) -> Dict[str, object]:
    # Shallow field copy: every field is a scalar (layout normalised below),
    # and dataclasses.asdict's recursive deep copy dominates the append hot
    # path at log-store scale.
    d = dict(params.__dict__)
    d["layout"] = params.layout.value
    return d


def _params_from_dict(d: Dict[str, object]) -> ConvParams:
    d = dict(d)
    d["layout"] = Layout(d["layout"])
    return ConvParams(**d)


@dataclasses.dataclass(frozen=True)
class TuningRecord:
    """Best known implementation of one convolution problem on one GPU."""

    params: ConvParams
    gpu: str
    algorithm: str
    config: Configuration
    time_seconds: float
    gflops: float
    tuner: str = "ate"
    num_measurements: int = 0  # measurements spent producing this record
    space_size: int = 0
    #: measurement budget of the producing run; 0 = unknown.  The engine only
    #: serves a cached record to requests with an equal-or-smaller budget, so
    #: a quick low-budget record never pins down a thorough later search.
    budget: int = 0
    #: measurement conditions (GPUExecutor noise amplitude and seed) of the
    #: producing run; None = unknown.  Lookups from a measurer with different
    #: conditions are misses — their times would not be comparable.
    noise: Optional[float] = None
    noise_seed: Optional[int] = None

    def key(self) -> Tuple:
        """Problem identity: the ``(params, gpu, algorithm)`` triple."""
        return (_params_key(self.params), self.gpu, self.algorithm)

    def conditions(self) -> Tuple:
        """Measurement-conditions identity; records measured under different
        conditions coexist under the same problem key."""
        return (self.noise, self.noise_seed)

    @classmethod
    def from_result(
        cls,
        result: TuningResult,
        budget: int = 0,
        noise: Optional[float] = None,
        noise_seed: Optional[int] = None,
    ) -> "TuningRecord":
        """Capture the best trial of a finished tuning run as a record.

        ``budget`` is the measurement budget the run was allowed (its
        ``max_measurements``), which may exceed ``result.num_measurements``
        when the run stopped early on patience; ``noise``/``noise_seed``
        are the measurement conditions of the run's executor.  This is the
        bridge from the tuner interface to the database write path:
        ``db.put(TuningRecord.from_result(result, ...))``.
        """
        best = result.best_trial
        return cls(
            params=result.params,
            gpu=result.gpu,
            algorithm=best.config.algorithm,
            config=best.config,
            time_seconds=best.time_seconds,
            gflops=best.gflops,
            tuner=result.tuner,
            num_measurements=result.num_measurements,
            space_size=result.space_size,
            budget=budget,
            noise=noise,
            noise_seed=noise_seed,
        )

    def as_result(self) -> TuningResult:
        """Reconstitute a (single-trial) :class:`TuningResult` for callers
        that expect the tuner interface.

        The synthesized result contains exactly one trial (the recorded
        best), so its ``num_measurements`` is 1 and its convergence curve is
        a single point — neither the zero measurements the cache hit cost
        nor the ``self.num_measurements`` the original search spent.
        Consumers aggregating measurement counts or convergence speed must
        branch on ``from_cache`` (set True here) and read this record's
        ``num_measurements`` for the original cost."""
        result = TuningResult(
            tuner=self.tuner,
            params=self.params,
            gpu=self.gpu,
            space_size=self.space_size,
            from_cache=True,
        )
        result.trials.append(
            TrialRecord(
                index=0,
                config=self.config,
                time_seconds=self.time_seconds,
                gflops=self.gflops,
            )
        )
        return result

    def to_dict(self) -> Dict[str, object]:
        return {
            "params": _params_to_dict(self.params),
            "gpu": self.gpu,
            "algorithm": self.algorithm,
            "config": self.config.as_dict(),
            "time_seconds": self.time_seconds,
            "gflops": self.gflops,
            "tuner": self.tuner,
            "num_measurements": self.num_measurements,
            "space_size": self.space_size,
            "budget": self.budget,
            "noise": self.noise,
            "noise_seed": self.noise_seed,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "TuningRecord":
        return cls(
            params=_params_from_dict(d["params"]),
            gpu=str(d["gpu"]),
            algorithm=str(d["algorithm"]),
            config=Configuration(**d["config"]),
            time_seconds=float(d["time_seconds"]),
            gflops=float(d["gflops"]),
            tuner=str(d.get("tuner", "ate")),
            num_measurements=int(d.get("num_measurements", 0)),
            space_size=int(d.get("space_size", 0)),
            budget=int(d.get("budget", 0)),
            noise=None if d.get("noise") is None else float(d["noise"]),
            noise_seed=None if d.get("noise_seed") is None else int(d["noise_seed"]),
        )


def resolve_record(
    record: TuningRecord, existing: Optional[TuningRecord]
) -> TuningRecord:
    """The keep-better collision fold shared by every backend.

    Faster time wins; an exact time tie breaks on the configuration key so
    the surviving record is a deterministic function of the record *set*,
    not of arrival order (two shards finding equal-time configs must
    converge on one winner whatever the queue timing).  The survivor
    inherits the larger budget of the two: a configuration that beats the
    outcome of a more thorough search also satisfies requests at that
    search's budget.
    """
    if existing is None:
        return record
    if record.time_seconds < existing.time_seconds or (
        record.time_seconds == existing.time_seconds
        and record.config.key() < existing.config.key()
    ):
        winner = record
    else:
        winner = existing
    budget = max(record.budget, existing.budget)
    if budget != winner.budget:
        winner = dataclasses.replace(winner, budget=budget)
    return winner


# -- shared on-disk helpers --------------------------------------------- #
def _atomic_write_json(path: str, payload: dict, fsync: bool = False) -> str:
    """Write ``payload`` to ``path`` via temp file + ``os.replace``.

    Readers never observe a half-written file and a crash mid-write leaves
    any previous file intact; ``fsync=True`` additionally forces the bytes
    to stable storage before the rename (crash-recovery snapshots must not
    evaporate on power loss).  Parent directories are created as needed.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        # The half-written temp file must not survive a failed write.
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def _check_format(payload: object, path: Union[str, os.PathLike], kind: str) -> dict:
    """Validate a store file header/payload; raise naming the problem.

    Enforces the satellite fix for forward compatibility: a file stamped
    with a *newer* ``"format"`` raises :class:`TuningDatabaseError` naming
    the format version (never a bare ``KeyError``), so a downgrade is
    diagnosed instead of crashing or clobbering newer data.
    """
    name = os.fspath(path)
    if not isinstance(payload, dict):
        raise TuningDatabaseError(
            f"{name!r} does not hold a tuning database "
            f"(top level is {type(payload).__name__}, expected an object)"
        )
    fmt = payload.get("format", payload.get("version", FORMAT_VERSION))
    if not isinstance(fmt, int) or isinstance(fmt, bool):
        raise TuningDatabaseError(
            f"{name!r}: record-store format marker {fmt!r} is not an integer"
        )
    if fmt > FORMAT_VERSION:
        raise TuningDatabaseError(
            f"{name!r}: record-store format {fmt} is newer than this build "
            f"supports (format {FORMAT_VERSION}); read it with the build that "
            "wrote it, or export it to the older format there"
        )
    found = payload.get("kind", "map")  # pre-kind files are all map files
    if found != kind:
        raise TuningDatabaseError(
            f"{name!r} holds a {found!r} record store, expected {kind!r}"
            + (
                "; open log files via TuningDatabase.open() or LogStore"
                if found == "log"
                else ""
            )
        )
    return payload


def write_map_file(
    path: Union[str, os.PathLike], records: Iterable[TuningRecord]
) -> str:
    """Atomically write ``records`` as a whole-file JSON map (format 1).

    The portable export format: one self-contained JSON object, loadable
    by :meth:`TuningDatabase.load` of this and earlier builds (the legacy
    ``"version"`` field is kept alongside the ``"format"`` header).
    """
    target = os.fspath(path)
    payload = {
        "format": FORMAT_VERSION,
        "kind": "map",
        "version": FORMAT_VERSION,
        "records": [r.to_dict() for r in records],
    }
    return _atomic_write_json(target, payload)


def read_map_file(path: Union[str, os.PathLike]) -> List[TuningRecord]:
    """Read a whole-file JSON map; ``OSError`` for I/O trouble,
    :class:`TuningDatabaseError` for truncated/corrupt/incompatible content
    (with the offending path in the message)."""
    name = os.fspath(path)
    with open(path, "r", encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except ValueError as exc:  # includes json.JSONDecodeError
            raise TuningDatabaseError(
                f"{name!r} is not valid JSON (truncated save, append-only "
                f"log, or foreign file?): {exc}"
            ) from exc
    payload = _check_format(payload, name, kind="map")
    version = payload.get("version", payload.get("format"))
    if version != FORMAT_VERSION:
        raise TuningDatabaseError(
            f"{name!r}: unsupported tuning-database version {version!r}"
        )
    try:
        return [TuningRecord.from_dict(d) for d in payload.get("records", [])]
    except TuningDatabaseError:
        raise
    except Exception as exc:
        raise TuningDatabaseError(
            f"{name!r} holds malformed tuning records: {exc}"
        ) from exc


_EMPTY_BUCKET: Mapping[Tuple, TuningRecord] = {}


class RecordStore:
    """Backend contract + shared in-memory tier of the tuning database.

    Concrete backends (:class:`JsonMapStore`, :class:`LogStore`) inherit
    the keep-better map, revision counter, change log and read-copy hot
    tier, and implement durability by overriding :meth:`snapshot`,
    :meth:`recover` and the :meth:`_persist_effective` hook.

    Concurrency contract: every mutation happens under ``self._lock``;
    bucket dicts are **copy-on-write** (mutated as fresh copies, then
    published into ``self._hot`` by a single dict store), so
    :meth:`serve` — the million-record hot path — reads without taking
    the lock and never observes a half-applied update.
    """

    #: backend discriminator stamped into :meth:`describe` output.
    kind = "memory"

    def __init__(self, path: Optional[Union[str, os.PathLike]] = None) -> None:
        #: problem key -> {measurement conditions -> record}; records for the
        #: same problem measured under different conditions coexist, so two
        #: runners with different executors never evict each other's entries.
        #: Read-copy: buckets are immutable-by-convention once published.
        self._hot: Dict[Tuple, Dict[Tuple, TuningRecord]] = {}
        self._live = 0
        #: monotonic change counter: bumped once per *effective* append (an
        #: insert, a faster record, or a budget upgrade; a losing or equal
        #: record leaves it untouched).  ``_change_log`` appends the changed
        #: (problem, conditions) slot per bump, so :meth:`changes_since` can
        #: stream exactly the records that moved by slicing the tail — the
        #: primitive the worker pool's cross-shard exchange and the log
        #: backend's replication are built on — without rescanning the whole
        #: map every round.  The log is compacted once it doubles
        #: ``_CHANGE_LOG_CAP`` (``_log_base`` tracks the revision of its
        #: first retained entry); a checkpoint older than the retained tail
        #: falls back to over-delivering the whole map, which keep-better
        #: apply makes safe.
        self._revision = 0
        self._log_base = 0
        self._change_log: List[Tuple[Tuple, Tuple]] = []
        self._lock = threading.RLock()
        self.path = os.fspath(path) if path is not None else None
        # Telemetry mirrors (null no-ops until attach_metrics binds real
        # ones); the store sits in the REPRO601 no-wall-clock scope, so
        # only counts and levels are recorded.
        self._m_appends = NULL_COUNTER
        self._m_appends_effective = NULL_COUNTER
        self._m_recoveries = NULL_COUNTER
        self._m_recovered_records = NULL_COUNTER
        self._m_live = NULL_GAUGE

    def attach_metrics(self, metrics) -> None:
        """Bind store telemetry to a metrics scope (see ``repro.obs``).

        The database façade wires this under its own scope as ``db.store``,
        so the full names are ``db.store.appends_total``,
        ``db.store.appends_effective``, ``db.store.recoveries``,
        ``db.store.recovered_records`` and the ``db.store.live_records``
        gauge (:class:`LogStore` adds log/compaction instruments).
        Observability never alters store state: instruments are written on
        the same code paths that already mutate the map, nothing more.
        """
        with self._lock:
            self._m_appends = metrics.counter("appends_total")
            self._m_appends_effective = metrics.counter("appends_effective")
            self._m_recoveries = metrics.counter("recoveries")
            self._m_recovered_records = metrics.counter("recovered_records")
            self._m_live = metrics.gauge("live_records")
            self._m_live.set(self._live)

    # -- in-memory tier -------------------------------------------------- #
    def __len__(self) -> int:
        with self._lock:
            return self._live

    def scan(self) -> List[TuningRecord]:
        """Every live record (one list, point-in-time consistent)."""
        with self._lock:
            return [r for bucket in self._hot.values() for r in bucket.values()]

    def serve(self, key: Tuple) -> Mapping[Tuple, TuningRecord]:
        """The conditions bucket for a problem key — the lock-free hot path.

        Returns the published (immutable-by-convention) bucket dict, or an
        empty mapping.  Safe without the lock because buckets are
        copy-on-write and publication is a single atomic dict store: a
        reader sees either the pre-update or the post-update bucket, never
        a partially-applied one.
        """
        # Read-copy hot tier: buckets are copy-on-write and published
        # atomically, so the unlocked read below sees a consistent snapshot;
        # serving must never contend with writers.
        # reprolint: disable=REPRO201 - lock-free read of published bucket
        return self._hot.get(key, _EMPTY_BUCKET)

    def append(self, record: TuningRecord) -> Tuple[TuningRecord, bool]:
        """Keep-better insert; returns ``(surviving record, effective?)``.

        ``effective`` is True when the slot actually changed (an insert, a
        faster record, or a budget upgrade); only effective appends bump
        the revision, enter the change log, and reach the backend's
        durability hook.  A losing (or identical) record leaves everything
        untouched, which is what keeps record exchange loop-free:
        re-applying a record the store already holds never re-broadcasts
        it and never grows the on-disk log.
        """
        key = record.key()
        cond = record.conditions()
        with self._lock:
            self._m_appends.inc()
            bucket = self._hot.get(key)
            existing = bucket.get(cond) if bucket else None
            winner = resolve_record(record, existing)
            if winner is existing:
                return existing, False
            # Copy-on-write publish: lock-free serve() readers see the old
            # bucket until the single dict store below lands the new one.
            new_bucket = dict(bucket) if bucket else {}
            new_bucket[cond] = winner
            self._hot[key] = new_bucket
            if existing is None:
                self._live += 1
            self._revision += 1
            self._change_log.append((key, cond))
            if len(self._change_log) >= 2 * _CHANGE_LOG_CAP:
                # Amortised O(1) compaction keeps a daemon-lifetime change
                # log bounded; stale checkpoints fall back to safe
                # over-delivery in changes_since().
                del self._change_log[:_CHANGE_LOG_CAP]
                self._log_base += _CHANGE_LOG_CAP
            self._m_appends_effective.inc()
            self._m_live.set(self._live)
            self._persist_effective(winner)
            return winner, True

    @property
    def revision(self) -> int:
        """Monotonic change counter (see :meth:`changes_since`)."""
        with self._lock:
            return self._revision

    def changes_since(self, revision: int) -> List[TuningRecord]:
        """Records whose slot changed after ``revision``, oldest change first.

        ``store.changes_since(checkpoint)`` with a ``checkpoint`` captured
        from :attr:`revision` is an incremental diff: applying the returned
        records to a replica that already saw ``checkpoint`` brings it up
        to date (keep-better apply is idempotent and order-independent, so
        over-delivery is always safe).
        """
        with self._lock:
            if revision < self._log_base:
                # The checkpoint predates the retained log tail (compacted
                # away): over-deliver everything — idempotent keep-better
                # apply makes that merely redundant, never wrong.
                return self.scan()
            seen: set = set()
            changed: List[TuningRecord] = []
            for slot in self._change_log[max(revision - self._log_base, 0):]:
                if slot not in seen:
                    seen.add(slot)
                    key, cond = slot
                    changed.append(self._hot[key][cond])
            return changed

    # -- durability contract (backend-specific) -------------------------- #
    def _persist_effective(self, winner: TuningRecord) -> None:
        """Durability hook, called with the lock held once per effective
        append, after the in-memory tier already holds ``winner``.  The
        base store is memory-only; :class:`LogStore` appends a log line
        here.  :class:`JsonMapStore` deliberately leaves it a no-op — its
        durability is the explicit O(db) :meth:`snapshot`."""

    def snapshot(self) -> Optional[str]:
        """Force the full live set onto stable storage; returns the path
        written (None for an in-memory store with no path)."""
        raise NotImplementedError

    def recover(self) -> int:
        """Rebuild the in-memory tier from stable storage; returns the
        number of live records recovered.  Idempotent: recovering twice
        yields the same record set and revision."""
        raise NotImplementedError

    def close(self) -> None:
        """Release on-disk resources.  Idempotent; a closed store keeps
        serving reads, but backends with open file handles reject further
        appends."""

    # -- introspection / recovery plumbing ------------------------------- #
    def _reset_memory(self) -> None:
        """(lock held) Drop the in-memory tier ahead of a recovery fold."""
        self._hot = {}
        self._live = 0
        self._revision = 0
        self._log_base = 0
        self._change_log = []

    def _fold_recovered(self, record: TuningRecord) -> bool:
        """(lock held) Keep-better fold used during recovery.

        Identical survivor logic to :meth:`append`, but bumps no revision
        and logs nothing: recovery reconstructs state, it does not create
        changes to replicate."""
        key = record.key()
        cond = record.conditions()
        bucket = self._hot.get(key)
        existing = bucket.get(cond) if bucket else None
        winner = resolve_record(record, existing)
        if winner is existing:
            return False
        new_bucket = dict(bucket) if bucket else {}
        new_bucket[cond] = winner
        self._hot[key] = new_bucket
        if existing is None:
            self._live += 1
        return True

    def _finish_recovery(self, revision: int) -> int:
        """(lock held) Seal a recovery fold: pin the revision and reset the
        change log so stale replica checkpoints over-deliver (safe) rather
        than miss changes."""
        self._revision = max(revision, self._live)
        self._log_base = self._revision
        self._change_log = []
        self._m_recoveries.inc()
        self._m_recovered_records.inc(self._live)
        self._m_live.set(self._live)
        return self._live

    def describe(self) -> Dict[str, object]:
        """JSON-native introspection snapshot (see satellite: structured
        ``describe()``); backends extend with their durability state."""
        with self._lock:
            return {
                "kind": self.kind,
                "path": self.path,
                "records": self._live,
                "revision": self._revision,
            }


class JsonMapStore(RecordStore):
    """Whole-file JSON map backend — the compatibility reference.

    The original ``TuningDatabase`` on-disk format: :meth:`snapshot`
    atomically rewrites the entire map (O(db) per call, fine for
    thousands of records, the reason :class:`LogStore` exists for
    millions), :meth:`recover` re-reads it.  No write-ahead state exists,
    so a crash between snapshots loses the puts since the last snapshot —
    the historical contract of ``TuningDatabase.save()``.
    """

    kind = "map"

    def __init__(
        self,
        records: Iterable[TuningRecord] = (),
        path: Optional[Union[str, os.PathLike]] = None,
    ) -> None:
        super().__init__(path=path)
        for record in records:
            self.append(record)

    def snapshot(self) -> Optional[str]:
        if self.path is None:
            return None
        return write_map_file(self.path, self.scan())

    def recover(self) -> int:
        if self.path is None:
            raise TuningDatabaseError(
                "in-memory JsonMapStore has no path to recover from"
            )
        records = read_map_file(self.path)
        with self._lock:
            self._reset_memory()
            for record in records:
                self._fold_recovered(record)
            return self._finish_recovery(self._live)


class LogStore(RecordStore):
    """Append-only JSON-lines backend with compaction and crash recovery.

    On disk: ``path`` is the log — a header line
    ``{"format": 1, "kind": "log", "snapshot_revision": R}`` followed by
    one JSON line per effective append ``{"rev": n, "record": {...}}``
    (the surviving *winner* is logged, so replay needs no budget-merge
    reconstruction) — and ``path + ".snap"`` is the compaction snapshot
    (``kind: "log-snapshot"``, fsync'd, atomically replaced).

    * **Appends** are O(1): one serialized line, flushed always and
      fsync'd when ``fsync_appends`` is set (snapshots always fsync).
    * **Compaction** triggers when the log holds at least
      ``compact_min_entries`` entries and the dead-record ratio
      ``dead / (dead + live)`` reaches ``compact_dead_ratio``: the live
      set is snapshotted, then the log atomically reset to a bare header.
      The rewrite costs O(live) but needs >= live dead entries to trigger,
      so durable appends stay O(1) amortised.
    * **Recovery** folds the snapshot, then replays the log tail in order
      through the same keep-better fold (idempotent, so replaying entries
      the snapshot already covers is safe).  Exactly one undecodable
      *trailing* line is tolerated — a crash mid-append truncates the
      final line and loses only that put; an undecodable line anywhere
      else is corruption and raises.
    """

    kind = "log"

    def __init__(
        self,
        path: Union[str, os.PathLike],
        records: Iterable[TuningRecord] = (),
        *,
        compact_dead_ratio: float = 0.5,
        compact_min_entries: int = 1024,
        fsync_appends: bool = False,
    ) -> None:
        super().__init__(path=path)
        if not 0.0 < compact_dead_ratio <= 1.0:
            raise ValueError(
                f"compact_dead_ratio must be in (0, 1], got {compact_dead_ratio}"
            )
        self.snapshot_path = self.path + ".snap"
        self._compact_dead_ratio = float(compact_dead_ratio)
        self._compact_min_entries = int(compact_min_entries)
        self._fsync_appends = bool(fsync_appends)
        self._log_file = None
        self._closed = False
        #: log-tail accounting since the last compaction: total entries,
        #: entries superseded by a later entry to the same slot (dead), and
        #: the slots already present in the tail (to classify new appends).
        self._entries = 0
        self._dead = 0
        self._logged_slots: set = set()
        self._m_log_appends = NULL_COUNTER
        self._m_compactions = NULL_COUNTER
        self._m_compaction_records = NULL_COUNTER
        self._m_log_entries = NULL_GAUGE
        self._m_dead = NULL_GAUGE
        with self._lock:
            self._recover_locked()
        for record in records:
            self.append(record)

    def attach_metrics(self, metrics) -> None:
        """Bind log telemetry: everything the base store records plus
        ``log_appends`` (lines written), ``compactions`` /
        ``compaction_records`` (rewrites and the live records they
        carried), and the ``log_entries`` / ``dead_entries`` tail gauges
        (full names ``db.store.*`` when wired through the façade)."""
        super().attach_metrics(metrics)
        with self._lock:
            self._m_log_appends = metrics.counter("log_appends")
            self._m_compactions = metrics.counter("compactions")
            self._m_compaction_records = metrics.counter("compaction_records")
            self._m_log_entries = metrics.gauge("log_entries")
            self._m_dead = metrics.gauge("dead_entries")
            self._m_log_entries.set(self._entries)
            self._m_dead.set(self._dead)

    # -- durability ------------------------------------------------------ #
    def _persist_effective(self, winner: TuningRecord) -> None:
        """(lock held) Append one effective record to the log; compact when
        the dead ratio crosses the threshold."""
        if self._log_file is None:
            raise TuningDatabaseError(
                f"log store {self.path!r} is closed; no further appends"
            )
        line = json.dumps(
            {"rev": self._revision, "record": winner.to_dict()}, sort_keys=True
        )
        self._log_file.write(line + "\n")
        self._log_file.flush()
        if self._fsync_appends:
            os.fsync(self._log_file.fileno())
        slot = (winner.key(), winner.conditions())
        self._entries += 1
        if slot in self._logged_slots:
            self._dead += 1
        else:
            self._logged_slots.add(slot)
        self._m_log_appends.inc()
        self._m_log_entries.set(self._entries)
        self._m_dead.set(self._dead)
        if self._entries >= self._compact_min_entries and (
            self._dead >= self._compact_dead_ratio * (self._dead + self._live)
        ):
            self._compact_locked()

    def snapshot(self) -> Optional[str]:
        """Compact now: fsync'd snapshot of the live set + log reset.

        Also the idle-time hook for bounding recovery: a long-lived daemon
        can snapshot between traffic bursts so restart replays only a
        short tail."""
        with self._lock:
            if self._log_file is None:
                raise TuningDatabaseError(
                    f"log store {self.path!r} is closed; cannot snapshot"
                )
            self._compact_locked()
            return self.snapshot_path

    def _compact_locked(self) -> None:
        """(lock held) Snapshot the live set, then reset the log.

        Crash-window analysis (the recovery invariant is: snapshot fold +
        log replay == pre-crash effective set):

        * snapshot write fails or the machine dies before its
          ``os.replace`` lands -> old snapshot + full old log survive;
          nothing was reset, nothing lost.
        * death between snapshot replace and log reset -> new snapshot +
          old log; replaying the old log over the snapshot is pure
          over-delivery (idempotent keep-better), still exact.
        * log reset fails -> the handle is reopened on the *old* log in
          the ``finally`` below and tail accounting is left untouched, so
          later appends keep extending the old log; same over-delivery
          story as above.
        """
        records = self.scan()
        payload = {
            "format": FORMAT_VERSION,
            "kind": "log-snapshot",
            "revision": self._revision,
            "records": [r.to_dict() for r in records],
        }
        _atomic_write_json(self.snapshot_path, payload, fsync=True)
        self._log_file.close()
        self._log_file = None
        try:
            self._write_fresh_log(self._revision)
        finally:
            self._log_file = open(self.path, "a", encoding="utf-8")
        self._entries = 0
        self._dead = 0
        self._logged_slots = set()
        self._m_compactions.inc()
        self._m_compaction_records.inc(len(records))
        self._m_log_entries.set(0)
        self._m_dead.set(0)

    def _write_fresh_log(self, snapshot_revision: int) -> None:
        """(lock held) Atomically install a header-only log file, so a
        half-written header can never exist on disk."""
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(self.path) + ".", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                header = {
                    "format": FORMAT_VERSION,
                    "kind": "log",
                    "snapshot_revision": snapshot_revision,
                }
                fh.write(json.dumps(header, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # -- recovery -------------------------------------------------------- #
    def recover(self) -> int:
        """Rebuild memory from snapshot + log tail (see class docstring)."""
        with self._lock:
            return self._recover_locked()

    def _recover_locked(self) -> int:
        """(lock held) The recovery fold shared by ``__init__`` and
        :meth:`recover`."""
        if self._log_file is not None:
            self._log_file.close()
            self._log_file = None
        self._reset_memory()
        self._entries = 0
        self._dead = 0
        self._logged_slots = set()
        revision = 0
        if os.path.exists(self.snapshot_path):
            revision = self._fold_snapshot_locked()
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            revision = max(revision, self._replay_log_locked())
        else:
            # Missing (or zero-byte, i.e. never-written) log: install a
            # fresh header so the file is well-formed from byte one.
            self._write_fresh_log(revision)
        self._log_file = open(self.path, "a", encoding="utf-8")
        self._closed = False
        self._m_log_entries.set(self._entries)
        self._m_dead.set(self._dead)
        return self._finish_recovery(revision)

    def _fold_snapshot_locked(self) -> int:
        """(lock held) Fold the compaction snapshot; returns its revision."""
        name = self.snapshot_path
        with open(name, "r", encoding="utf-8") as fh:
            try:
                payload = json.load(fh)
            except ValueError as exc:
                raise TuningDatabaseError(
                    f"{name!r} is not a valid log snapshot (it is written "
                    f"atomically, so this is corruption, not a crash): {exc}"
                ) from exc
        payload = _check_format(payload, name, kind="log-snapshot")
        try:
            for d in payload.get("records", []):
                self._fold_recovered(TuningRecord.from_dict(d))
        except Exception as exc:
            raise TuningDatabaseError(
                f"{name!r} holds malformed tuning records: {exc}"
            ) from exc
        return int(payload.get("revision", 0))

    def _replay_log_locked(self) -> int:
        """(lock held) Replay the log tail; returns the highest revision
        seen.  Tolerates exactly one undecodable trailing line (the
        mid-append crash signature), truncating it away so the next append
        starts on a clean line; anything else raises."""
        name = self.path
        with open(name, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        try:
            header = json.loads(lines[0])
        except ValueError as exc:
            raise TuningDatabaseError(
                f"{name!r} has an undecodable log header (the header is "
                f"installed atomically, so this is not a crash artifact): {exc}"
            ) from exc
        _check_format(header, name, kind="log")
        revision = int(header.get("snapshot_revision", 0))
        for index, line in enumerate(lines[1:], start=2):
            try:
                entry = json.loads(line)
                record = TuningRecord.from_dict(entry["record"])
                rev = int(entry.get("rev", 0))
            except Exception as exc:
                if index == len(lines):
                    # Truncated trailing line: the put that was in flight
                    # when the process died.  Only that put is lost — drop
                    # the partial line from the file so later appends do not
                    # concatenate onto it (which would tear *them* too).
                    keep = sum(len(kept.encode("utf-8")) for kept in lines[:-1])
                    os.truncate(name, keep)
                    break
                raise TuningDatabaseError(
                    f"{name!r} line {index} is undecodable but not the last "
                    f"line; the log is corrupt, not merely truncated: {exc}"
                ) from exc
            slot = (record.key(), record.conditions())
            self._entries += 1
            if slot in self._logged_slots:
                self._dead += 1
            else:
                self._logged_slots.add(slot)
            self._fold_recovered(record)
            revision = max(revision, rev)
        return revision

    def close(self) -> None:
        with self._lock:
            if self._log_file is not None:
                self._log_file.close()
                self._log_file = None
            self._closed = True

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        with self._lock:
            info.update(
                snapshot_path=self.snapshot_path,
                log_entries=self._entries,
                dead_entries=self._dead,
                closed=self._closed,
            )
        return info
