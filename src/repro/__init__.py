"""repro — reproduction of "I/O Lower Bounds for Auto-tuning of Convolutions in CNNs".

The package is organised into:

* :mod:`repro.conv`    — convolution algorithms (direct, im2col, Winograd).
* :mod:`repro.pebble`  — red-blue pebble game DAG machinery.
* :mod:`repro.core`    — the paper's contribution: composite I/O lower bounds,
  near-I/O-optimal dataflows and the I/O-lower-bound-guided auto-tuner.
* :mod:`repro.gpusim`  — analytical GPU memory-hierarchy simulator
  (substitute for the paper's physical GPUs).
* :mod:`repro.nets`    — CNN layer specifications (AlexNet, VGG, ResNet, ...).
* :mod:`repro.service` — concurrent tuning service: request coalescing,
  cross-request measurement batching, sharded worker pools.
* :mod:`repro.analysis` — table/figure formatting used by the benchmark harness.
"""

__version__ = "1.0.0"

from . import analysis, conv, core, gpusim, nets, pebble, service  # noqa: F401

__all__ = [
    "analysis", "conv", "core", "gpusim", "nets", "pebble", "service", "__version__",
]
