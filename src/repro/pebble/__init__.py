"""Red–blue pebble game substrate.

Computation DAGs, DAG builders for the paper's algorithms, a red–blue pebble
game simulator that counts exact I/O for a schedule, and S-partition
machinery used to validate the composite lower-bound theory on small
instances.
"""

from .dag import ComputationDAG, Vertex
from .builders import (
    direct_conv_dag,
    linear_combination_tree,
    matmul_dag,
    summation_tree,
    winograd_dag,
)
from .game import GameResult, greedy_schedule, play_schedule, simulate_topological
from .spartition import (
    SPartition,
    greedy_s_partition,
    h_lower_bound,
    natural_dominator,
    validate_s_partition,
)

__all__ = [
    "ComputationDAG",
    "Vertex",
    "direct_conv_dag",
    "linear_combination_tree",
    "matmul_dag",
    "summation_tree",
    "winograd_dag",
    "GameResult",
    "greedy_schedule",
    "play_schedule",
    "simulate_topological",
    "SPartition",
    "greedy_s_partition",
    "h_lower_bound",
    "natural_dominator",
    "validate_s_partition",
]
