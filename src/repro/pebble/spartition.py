"""S-partition machinery (Section 2.1 and 4.1 of the paper).

An *S-partition* of a DAG ``G(V, E)`` splits ``V`` into blocks ``V_1 … V_h``
such that (1) the blocks are disjoint and cover ``V``, (2) every block has a
dominator set of at most ``S`` vertices, (3) every block's minimum set has at
most ``S`` vertices, and (4) there is no cyclic dependence among blocks.

This module provides

* :func:`natural_dominator` — the boundary-predecessor dominator used
  throughout the proofs,
* :class:`SPartition` and :func:`validate_s_partition` — explicit validation
  of the four properties,
* :func:`greedy_s_partition` — a constructive partition builder used by tests
  to exercise Theorem 4.5 (every valid block obeys ``|V_i| ≤ T(S)``) on
  concrete convolution DAGs, and
* :func:`h_lower_bound` — the ``H(S) = |V| / max_i |V_i|`` estimate of
  Equation (2) for a given partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Set

from .dag import ComputationDAG

__all__ = [
    "SPartition",
    "natural_dominator",
    "validate_s_partition",
    "greedy_s_partition",
    "h_lower_bound",
]


def natural_dominator(dag: ComputationDAG, block: Iterable[int]) -> Set[int]:
    """The canonical dominator of a block.

    Every path from a graph input to a block vertex either starts at a graph
    input *inside* the block or crosses an edge from outside the block into
    it; the set of those entry vertices therefore dominates the block.
    """
    block_set = set(block)
    dom: Set[int] = set()
    for vid in block_set:
        preds = dag.predecessors(vid)
        if not preds:
            dom.add(vid)  # a graph input inside the block dominates itself
            continue
        for p in preds:
            if p not in block_set:
                dom.add(p)
    return dom


@dataclass
class SPartition:
    """A concrete S-partition: an ordered list of disjoint vertex blocks."""

    blocks: List[List[int]]
    capacity: int

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def max_block_size(self) -> int:
        return max((len(b) for b in self.blocks), default=0)


def validate_s_partition(
    dag: ComputationDAG, partition: SPartition, strict_order: bool = True
) -> None:
    """Raise ``ValueError`` if ``partition`` violates any S-partition property.

    ``strict_order`` additionally requires blocks to be ordered consistently
    with the dependencies (block index of a predecessor <= block index of the
    consumer), which implies Property 4 (no cyclic dependence).
    """
    s = partition.capacity
    seen: Set[int] = set()
    owner = {}
    for idx, block in enumerate(partition.blocks):
        if not block:
            raise ValueError(f"block {idx} is empty")
        for vid in block:
            if vid in seen:
                raise ValueError(f"vertex {vid} appears in more than one block")
            seen.add(vid)
            owner[vid] = idx
    if len(seen) != dag.num_vertices:
        raise ValueError(
            f"partition covers {len(seen)} of {dag.num_vertices} vertices"
        )

    for idx, block in enumerate(partition.blocks):
        dom = natural_dominator(dag, block)
        if not dag.is_dominator(dom, block):
            raise ValueError(f"natural dominator of block {idx} is not a dominator")
        if len(dom) > s:
            raise ValueError(
                f"block {idx}: dominator size {len(dom)} exceeds S={s}"
            )
        minimum = dag.minimum_set(block)
        if len(minimum) > s:
            raise ValueError(
                f"block {idx}: minimum set size {len(minimum)} exceeds S={s}"
            )

    if strict_order:
        for vid in range(dag.num_vertices):
            for p in dag.predecessors(vid):
                if owner[p] > owner[vid]:
                    raise ValueError(
                        f"edge {p}->{vid} goes from block {owner[p]} to earlier "
                        f"block {owner[vid]} (cyclic dependence possible)"
                    )


def greedy_s_partition(dag: ComputationDAG, capacity: int) -> SPartition:
    """Greedily build a valid S-partition along the topological order.

    Vertices are appended to the current block for as long as both the
    natural dominator and the minimum set stay within ``capacity``; otherwise
    a new block is started.  The result is always a valid S-partition (blocks
    are contiguous topological chunks, so Property 4 holds), though generally
    not one with the minimum number of blocks.
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    blocks: List[List[int]] = []
    current: List[int] = []
    current_set: Set[int] = set()
    dom: Set[int] = set()

    def minimum_size_ok() -> bool:
        return len(dag.minimum_set(current_set)) <= capacity

    for vid in dag.topological_order():
        preds = dag.predecessors(vid)
        new_dom = set(dom)
        if not preds:
            new_dom.add(vid)
        else:
            for p in preds:
                if p not in current_set:
                    new_dom.add(p)
        candidate_ok = len(new_dom) <= capacity
        if candidate_ok:
            current.append(vid)
            current_set.add(vid)
            dom = new_dom
            if not minimum_size_ok():
                # Roll back the offending vertex into a fresh block.
                current.pop()
                current_set.discard(vid)
                blocks.append(current)
                current = [vid]
                current_set = {vid}
                dom = set() if preds else {vid}
                if preds:
                    dom = {p for p in preds}
        else:
            if current:
                blocks.append(current)
            current = [vid]
            current_set = {vid}
            dom = {vid} if not preds else set(preds)
    if current:
        blocks.append(current)
    partition = SPartition(blocks=blocks, capacity=capacity)
    validate_s_partition(dag, partition)
    return partition


def h_lower_bound(dag: ComputationDAG, partition: SPartition) -> float:
    """``|V| / max_i |V_i|`` for a given partition (Equation (2) evaluated on
    one partition; the true ``H(S)`` is the minimum over all partitions)."""
    biggest = partition.max_block_size()
    if biggest == 0:
        raise ValueError("partition has no blocks")
    return dag.num_vertices / biggest
