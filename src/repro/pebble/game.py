"""Red–blue pebble game simulator.

The simulator plays Hong & Kung's game (Section 2.1) on a
:class:`~repro.pebble.dag.ComputationDAG`:

* red pebbles model the fast memory of capacity ``S``;
* blue pebbles model the unbounded slow memory;
* inputs start blue, outputs must end blue;
* a vertex can be computed only when all predecessors hold red pebbles;
* loads (blue→red) and stores (red→blue) each cost one I/O operation.

Two entry points are provided:

* :func:`play_schedule` — execute an explicit computation order with a given
  eviction policy, returning exact load/store counts.  This is what the tests
  use to demonstrate that every legal execution obeys the lower bounds of
  :mod:`repro.core.bounds`.
* :func:`greedy_schedule` / :func:`simulate_topological` — convenience
  schedulers (plain topological order, and a locality-aware greedy order).

The eviction policy is Belady-style by default: evict the red pebble whose
next use is farthest in the future (computable because the schedule is known
up front).  An LRU policy is also available to model less clairvoyant
caching.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .dag import ComputationDAG

__all__ = ["GameResult", "play_schedule", "simulate_topological", "greedy_schedule"]


@dataclass
class GameResult:
    """Outcome of one complete red–blue pebble game execution."""

    loads: int
    stores: int
    peak_red: int
    schedule_length: int
    recomputations: int = 0

    @property
    def io_operations(self) -> int:
        """Total I/O ``Q`` = loads + stores."""
        return self.loads + self.stores

    def describe(self) -> str:
        return (
            f"Q={self.io_operations} (loads={self.loads}, stores={self.stores}), "
            f"peak_red={self.peak_red}, steps={self.schedule_length}"
        )


class _EvictionPolicy:
    """Chooses which red pebble to evict when fast memory is full."""

    def __init__(self, kind: str, next_uses: Optional[Dict[int, List[int]]] = None):
        if kind not in ("belady", "lru"):
            raise ValueError(f"unknown eviction policy {kind!r}")
        self.kind = kind
        self.next_uses = next_uses or {}
        self.clock = 0
        self.last_touch: Dict[int, int] = {}

    def touch(self, vid: int) -> None:
        self.clock += 1
        self.last_touch[vid] = self.clock

    def pop_next_use(self, vid: int, now: int) -> None:
        uses = self.next_uses.get(vid)
        while uses and uses[0] <= now:
            uses.pop(0)

    def choose_victim(
        self, candidates: Iterable[int], now: int, protected: Set[int]
    ) -> int:
        best_vid = -1
        best_key: Optional[Tuple[float, float]] = None
        for vid in candidates:
            if vid in protected:
                continue
            if self.kind == "belady":
                self.pop_next_use(vid, now)
                uses = self.next_uses.get(vid)
                nxt = uses[0] if uses else float("inf")
                key = (nxt, -self.last_touch.get(vid, 0))
            else:  # lru
                key = (-self.last_touch.get(vid, 0), 0.0)
            if best_key is None or key > best_key:
                best_key = key
                best_vid = vid
        if best_vid < 0:
            raise RuntimeError(
                "no evictable red pebble: fast memory too small for this step "
                f"(S must exceed the in-degree of every vertex; protected={len(protected)})"
            )
        return best_vid


def _future_uses(dag: ComputationDAG, schedule: Sequence[int]) -> Dict[int, List[int]]:
    """Map vertex id -> sorted positions in the schedule where it is used as a
    predecessor (for Belady eviction)."""
    uses: Dict[int, List[int]] = {}
    for pos, vid in enumerate(schedule):
        for p in dag.predecessors(vid):
            uses.setdefault(p, []).append(pos)
    return uses


def play_schedule(
    dag: ComputationDAG,
    capacity: int,
    schedule: Optional[Sequence[int]] = None,
    eviction: str = "belady",
    store_all_outputs: bool = True,
) -> GameResult:
    """Play the red–blue pebble game along ``schedule``.

    Parameters
    ----------
    dag:
        The computation DAG.
    capacity:
        Number of red pebbles ``S``.  Must be at least ``max in-degree + 1``
        or the game cannot proceed.
    schedule:
        Computation order over the non-input vertices.  Defaults to the DAG's
        topological order.  The schedule may repeat vertices (recomputation is
        legal in the red-blue game and the paper explicitly allows it), but
        every non-input vertex must appear at least once.
    eviction:
        ``"belady"`` (default, clairvoyant optimal-ish) or ``"lru"``.
    store_all_outputs:
        When true (default), every DAG output receives a blue pebble — the
        game-ending condition of Section 2.1.

    Returns
    -------
    GameResult
        Exact counts of loads, stores, peak red usage.
    """
    if capacity < 2:
        raise ValueError("capacity must be at least 2 red pebbles")
    non_inputs = [v.vid for v in dag.vertices() if dag.predecessors(v.vid)]
    if schedule is None:
        schedule = non_inputs
    needed = set(non_inputs)
    scheduled = set(schedule)
    missing = needed - scheduled
    if missing:
        raise ValueError(f"schedule misses {len(missing)} computable vertices")
    for vid in schedule:
        if not dag.predecessors(vid):
            raise ValueError(f"schedule contains input vertex {vid}")

    max_indeg = max((len(dag.predecessors(v)) for v in schedule), default=0)
    if capacity < max_indeg + 1:
        raise ValueError(
            f"capacity {capacity} too small: schedule needs at least {max_indeg + 1}"
        )

    policy = _EvictionPolicy(eviction, _future_uses(dag, schedule))

    blue: Set[int] = set(dag.inputs())
    red: Set[int] = set()
    computed_once: Set[int] = set()
    loads = stores = 0
    peak_red = 0
    recomputations = 0
    outputs = set(dag.outputs())

    def evict_until(space_needed: int, now: int, protected: Set[int]) -> None:
        nonlocal stores
        while len(red) + space_needed > capacity:
            victim = policy.choose_victim(red, now, protected)
            # A value that is still needed later (or is an output never yet
            # stored) must be written back before the red pebble is removed.
            policy.pop_next_use(victim, now)
            still_needed = bool(policy.next_uses.get(victim)) or (
                victim in outputs and victim not in blue
            )
            if still_needed and victim not in blue:
                blue.add(victim)
                stores += 1
            red.discard(victim)

    for pos, vid in enumerate(schedule):
        preds = dag.predecessors(vid)
        protected = {p for p in preds if p in red}
        # Load missing predecessors.
        for p in preds:
            if p in red:
                policy.touch(p)
                continue
            if p not in blue:
                raise RuntimeError(
                    f"vertex {vid} scheduled before predecessor {p} has a value "
                    "(recomputation schedules must recompute predecessors first)"
                )
            evict_until(1, pos, protected)
            red.add(p)
            policy.touch(p)
            protected.add(p)
            loads += 1
        # Compute the vertex itself (may be a recomputation).
        if vid in computed_once:
            recomputations += 1
        computed_once.add(vid)
        if vid not in red:
            evict_until(1, pos, protected)
            red.add(vid)
        policy.touch(vid)
        peak_red = max(peak_red, len(red))

    if store_all_outputs:
        for vid in outputs:
            if vid not in blue:
                if vid not in red:
                    raise RuntimeError(
                        f"output {vid} lost before being stored; schedule is invalid"
                    )
                blue.add(vid)
                stores += 1

    return GameResult(
        loads=loads,
        stores=stores,
        peak_red=peak_red,
        schedule_length=len(schedule),
        recomputations=recomputations,
    )


def simulate_topological(
    dag: ComputationDAG, capacity: int, eviction: str = "belady"
) -> GameResult:
    """Play the game in plain topological (construction) order."""
    return play_schedule(dag, capacity, schedule=None, eviction=eviction)


def greedy_schedule(dag: ComputationDAG, capacity: int) -> List[int]:
    """Produce a locality-aware schedule.

    The heuristic repeatedly picks, among vertices whose predecessors have all
    been computed, the one with the largest number of predecessors already
    "hot" (recently computed), breaking ties by vertex id.  It is not optimal
    but markedly better than naive orderings for the tree-heavy convolution
    DAGs and gives the tests a second legal schedule to check against the
    lower bounds.
    """
    n = dag.num_vertices
    remaining_preds = [len(dag.predecessors(v)) for v in range(n)]
    ready: List[Tuple[int, int]] = []
    hot: Dict[int, int] = {}
    clock = 0

    def priority(vid: int) -> int:
        return -sum(1 for p in dag.predecessors(vid) if clock - hot.get(p, -10**9) < capacity)

    for vid in range(n):
        if remaining_preds[vid] == 0 and dag.predecessors(vid):
            heapq.heappush(ready, (priority(vid), vid))
    # Inputs are immediately "available" to their consumers.
    for vid in range(n):
        if not dag.predecessors(vid):
            for s in dag.successors(vid):
                remaining_preds[s] -= 1
                if remaining_preds[s] == 0:
                    heapq.heappush(ready, (priority(s), s))

    schedule: List[int] = []
    while ready:
        _, vid = heapq.heappop(ready)
        if remaining_preds[vid] != 0:
            continue
        if vid in hot:
            continue
        schedule.append(vid)
        clock += 1
        hot[vid] = clock
        for s in dag.successors(vid):
            remaining_preds[s] -= 1
            if remaining_preds[s] == 0:
                heapq.heappush(ready, (priority(s), s))
    return schedule
