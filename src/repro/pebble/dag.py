"""Computation DAGs for the red–blue pebble game.

A :class:`ComputationDAG` is the object the paper's Section 2.1 plays the
red–blue pebble game on: vertices are operations (or graph inputs), edges are
data dependencies.  Each vertex additionally carries

* a ``kind`` string (``"input"``, ``"product"``, ``"sum"``, ``"output"``, …)
  used by builders and tests, and
* a ``step`` index identifying which sub-computation of the *multi-step
  partition* (Definition 4.1) it belongs to.  Inputs use step ``0``; the first
  sub-computation is step ``1``.

The class is deliberately small and array-backed: vertex ids are dense
integers, predecessor lists are tuples, and expensive derived structures
(topological order, successor lists) are cached lazily.  Builders in
:mod:`repro.pebble.builders` produce instances for the convolution DAGs of
Figures 4 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = ["Vertex", "ComputationDAG"]


@dataclass(frozen=True)
class Vertex:
    """One vertex of a computation DAG."""

    vid: int
    kind: str
    step: int
    label: str = ""


class ComputationDAG:
    """A directed acyclic graph of operations.

    Vertices are created through :meth:`add_vertex` which returns the integer
    id; edges are implied by the ``predecessors`` argument.  The graph is
    append-only — the pebble game and partition machinery never mutate it.
    """

    def __init__(self, name: str = "dag") -> None:
        self.name = name
        self._vertices: List[Vertex] = []
        self._preds: List[Tuple[int, ...]] = []
        self._succs: Optional[List[List[int]]] = None
        self._topo: Optional[List[int]] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_vertex(
        self,
        kind: str,
        step: int = 0,
        predecessors: Sequence[int] = (),
        label: str = "",
    ) -> int:
        """Append a vertex and return its id.

        Predecessors must already exist (ids smaller than the new id), which
        guarantees acyclicity by construction.
        """
        vid = len(self._vertices)
        preds = tuple(predecessors)
        for p in preds:
            if not (0 <= p < vid):
                raise ValueError(
                    f"predecessor {p} of new vertex {vid} does not exist yet"
                )
        if kind == "input" and preds:
            raise ValueError("input vertices cannot have predecessors")
        if kind != "input" and not preds:
            raise ValueError(f"non-input vertex of kind {kind!r} needs predecessors")
        self._vertices.append(Vertex(vid=vid, kind=kind, step=step, label=label))
        self._preds.append(preds)
        self._succs = None
        self._topo = None
        return vid

    def add_input(self, label: str = "") -> int:
        return self.add_vertex("input", step=0, predecessors=(), label=label)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._vertices)

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return sum(len(p) for p in self._preds)

    def vertex(self, vid: int) -> Vertex:
        return self._vertices[vid]

    def kind(self, vid: int) -> str:
        return self._vertices[vid].kind

    def step(self, vid: int) -> int:
        return self._vertices[vid].step

    def predecessors(self, vid: int) -> Tuple[int, ...]:
        return self._preds[vid]

    def successors(self, vid: int) -> Tuple[int, ...]:
        return tuple(self._successor_lists()[vid])

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._vertices)

    def _successor_lists(self) -> List[List[int]]:
        if self._succs is None:
            succs: List[List[int]] = [[] for _ in range(len(self._vertices))]
            for vid, preds in enumerate(self._preds):
                for p in preds:
                    succs[p].append(vid)
            self._succs = succs
        return self._succs

    # ------------------------------------------------------------------ #
    # Derived vertex sets
    # ------------------------------------------------------------------ #
    def inputs(self) -> List[int]:
        """Vertices with no predecessors (they start with blue pebbles)."""
        return [v.vid for v in self._vertices if not self._preds[v.vid]]

    def outputs(self) -> List[int]:
        """Vertices with no successors (they must end with blue pebbles)."""
        succs = self._successor_lists()
        return [v.vid for v in self._vertices if not succs[v.vid]]

    def internal_and_output_vertices(self) -> List[int]:
        """All non-input vertices — the ``|V_inter ∪ V_out|`` of Lemmas 4.8/4.14."""
        return [v.vid for v in self._vertices if self._preds[v.vid]]

    def vertices_of_step(self, step: int) -> List[int]:
        return [v.vid for v in self._vertices if v.step == step]

    def num_steps(self) -> int:
        return max((v.step for v in self._vertices), default=0)

    def step_outputs(self, step: int) -> List[int]:
        """Output set ``Õ_j`` of sub-computation ``step``: vertices of the step
        with no successor inside the same step (they feed later steps or are
        graph outputs)."""
        succs = self._successor_lists()
        out = []
        for vid in self.vertices_of_step(step):
            if all(self._vertices[s].step != step for s in succs[vid]):
                out.append(vid)
        return out

    # ------------------------------------------------------------------ #
    # Order / reachability utilities
    # ------------------------------------------------------------------ #
    def topological_order(self) -> List[int]:
        """Vertices in a valid execution order (ids are already topological
        because predecessors must precede their consumers)."""
        if self._topo is None:
            self._topo = list(range(len(self._vertices)))
        return self._topo

    def ancestors(self, targets: Iterable[int]) -> Set[int]:
        """All vertices from which some target is reachable (targets included)."""
        seen: Set[int] = set()
        stack = list(targets)
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            stack.extend(self._preds[v])
        return seen

    def descendants(self, sources: Iterable[int]) -> Set[int]:
        """All vertices reachable from some source (sources included)."""
        succs = self._successor_lists()
        seen: Set[int] = set()
        stack = list(sources)
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            stack.extend(succs[v])
        return seen

    def generated_by(self, dominator: Iterable[int]) -> Set[int]:
        """The set ``Θ(U)`` of Definition 4.2: vertices every one of whose
        input-to-vertex paths passes through ``dominator``.

        Graph inputs that are themselves in ``dominator`` are included;
        other graph inputs are never generated.
        """
        dom = set(dominator)
        generated: Set[int] = set()
        for vid in self.topological_order():
            if vid in dom:
                generated.add(vid)
                continue
            preds = self._preds[vid]
            if not preds:
                continue  # an input not in the dominator blocks generation
            if all(p in generated for p in preds):
                generated.add(vid)
        return generated

    def is_dominator(self, dominator: Iterable[int], targets: Iterable[int]) -> bool:
        """Check Definition 4.2 / Property 2: every path from a graph input to
        a target vertex contains a dominator vertex."""
        gen = self.generated_by(dominator)
        return all(t in gen for t in targets)

    def minimum_set(self, subset: Iterable[int]) -> Set[int]:
        """Property 3's minimum set: members of ``subset`` with no successor in
        ``subset``."""
        sub = set(subset)
        succs = self._successor_lists()
        return {v for v in sub if not any(s in sub for s in succs[v])}

    # ------------------------------------------------------------------ #
    # Validation / description
    # ------------------------------------------------------------------ #
    def validate_multistep_partition(self) -> None:
        """Check Definition 4.1 on the recorded step labels.

        Every edge must go from a step ``<=`` the consumer's step, and any
        cross-step edge must originate from an output vertex of its step.
        """
        for vid, preds in enumerate(self._preds):
            step = self._vertices[vid].step
            for p in preds:
                pstep = self._vertices[p].step
                if pstep > step:
                    raise ValueError(
                        f"edge {p}->{vid} goes backwards in steps ({pstep}->{step})"
                    )
        for j in range(1, self.num_steps() + 1):
            step_out = set(self.step_outputs(j))
            for vid in self.vertices_of_step(j):
                for s in self.successors(vid):
                    if self._vertices[s].step > j and vid not in step_out:
                        raise ValueError(
                            f"vertex {vid} of step {j} feeds step "
                            f"{self._vertices[s].step} but is not a step output"
                        )

    def summary(self) -> Dict[str, int]:
        kinds: Dict[str, int] = {}
        for v in self._vertices:
            kinds[v.kind] = kinds.get(v.kind, 0) + 1
        return {
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "inputs": len(self.inputs()),
            "outputs": len(self.outputs()),
            "steps": self.num_steps(),
            **{f"kind:{k}": n for k, n in sorted(kinds.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ComputationDAG({self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, steps={self.num_steps()})"
        )
