"""DAG builders for the computations analysed in the paper.

The builders produce :class:`~repro.pebble.dag.ComputationDAG` instances whose
structure follows the paper's figures:

* :func:`summation_tree` — the left-deep summation tree of Lemma 4.7
  (``k`` inputs → ``k-2`` internal vertices → 1 output).
* :func:`linear_combination_tree` — Lemma 4.13's tree (coefficient products
  then a summation tree; ``2k-2`` internal vertices + 1 output).
* :func:`direct_conv_dag` — Figure 4: step 1 produces all products
  ``I_i ⊙ K_j``, step 2 sums them per output via summation trees.
* :func:`winograd_dag` — Figure 5: four steps (input/kernel transforms,
  element-wise products, channel summation, output transform).
* :func:`matmul_dag` — the classical Hong–Kung matrix-multiplication DAG,
  used to validate the composite theory against the known n³/√S bound.

The convolution builders are meant for *small* problems (they materialise one
vertex per scalar operation); the closed-form counts in
:mod:`repro.core.bounds` are what the benchmarks use for real layer sizes.
The builders assert their vertex counts against those closed forms, so the
tests tie the combinatorics of the figures to the formulas of the lemmas.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..conv.tensor import ConvParams
from .dag import ComputationDAG

__all__ = [
    "summation_tree",
    "linear_combination_tree",
    "direct_conv_dag",
    "winograd_dag",
    "matmul_dag",
]


def summation_tree(
    dag: ComputationDAG, leaves: Sequence[int], step: int, label: str = "sum"
) -> int:
    """Append a left-deep summation tree over ``leaves`` and return the root.

    Following Lemma 4.7 the tree adds ``len(leaves) - 2`` internal vertices of
    kind ``"sum"`` and one final vertex of kind ``"sum_out"``.  With a single
    leaf the value is passed through a unary ``"sum_out"`` vertex so that the
    output-vertex bookkeeping stays uniform.
    """
    if not leaves:
        raise ValueError("summation tree needs at least one leaf")
    if len(leaves) == 1:
        return dag.add_vertex("sum_out", step=step, predecessors=(leaves[0],), label=label)
    acc = leaves[0]
    for i, leaf in enumerate(leaves[1:], start=1):
        kind = "sum_out" if i == len(leaves) - 1 else "sum"
        acc = dag.add_vertex(kind, step=step, predecessors=(acc, leaf), label=label)
    return acc


def linear_combination_tree(
    dag: ComputationDAG,
    leaves: Sequence[int],
    step: int,
    label: str = "lincomb",
) -> int:
    """Append a linear-combination tree (Lemma 4.13) and return its root.

    Each leaf is first multiplied by a (fast-memory-resident) coefficient,
    producing one ``"scale"`` vertex per leaf, and the scaled values are summed
    with a summation tree.  Total: ``2k - 2`` internal vertices + 1 output for
    ``k >= 2`` leaves, matching the lemma.
    """
    if not leaves:
        raise ValueError("linear combination tree needs at least one leaf")
    scaled = [
        dag.add_vertex("scale", step=step, predecessors=(leaf,), label=label)
        for leaf in leaves
    ]
    if len(scaled) == 1:
        return dag.add_vertex("sum_out", step=step, predecessors=(scaled[0],), label=label)
    return summation_tree(dag, scaled, step=step, label=label)


# ---------------------------------------------------------------------- #
# Direct convolution (Figure 4)
# ---------------------------------------------------------------------- #
def direct_conv_dag(params: ConvParams) -> ComputationDAG:
    """Build the two-step DAG of a direct convolution (Figure 4).

    Step 1: the ``Wker*Hker*Cin`` products of each sliding window with each
    kernel.  Step 2: per output, a summation tree over its products.

    Only ``batch == 1`` and ``padding == 0`` problems are supported (the DAG
    would simply replicate per image; padded positions contribute constant
    zeros which the pebble analysis ignores).
    """
    if params.batch != 1 or params.padding != 0:
        raise ValueError("direct_conv_dag supports batch=1, padding=0 problems")
    if params.ker_height * params.ker_width * params.in_channels < 2:
        raise ValueError(
            "direct_conv_dag needs at least two product terms per output "
            "(Wker*Hker*Cin >= 2) for the two-step structure of Figure 4"
        )
    dag = ComputationDAG(name=f"direct_conv[{params.describe()}]")

    # Graph inputs: input image elements and kernel weights.
    input_ids: Dict[Tuple[int, int, int], int] = {}
    for c in range(params.in_channels):
        for h in range(params.in_height):
            for w in range(params.in_width):
                input_ids[(c, h, w)] = dag.add_input(label=f"x[{c},{h},{w}]")
    kernel_ids: Dict[Tuple[int, int, int, int], int] = {}
    for o in range(params.out_channels):
        for c in range(params.in_channels):
            for kh in range(params.ker_height):
                for kw in range(params.ker_width):
                    kernel_ids[(o, c, kh, kw)] = dag.add_input(
                        label=f"w[{o},{c},{kh},{kw}]"
                    )

    # Step 1: product vertices; Step 2: summation trees.
    for o in range(params.out_channels):
        for oh in range(params.out_height):
            for ow in range(params.out_width):
                products: List[int] = []
                ih0, iw0 = oh * params.stride, ow * params.stride
                for c in range(params.in_channels):
                    for kh in range(params.ker_height):
                        for kw in range(params.ker_width):
                            x_id = input_ids[(c, ih0 + kh, iw0 + kw)]
                            w_id = kernel_ids[(o, c, kh, kw)]
                            products.append(
                                dag.add_vertex(
                                    "product",
                                    step=1,
                                    predecessors=(x_id, w_id),
                                    label=f"p[{o},{oh},{ow}]",
                                )
                            )
                summation_tree(dag, products, step=2, label=f"y[{o},{oh},{ow}]")

    dag.validate_multistep_partition()
    _assert_direct_counts(dag, params)
    return dag


def _assert_direct_counts(dag: ComputationDAG, params: ConvParams) -> None:
    """Cross-check Lemma 4.8's vertex count against the built DAG."""
    k = params.ker_height * params.ker_width * params.in_channels
    outputs = params.out_height * params.out_width * params.out_channels
    expected = (2 * k - 1) * outputs
    actual = len(dag.internal_and_output_vertices())
    if actual != expected:
        raise AssertionError(
            f"direct conv DAG internal+output count {actual} != Lemma 4.8 value {expected}"
        )


# ---------------------------------------------------------------------- #
# Winograd algorithm (Figure 5)
# ---------------------------------------------------------------------- #
def winograd_dag(params: ConvParams, e: int = 2) -> ComputationDAG:
    """Build the four-step DAG of the Winograd algorithm (Figure 5).

    Step 1: linear-combination trees transforming input tiles (``P``) and
    kernels (``J``).  Step 2: element-wise products (``Λ``).  Step 3: channel
    summation trees (``Π``).  Step 4: linear-combination trees producing the
    ``e x e`` outputs per tile.

    Supports stride-1, square-kernel, ``batch=1``, ``padding=0`` problems
    whose output extents are multiples of ``e`` (so every tile is full).
    """
    if not params.winograd_compatible():
        raise ValueError("winograd_dag requires stride 1 and a square kernel")
    if params.batch != 1 or params.padding != 0:
        raise ValueError("winograd_dag supports batch=1, padding=0 problems")
    if params.out_height % e or params.out_width % e:
        raise ValueError("output extents must be multiples of e for the DAG builder")
    r = params.ker_height
    t = e + r - 1
    tiles_h = params.out_height // e
    tiles_w = params.out_width // e

    dag = ComputationDAG(name=f"winograd[{params.describe()},e={e}]")

    input_ids: Dict[Tuple[int, int, int], int] = {}
    for c in range(params.in_channels):
        for h in range(params.in_height):
            for w in range(params.in_width):
                input_ids[(c, h, w)] = dag.add_input(label=f"x[{c},{h},{w}]")
    kernel_ids: Dict[Tuple[int, int, int, int], int] = {}
    for o in range(params.out_channels):
        for c in range(params.in_channels):
            for kh in range(r):
                for kw in range(r):
                    kernel_ids[(o, c, kh, kw)] = dag.add_input(
                        label=f"w[{o},{c},{kh},{kw}]"
                    )

    # Step 1a: transformed input tiles P[tile, c, i, j]; each element is a
    # linear combination of the whole t x t input tile at that channel.
    p_ids: Dict[Tuple[int, int, int, int, int], int] = {}
    for th in range(tiles_h):
        for tw in range(tiles_w):
            for c in range(params.in_channels):
                tile_leaves = [
                    input_ids[(c, th * e + i, tw * e + j)]
                    for i in range(t)
                    for j in range(t)
                ]
                for i in range(t):
                    for j in range(t):
                        p_ids[(th, tw, c, i, j)] = linear_combination_tree(
                            dag, tile_leaves, step=1, label=f"P[{th},{tw},{c},{i},{j}]"
                        )
    # Step 1b: transformed kernels J[o, c, i, j]; linear combinations of the
    # r x r kernel slice.
    j_ids: Dict[Tuple[int, int, int, int], int] = {}
    for o in range(params.out_channels):
        for c in range(params.in_channels):
            ker_leaves = [kernel_ids[(o, c, kh, kw)] for kh in range(r) for kw in range(r)]
            for i in range(t):
                for j in range(t):
                    j_ids[(o, c, i, j)] = linear_combination_tree(
                        dag, ker_leaves, step=1, label=f"J[{o},{c},{i},{j}]"
                    )

    # Steps 2-4 per (tile, output channel).
    for th in range(tiles_h):
        for tw in range(tiles_w):
            for o in range(params.out_channels):
                pi_ids: List[int] = []
                for i in range(t):
                    for j in range(t):
                        lam = [
                            dag.add_vertex(
                                "product",
                                step=2,
                                predecessors=(p_ids[(th, tw, c, i, j)], j_ids[(o, c, i, j)]),
                                label=f"L[{th},{tw},{o},{c},{i},{j}]",
                            )
                            for c in range(params.in_channels)
                        ]
                        pi_ids.append(
                            summation_tree(dag, lam, step=3, label=f"Pi[{th},{tw},{o},{i},{j}]")
                        )
                for oi in range(e):
                    for oj in range(e):
                        linear_combination_tree(
                            dag, pi_ids, step=4, label=f"y[{o},{th*e+oi},{tw*e+oj}]"
                        )

    dag.validate_multistep_partition()
    return dag


# ---------------------------------------------------------------------- #
# Matrix multiplication (validation baseline)
# ---------------------------------------------------------------------- #
def matmul_dag(n: int, m: int, k: int) -> ComputationDAG:
    """DAG of the classical ``C = A @ B`` with ``A (n x k)``, ``B (k x m)``.

    Step 1 creates the ``n*m*k`` scalar products, step 2 sums each output's
    ``k`` products in a summation tree — the same two-step structure as the
    direct convolution, which is why Hong & Kung's ``Ω(nmk/√S)`` bound drops
    out of the composite theory (see :mod:`repro.core.bounds.matmul`).
    """
    if min(n, m, k) <= 0:
        raise ValueError("matrix dimensions must be positive")
    if k < 2:
        raise ValueError("matmul_dag needs an inner dimension k >= 2")
    dag = ComputationDAG(name=f"matmul[{n}x{k}]x[{k}x{m}]")
    a_ids = [[dag.add_input(label=f"A[{i},{p}]") for p in range(k)] for i in range(n)]
    b_ids = [[dag.add_input(label=f"B[{p},{j}]") for j in range(m)] for p in range(k)]
    for i in range(n):
        for j in range(m):
            products = [
                dag.add_vertex(
                    "product",
                    step=1,
                    predecessors=(a_ids[i][p], b_ids[p][j]),
                    label=f"prod[{i},{j},{p}]",
                )
                for p in range(k)
            ]
            summation_tree(dag, products, step=2, label=f"C[{i},{j}]")
    dag.validate_multistep_partition()
    return dag
