#!/usr/bin/env python3
"""Concurrent tuning service demo: one model zoo, many concurrent clients.

Simulates a production tuning tier: several clients concurrently request
tuned configurations for the conv layers of a small model zoo.  The
:class:`~repro.service.TuningService`

* answers repeat layers from the shared tuning database (the default on-disk
  one: ``~/.cache/repro-tuning.json``, override with ``$REPRO_TUNING_DB``),
* coalesces identical in-flight requests so N clients asking for the same
  layer trigger exactly one search, and
* packs the measurement batches of the layers that do need tuning into
  shared batched-executor calls.

A second act demonstrates the **streaming worker pool**: the same
duplicate-heavy workload sharded over worker processes, once with
merge-at-end databases and once with mid-workload record streaming — the
streamed pool answers every cross-shard repeat from records the other
shards just produced, cutting the total measurement count.

Run with:  python examples/tuning_service_demo.py
"""

import threading

from repro.analysis import render_rows
from repro.core.autotune import TuningDatabase
from repro.obs import format_describe
from repro.gpusim import V100
from repro.nets import get_model
from repro.service import TuningRequest, TuningService, TuningWorkerPool

BUDGET = 48
NUM_CLIENTS = 3
POOL_WORKERS = 4


def main() -> None:
    database = TuningDatabase.default()
    service = TuningService(database=database)

    # Each "client" asks for every conv layer of its model; resnet18 layers
    # repeat heavily and squeezenet shares nothing, so the workload mixes
    # coalescing, database serving and genuinely new searches.
    zoo = ["resnet18", "squeezenet", "resnet18"][:NUM_CLIENTS]
    futures: list = []

    def client(model_name: str) -> None:
        for layer in get_model(model_name).layers:
            request = TuningRequest(
                layer.params(), V100, "direct", max_measurements=BUDGET, seed=0
            )
            futures.append(service.submit(request))

    threads = [threading.Thread(target=client, args=(m,)) for m in zoo]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    service.drain()

    rows = [
        {
            "request": f.request.params.describe(),
            "source": (
                "coalesced" if f.coalesced else ("database" if f.from_database else "tuned")
            ),
            "best (us)": round(f.result().best_time * 1e6, 2),
        }
        for f in futures[:12]
    ]
    print(render_rows(["request", "source", "best (us)"], rows))
    print(f"... {len(futures)} requests total\n")
    print(format_describe(service.describe()))
    saved = database.save()
    print(f"Tuning database: {format_describe(database.describe())} -> {saved}")

    streaming_pool_demo()


def streaming_pool_demo() -> None:
    """Same problems, sharded: merge-at-end pool vs streaming pool."""
    layers = [layer.params() for layer in get_model("squeezenet").layers[:POOL_WORKERS]]
    # Each layer requested under three seeds, rotated so a layer's variants
    # land in different shards: shard B's backlog repeats problems shard A
    # is tuning right now — exactly the redundancy streaming removes.
    workload = [
        TuningRequest(
            layers[(slot + row) % len(layers)], V100, "direct",
            max_measurements=BUDGET, seed=row + 1,
        )
        for row in range(3)
        for slot in range(len(layers))
    ]
    print(f"\nWorker pool, {len(workload)} requests over {POOL_WORKERS} shards:")
    for name, pool in (
        ("merge-at-end", TuningWorkerPool(num_workers=POOL_WORKERS, streaming=False)),
        ("streaming", TuningWorkerPool(num_workers=POOL_WORKERS, admit_window=1)),
    ):
        pool.tune(list(workload))
        print(f"  {name:>12}: {pool.stats.describe()}")


if __name__ == "__main__":
    main()
