#!/usr/bin/env python3
"""Concurrent tuning service demo: one model zoo, many concurrent clients.

Simulates a production tuning tier: several clients concurrently request
tuned configurations for the conv layers of a small model zoo.  The
:class:`~repro.service.TuningService`

* answers repeat layers from the shared tuning database (the default on-disk
  one: ``~/.cache/repro-tuning.json``, override with ``$REPRO_TUNING_DB``),
* coalesces identical in-flight requests so N clients asking for the same
  layer trigger exactly one search, and
* packs the measurement batches of the layers that do need tuning into
  shared batched-executor calls.

Run with:  python examples/tuning_service_demo.py
"""

import threading

from repro.analysis import render_rows
from repro.core.autotune import TuningDatabase
from repro.gpusim import V100
from repro.nets import get_model
from repro.service import TuningRequest, TuningService

BUDGET = 48
NUM_CLIENTS = 3


def main() -> None:
    database = TuningDatabase.default()
    service = TuningService(database=database)

    # Each "client" asks for every conv layer of its model; resnet18 layers
    # repeat heavily and squeezenet shares nothing, so the workload mixes
    # coalescing, database serving and genuinely new searches.
    zoo = ["resnet18", "squeezenet", "resnet18"][:NUM_CLIENTS]
    futures: list = []

    def client(model_name: str) -> None:
        for layer in get_model(model_name).layers:
            request = TuningRequest(
                layer.params(), V100, "direct", max_measurements=BUDGET, seed=0
            )
            futures.append(service.submit(request))

    threads = [threading.Thread(target=client, args=(m,)) for m in zoo]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    service.drain()

    rows = [
        {
            "request": f.request.params.describe(),
            "source": (
                "coalesced" if f.coalesced else ("database" if f.from_database else "tuned")
            ),
            "best (us)": round(f.result().best_time * 1e6, 2),
        }
        for f in futures[:12]
    ]
    print(render_rows(["request", "source", "best (us)"], rows))
    print(f"... {len(futures)} requests total\n")
    print(service.describe())
    saved = database.save()
    print(f"Tuning database: {database.describe()} -> {saved}")


if __name__ == "__main__":
    main()
