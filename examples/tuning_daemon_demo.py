#!/usr/bin/env python3
"""Always-on tuning daemon demo: submit, SIGKILL, restart, re-serve.

Walks the daemon's whole fault model in one sitting, against a journal in
a temp directory:

1. **Submit + tune** — a client submits two conv-tuning requests over the
   wire protocol; the daemon journals each *before* acknowledging, tunes
   them, and journals the results.
2. **SIGKILL** — the daemon dies with no drain, no snapshot, no flush.
   The client's next call fails with ``ConnectionError``.
3. **Restart + recover** — a fresh daemon on the same journal folds the
   log: finished requests are re-served **bit-identically with zero
   re-measurement**, and a request killed mid-flight is replayed to the
   same deterministic result.
4. **Admission control** — a rate-limited daemon pushes back with typed
   ``RETRY_AFTER`` rejections; the client backs off (advancing the
   injected fake clock) and eventually lands the request.  No hang, ever.
5. **Pool backend** — the same daemon fronts the streaming
   ``TuningWorkerPool`` (``backend=``): answers are bit-identical to the
   service backend, and the journal fault model is unchanged.

Everything runs over the deterministic in-process ``FakeTransport`` (the
same wire format as the ``AF_UNIX`` socket server — every op and reply
JSON round-trips), so the demo is reproducible and CI-safe; the pool act
uses the deterministic serial shards for the same reason.

Run with:  python examples/tuning_daemon_demo.py

``--daemonize`` appends the real-deployment act: double-fork a detached
daemon process (``repro.service.daemonize``) serving an ``AF_UNIX``
socket, tune through it with ``SocketTransport``, then SIGTERM it and
watch the graceful drain remove the pidfile.  Off by default so the demo
stays safe for sandboxed test runners.
"""

import sys
import tempfile
from pathlib import Path

from repro.conv import ConvParams
from repro.gpusim import V100
from repro.obs import FakeClock
from repro.service import (
    DaemonClient,
    FakeTransport,
    TuningDaemon,
    TuningRequest,
    TuningWorkerPool,
)

LAYER_A = ConvParams.square(14, 64, 64, kernel=3, stride=1, padding=1)
LAYER_B = ConvParams.square(8, 32, 48, kernel=3, stride=1, padding=1)
BUDGET = 32


def _request(params, seed=0):
    return TuningRequest(
        params, V100, max_measurements=BUDGET, seed=seed, pruned=False, tuner="random"
    )


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-daemon-"))
    journal = workdir / "requests.log"

    # -- act 1: submit and tune over the wire ---------------------------- #
    daemon = TuningDaemon(journal)
    transport = FakeTransport(daemon)
    client = DaemonClient(transport)

    rid_a = client.submit(_request(LAYER_A))
    rid_b = client.submit(_request(LAYER_B))
    result_a = client.result(rid_a)
    result_b = client.result(rid_b)
    print("act 1: submit + tune")
    print(f"  {rid_a[:12]}...  best {result_a.best_gflops:8.1f} GFLOP/s "
          f"({len(result_a.trials)} trials measured)")
    print(f"  {rid_b[:12]}...  best {result_b.best_gflops:8.1f} GFLOP/s "
          f"({len(result_b.trials)} trials measured)")
    print(f"  daemon: {daemon.stats.describe()}")

    # -- act 2: SIGKILL --------------------------------------------------- #
    transport.kill()
    daemon.kill()
    try:
        client.status(rid_a)
    except ConnectionError as exc:
        print(f"act 2: SIGKILL -> client sees: {exc}")

    # -- act 3: restart, recover, re-serve -------------------------------- #
    restarted = TuningDaemon(journal)
    transport.revive(restarted)
    served_a = client.result(rid_a)  # straight from the journal
    identical = [
        (t.index, t.config.as_dict(), t.time_seconds) for t in served_a.trials
    ] == [(t.index, t.config.as_dict(), t.time_seconds) for t in result_a.trials]
    print("act 3: restart + recover")
    print(f"  recovered {restarted.stats.recovered} journal entries "
          f"({restarted.stats.replayed} replayed)")
    print(f"  re-served result bit-identical: {identical}")
    print(f"  measurements taken by the restarted daemon: "
          f"{restarted.service.stats.measurements}")
    restarted.drain()
    restarted.close()

    # -- act 4: overload pushback + client backoff ------------------------ #
    clock = FakeClock()
    limited = TuningDaemon(
        workdir / "limited.log", clock=clock, rate_limit=1.0, burst=1
    )
    # Backoff sleeps advance the fake clock, refilling the token bucket.
    patient = DaemonClient(FakeTransport(limited), sleep=clock.advance)
    patient.submit(_request(LAYER_A))
    patient.submit(_request(LAYER_B))  # rejected RETRY_AFTER, retried, lands
    print("act 4: overload -> typed RETRY_AFTER -> backoff -> success")
    print(f"  client retries: {patient.retries}, "
          f"daemon rejections: {limited.stats.rejected_overload}, "
          f"accepted: {limited.stats.accepted}")
    limited.drain()
    limited.close()

    # -- act 5: the same front door over the streaming worker pool -------- #
    # Serial shards keep the act deterministic and CI-safe; a deployment
    # would drop `use_processes=False` for a real process fleet.
    pool = TuningWorkerPool(num_workers=2, use_processes=False)
    pooled = TuningDaemon(workdir / "pool.log", backend=pool)
    pool_client = DaemonClient(FakeTransport(pooled))
    pooled_a = pool_client.result(pool_client.submit(_request(LAYER_A)))
    identical = [
        (t.index, t.config.as_dict(), t.time_seconds) for t in pooled_a.trials
    ] == [(t.index, t.config.as_dict(), t.time_seconds) for t in result_a.trials]
    print("act 5: pool-backed daemon (backend='pool')")
    print(f"  pool result bit-identical to service backend: {identical}")
    counters = pooled.fleet_snapshot().counters
    print(f"  daemon.backend.submits: {counters['daemon.backend.submits']}, "
          f"pool.requests: {counters['pool.requests']}")
    pooled.drain()
    pooled.close()

    if "--daemonize" in sys.argv[1:]:
        daemonized_act(workdir)
    else:
        print("act 6: daemonized process wrapper (skipped; pass --daemonize)")


def daemonized_act(workdir: Path) -> None:
    """Real deployment shape: a detached daemon process behind a socket."""
    import os
    import signal
    import time

    from repro.service import SocketTransport, daemonize

    socket_path = workdir / "daemon.sock"
    pidfile = workdir / "daemon.pid"
    daemonize(
        workdir / "real.log",
        socket_path,
        pidfile,
        workdir / "daemon.out",
        backend="pool-serial",
        workers=2,
    )
    client = DaemonClient(SocketTransport(str(socket_path)))
    for _ in range(200):  # pacing loop, not a timing source
        try:
            client.ping()
            break
        except (ConnectionError, OSError):
            time.sleep(0.05)  # pacing, not a timing source
    result = client.submit_and_wait(_request(LAYER_A, seed=7))
    pid = int(pidfile.read_text())
    print("act 6: daemonized process wrapper")
    print(f"  detached pid {pid}, best {result.best_gflops:8.1f} GFLOP/s "
          f"over the unix socket")
    os.kill(pid, signal.SIGTERM)
    for _ in range(200):  # pacing loop, not a timing source
        if not pidfile.exists():
            break
        time.sleep(0.05)  # pacing, not a timing source
    print(f"  SIGTERM -> graceful drain, pidfile removed: "
          f"{not pidfile.exists()}")


if __name__ == "__main__":
    main()
