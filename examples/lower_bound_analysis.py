#!/usr/bin/env python3
"""Lower-bound analysis: pebble game measurements vs the composite theory.

Builds the explicit DAG of small direct convolutions (Figure 4 of the paper),
plays the red–blue pebble game with different fast-memory sizes and schedules,
and compares the measured I/O against Theorem 4.12's lower bound and against
the dataflow's closed-form volume.

Run with:  python examples/lower_bound_analysis.py
"""

from repro.analysis import render_rows
from repro.conv import ConvParams
from repro.core.bounds import DirectConvBound, direct_conv_io_lower_bound
from repro.core.dataflow import DirectDataflow
from repro.pebble import direct_conv_dag, greedy_schedule, play_schedule, simulate_topological


def small_dag_study() -> None:
    print("== Red-blue pebble game vs Theorem 4.12 (small DAGs) ==\n")
    rows = []
    for params in (
        ConvParams.square(4, 2, 2, kernel=3, stride=1),
        ConvParams.square(5, 2, 3, kernel=2, stride=1),
        ConvParams.square(6, 3, 2, kernel=3, stride=2),
    ):
        dag = direct_conv_dag(params)
        for capacity in (16, 32, 64):
            topo = simulate_topological(dag, capacity=capacity)
            greedy = play_schedule(dag, capacity, schedule=greedy_schedule(dag, capacity))
            bound = direct_conv_io_lower_bound(params, capacity)
            rows.append({
                "problem": params.describe(),
                "S": capacity,
                "Q topo": topo.io_operations,
                "Q greedy": greedy.io_operations,
                "lower bound": round(bound, 1),
                "greedy/bound": round(greedy.io_operations / bound, 2) if bound else float("inf"),
            })
    print(render_rows(["problem", "S", "Q topo", "Q greedy", "lower bound", "greedy/bound"], rows))


def layer_study() -> None:
    print("\n== Dataflow I/O vs lower bound on a real layer ==\n")
    params = ConvParams.square(56, in_channels=256, out_channels=128, kernel=3, stride=1, padding=1)
    bound = DirectConvBound(params)
    rows = []
    for s in (2048, 8192, 32768):
        df = DirectDataflow(params, s)
        rows.append({
            "S (elements)": s,
            "tile": df.tile.describe(),
            "lower bound": round(bound.io_lower_bound(s)),
            "dataflow I/O": round(df.io_volume().total),
            "ratio": round(df.io_volume().total / bound.io_lower_bound(s), 2),
        })
    print(render_rows(["S (elements)", "tile", "lower bound", "dataflow I/O", "ratio"], rows))
    print("\nBoth columns fall as 1/sqrt(S); the bounded ratio is the paper's "
          "near-optimality claim for the output-stationary dataflow.")


if __name__ == "__main__":
    small_dag_study()
    layer_study()
