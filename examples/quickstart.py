#!/usr/bin/env python3
"""Quickstart: convolutions, I/O lower bounds and the auto-tuner in ~60 lines.

Run with:  python examples/quickstart.py
"""

from repro.analysis import render_rows
from repro.conv import ConvParams, direct_conv2d, random_operands, winograd_conv2d, max_abs_error
from repro.core.bounds import direct_conv_io_lower_bound, winograd_io_lower_bound
from repro.core.dataflow import DirectDataflow, WinogradDataflow
from repro.core.autotune import AutoTuningEngine
from repro.gpusim import V100, CudnnLibrary


def main() -> None:
    # 1. Describe a convolution layer (ResNet-style 3x3, stride 1).
    params = ConvParams.square(28, in_channels=128, out_channels=128, kernel=3, stride=1, padding=1)
    print("Layer:", params.describe())

    # 2. Run the numerical algorithms and check they agree.
    x, w = random_operands(params, seed=0)
    reference = direct_conv2d(x, w, params)
    winograd = winograd_conv2d(x, w, params, e=2)
    print(f"Winograd vs direct max abs error: {max_abs_error(reference, winograd):.2e}")

    # 3. I/O lower bounds and the near-optimal dataflow volumes (Sections 4-5).
    fast_memory = 12288  # fp32 elements of shared memory per thread block
    rows = []
    rows.append({
        "algorithm": "direct",
        "lower bound (elements)": direct_conv_io_lower_bound(params, fast_memory),
        "dataflow I/O (elements)": DirectDataflow(params, fast_memory).io_volume().total,
    })
    rows.append({
        "algorithm": "winograd F(2x2,3x3)",
        "lower bound (elements)": winograd_io_lower_bound(params, 2, fast_memory),
        "dataflow I/O (elements)": WinogradDataflow(params, fast_memory, e=2).io_volume().total,
    })
    print()
    print(render_rows(["algorithm", "lower bound (elements)", "dataflow I/O (elements)"], rows))

    # 4. Auto-tune the direct-convolution template on the simulated V100 and
    #    compare against the cuDNN baseline (Section 6).
    engine = AutoTuningEngine(params, V100, algorithm="direct", max_measurements=64, seed=0)
    result = engine.tune()
    cudnn = CudnnLibrary(V100).run_best(params)
    print()
    print(f"ATE best configuration : {result.best_config.describe()}")
    print(f"ATE best runtime       : {result.best_time * 1e3:.3f} ms ({result.best_gflops:.0f} GFLOP/s)")
    print(f"cuDNN baseline         : {cudnn.time_seconds * 1e3:.3f} ms ({cudnn.gflops:.0f} GFLOP/s)")
    print(f"Speedup over cuDNN     : {cudnn.time_seconds / result.best_time:.2f}x "
          f"after {result.num_measurements} measurements "
          f"(search space: {result.space_size:,} configurations)")


if __name__ == "__main__":
    main()
