#!/usr/bin/env python3
"""Red–blue pebble game demo: DAGs, schedules, eviction policies, S-partitions.

Run with:  python examples/pebble_game_demo.py
"""

from repro.analysis import render_rows
from repro.conv import ConvParams
from repro.pebble import (
    direct_conv_dag,
    greedy_s_partition,
    greedy_schedule,
    matmul_dag,
    play_schedule,
    simulate_topological,
    winograd_dag,
)


def main() -> None:
    params = ConvParams.square(4, in_channels=2, out_channels=2, kernel=3, stride=1)
    dag = direct_conv_dag(params)
    print("Direct convolution DAG:", dag.summary(), "\n")

    rows = []
    for capacity in (12, 16, 32, 64):
        topo_belady = simulate_topological(dag, capacity=capacity, eviction="belady")
        topo_lru = simulate_topological(dag, capacity=capacity, eviction="lru")
        greedy = play_schedule(dag, capacity, schedule=greedy_schedule(dag, capacity))
        partition = greedy_s_partition(dag, capacity)
        rows.append({
            "S": capacity,
            "Q topo/belady": topo_belady.io_operations,
            "Q topo/lru": topo_lru.io_operations,
            "Q greedy": greedy.io_operations,
            "S-partition blocks": partition.num_blocks,
            "max block": partition.max_block_size(),
        })
    print(render_rows(
        ["S", "Q topo/belady", "Q topo/lru", "Q greedy", "S-partition blocks", "max block"], rows
    ))

    wparams = ConvParams.square(5, in_channels=2, out_channels=2, kernel=2, stride=1)
    wdag = winograd_dag(wparams, e=2)
    print("\nWinograd DAG:", wdag.summary())
    print("Winograd Q at S=48:", simulate_topological(wdag, capacity=48).describe())

    mdag = matmul_dag(6, 6, 6)
    print("\nMatmul DAG:", mdag.summary())
    print("Matmul Q at S=16:", simulate_topological(mdag, capacity=16).describe())


if __name__ == "__main__":
    main()
