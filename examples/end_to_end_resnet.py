#!/usr/bin/env python3
"""End-to-end CNN inference comparison (Figure 12 in miniature).

Estimates the total convolution time of ResNet-18 and SqueezeNet on two
simulated GPUs, using the paper's per-layer dataflow against the cuDNN
dispatcher.

Run with:  python examples/end_to_end_resnet.py
"""

from repro.analysis import render_rows
from repro.gpusim import GTX_1080TI, V100
from repro.nets import ModelRunner, get_model


def main() -> None:
    rows = []
    for spec in (V100, GTX_1080TI):
        runner = ModelRunner(spec, mode="analytic")
        for model_name in ("resnet18", "squeezenet"):
            timing = runner.time_model(get_model(model_name))
            rows.append({
                "GPU": spec.name,
                "model": timing.model,
                "ours (ms)": round(timing.ours_seconds * 1e3, 3),
                "cuDNN (ms)": round(timing.cudnn_seconds * 1e3, 3),
                "speedup": round(timing.speedup, 2),
            })
    print(render_rows(["GPU", "model", "ours (ms)", "cuDNN (ms)", "speedup"], rows))

    # Per-layer breakdown of the most-improved model on the V100.
    runner = ModelRunner(V100, mode="analytic")
    timing = runner.time_model(get_model("squeezenet"))
    print("\nPer-layer breakdown (SqueezeNet on V100):")
    layer_rows = [
        {
            "layer": t.layer.name,
            "algorithm": t.algorithm,
            "ours (us)": round(t.ours_seconds * 1e6, 1),
            "cuDNN (us)": round(t.cudnn_seconds * 1e6, 1),
            "speedup": round(t.speedup, 2),
        }
        for t in timing.layers
    ]
    print(render_rows(["layer", "algorithm", "ours (us)", "cuDNN (us)", "speedup"], layer_rows))


if __name__ == "__main__":
    main()
