#!/usr/bin/env python3
"""Auto-tune one convolution layer and compare tuners (Figure 11 in miniature).

Tunes AlexNet conv3 on the simulated V100 with the I/O-lower-bound-guided
engine (ATE) and with the TVM-style baseline, then prints both convergence
curves and the cuDNN reference.

ATE results persist in the default on-disk tuning database
(``~/.cache/repro-tuning.json``, override with ``$REPRO_TUNING_DB``): run the
example twice and the second ATE "search" is a zero-measurement cache hit.

Run with:  python examples/tune_conv_layer.py
"""

from repro.analysis import Series, render_series
from repro.core.autotune import AutoTuningEngine, TVMStyleTuner, TuningDatabase
from repro.obs import format_describe
from repro.gpusim import V100, CudnnLibrary
from repro.nets import alexnet

BUDGET = 96


def main() -> None:
    params = alexnet().layer("conv3").params()
    print("Tuning", params.describe(), "on", V100.describe())

    database = TuningDatabase.default()
    ate = AutoTuningEngine(
        params, V100, "direct", max_measurements=BUDGET, seed=1, database=database
    ).tune()
    tvm = TVMStyleTuner(params, V100, "direct", max_measurements=BUDGET, seed=1).tune()
    cudnn = CudnnLibrary(V100).run_direct(params)

    for name, result in (("ATE (pruned domain)", ate), ("TVM-style (full space)", tvm)):
        series = Series(name)
        for i, g in enumerate(result.best_gflops_curve(), start=1):
            series.append(i, g)
        print(render_series(series))
        print(
            f"    space={result.space_size:,} configs, best={result.best_gflops:.0f} GFLOP/s, "
            f"converged (99%) after {result.measurements_to_reach(0.99)} measurements"
        )
        print(f"    best config: {result.best_config.describe()}")

    print(f"\ncuDNN baseline: {cudnn.gflops:.0f} GFLOP/s")
    print(f"ATE speedup over cuDNN: {cudnn.time_seconds / ate.best_time:.2f}x")
    print(f"ATE speedup over TVM-style best: {tvm.best_time / ate.best_time:.2f}x")

    if ate.from_cache:
        print("\nATE result served from the tuning database (zero measurements).")
    saved = database.save()
    print(f"Tuning database: {format_describe(database.describe())} -> {saved}")


if __name__ == "__main__":
    main()
