# Convenience entry points. The tier-1 gate is `make test` — the same
# command CI runs (.github/workflows/ci.yml) and ROADMAP.md documents.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint reprolint stress daemonize-smoke bench bench-batched bench-service bench-explorer bench-store bench-daemon compare-bench

test:
	$(PYTHON) -m pytest -x -q

# Style/correctness lint (ruff) + repo-contract lint (reprolint); both gate
# the CI lint job.
lint:
	ruff check src tests benchmarks tools
	$(PYTHON) -m tools.reprolint

# AST-based invariant checker (tools/reprolint): determinism, locking,
# frozen-dataclass, session-purity and batched-path contracts.
reprolint:
	$(PYTHON) -m tools.reprolint

# Long-running stress tests (excluded from tier-1 by pytest.ini; CI runs
# them in a non-blocking job).
stress:
	$(PYTHON) -m pytest -m slow -q

# Full daemonised-wrapper lifecycle against a real process: double-fork
# start, a tuning submit over the unix socket via DaemonClient, SIGTERM,
# clean drain and pidfile removal (runs in the non-blocking stress CI job).
daemonize-smoke:
	$(PYTHON) -m pytest tests/test_daemonize.py -m slow -q

bench:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q -s

bench-batched:
	$(PYTHON) -m pytest benchmarks/bench_batched_measurement.py -q -s

bench-service:
	$(PYTHON) -m pytest benchmarks/bench_tuning_service.py -q -s

bench-explorer:
	$(PYTHON) -m pytest benchmarks/bench_explorer.py -q -s

bench-store:
	$(PYTHON) -m pytest benchmarks/bench_record_store.py -q -s

bench-daemon:
	$(PYTHON) -m pytest benchmarks/bench_daemon.py -q -s

# Diff the latest BENCH_*.json telemetry against benchmarks/bench_baseline.json
# (exit non-zero on regressions beyond the tolerance; CI runs it as a hard gate).
compare-bench:
	$(PYTHON) benchmarks/compare_bench.py --bench-dir .
