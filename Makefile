# Convenience entry points. The tier-1 gate is `make test` — the same
# command CI runs (.github/workflows/ci.yml) and ROADMAP.md documents.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-batched bench-service

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q -s

bench-batched:
	$(PYTHON) -m pytest benchmarks/bench_batched_measurement.py -q -s

bench-service:
	$(PYTHON) -m pytest benchmarks/bench_tuning_service.py -q -s
