"""Inline ``# reprolint: disable=...`` suppression comments.

Grammar (trailing free text after ``-`` is encouraged — say *why*)::

    # reprolint: disable=REPRO302 - intentional: asserting FrozenInstanceError
    # reprolint: disable=REPRO101,REPRO102
    # reprolint: disable=all

A suppression silences matching findings on its own line; a comment-only
line additionally silences the line below it, so long statements can carry
the suppression above them.  Unknown codes in a suppression are themselves
reported by the runner (an unknown code silences nothing — a typo must not
quietly disable a real rule).
"""

from __future__ import annotations

import re
import tokenize
from io import StringIO
from typing import Dict, List, Set, Tuple

_DIRECTIVE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+?)(?:\s+-\s.*)?$")

#: wildcard silencing every rule on the line.
ALL = "all"


def parse_suppressions(source: str) -> Tuple[Dict[int, Set[str]], List[Tuple[int, str]]]:
    """Extract suppression directives from ``source``.

    Returns ``(by_line, malformed)``: ``by_line`` maps a 1-based line number
    to the set of silenced codes on that line (comment-only directives are
    mapped onto the following line as well), and ``malformed`` lists
    ``(line, comment)`` pairs for comments that *look* like reprolint
    directives but do not parse — surfaced as findings so a broken
    suppression cannot silently stop suppressing.
    """
    by_line: Dict[int, Set[str]] = {}
    malformed: List[Tuple[int, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # The runner reports unparseable files separately (REPRO000).
        return by_line, malformed

    # Line numbers that hold any non-comment code, to spot comment-only lines.
    code_lines: Set[int] = set()
    for tok in tokens:
        if tok.type not in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            code_lines.add(tok.start[0])

    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        # A directive *attempt* has the tool name followed by a colon, or
        # pairs the tool name with the disable keyword; a passing mention of
        # e.g. the tool's package path in prose is not one.
        if not re.search(r"reprolint\s*:", tok.string) and not (
            "reprolint" in tok.string and "disable" in tok.string
        ):
            continue
        line = tok.start[0]
        match = _DIRECTIVE.search(tok.string)
        if not match:
            malformed.append((line, tok.string.strip()))
            continue
        codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
        if not codes:
            malformed.append((line, tok.string.strip()))
            continue
        by_line.setdefault(line, set()).update(codes)
        if line not in code_lines:
            # Comment-only directive: it governs the next line too.
            by_line.setdefault(line + 1, set()).update(codes)
    return by_line, malformed


def is_suppressed(by_line: Dict[int, Set[str]], line: int, code: str) -> bool:
    codes = by_line.get(line)
    return bool(codes) and (code in codes or ALL in codes)
