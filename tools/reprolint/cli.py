"""Command-line entry point (``python -m tools.reprolint``).

Exit status: 0 when no new findings (baselined/suppressed ones do not
count), 1 when new findings exist, 2 on usage errors — so ``make
reprolint`` and the CI lint job gate hard on new violations.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .baseline import DEFAULT_BASELINE_PATH, write_baseline
from .report import render_json, render_rules, render_text
from .runner import REPO_ROOT, run_paths

DEFAULT_PATHS = ("src", "tests", "benchmarks", "tools")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based checker for this repository's determinism, "
        "locking and batching contracts.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)} "
        "under the repository root)",
    )
    parser.add_argument(
        "--root",
        default=REPO_ROOT,
        help="repository root anchoring relative paths and rule scopes",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE_PATH,
        help="baseline file of grandfathered findings",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline (report grandfathered findings as new)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument(
        "--verbose", action="store_true", help="also list baselined findings"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        render_rules(sys.stdout)
        return 0

    root = os.path.abspath(args.root)
    paths = [
        p if os.path.isabs(p) else os.path.join(root, p)
        for p in (args.paths or DEFAULT_PATHS)
    ]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"reprolint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    if args.write_baseline:
        result = run_paths(paths, root=root, use_baseline=False)
        write_baseline(args.baseline, result.findings)
        print(
            f"reprolint: baseline written to {args.baseline} "
            f"({len(result.findings)} finding(s) grandfathered)"
        )
        return 0

    result = run_paths(
        paths,
        root=root,
        baseline_path=args.baseline,
        use_baseline=not args.no_baseline,
    )
    if args.format == "json":
        render_json(result, sys.stdout)
    else:
        render_text(result, sys.stdout, verbose=args.verbose)
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
