"""File discovery, parsing and rule orchestration.

:func:`run_paths` is the whole pipeline: discover ``*.py`` files under the
given paths, parse each into a :class:`FileContext`, build the cross-file
:class:`ProjectIndex` (pass 1 — e.g. the set of frozen dataclass names, so
the frozen-mutation rule can flag ``space.pruned = False`` in a *different*
file than the one defining ``SearchSpace``), run every registered rule over
every file it applies to (pass 2), drop inline-suppressed findings, and
split the rest against the baseline.
"""

from __future__ import annotations

import ast
import dataclasses
import os
from typing import Dict, List, Optional, Sequence, Set

from .baseline import DEFAULT_BASELINE_PATH, load_baseline, split_baselined
from .findings import Finding
from .registry import PARSE_ERROR_CODE, all_codes, all_rules
from .suppressions import is_suppressed, parse_suppressions
from . import astutil

#: repository root = two levels above this file (tools/reprolint/runner.py).
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

#: directories never descended into during discovery.
_SKIP_DIRS = {".git", "__pycache__", ".ruff_cache", ".pytest_cache", "build", "dist"}


class FileContext:
    """One parsed source file plus its suppression table."""

    def __init__(self, path: str, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.parse_error = exc
        self.suppressions, self.malformed_directives = parse_suppressions(source)

    @classmethod
    def read(cls, path: str, root: str) -> "FileContext":
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        try:
            relpath = os.path.relpath(path, root)
        except ValueError:  # pragma: no cover - different drive (Windows)
            relpath = path
        if relpath.startswith(".."):
            relpath = path  # outside the root: keep the path as given
        return cls(path=path, relpath=relpath.replace(os.sep, "/"), source=source)

    # ------------------------------------------------------------------ #
    def finding(self, code: str, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Finding(
            code=code,
            path=self.relpath,
            line=line,
            col=col,
            message=message,
            snippet=snippet,
        )

    def suppressed(self, finding: Finding) -> bool:
        return is_suppressed(self.suppressions, finding.line, finding.code)


class ProjectIndex:
    """Cross-file facts collected before any rule runs."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        #: names of classes declared ``@dataclass(frozen=True)`` anywhere in
        #: the scanned set (plus stdlib-frozen names rules may assume).
        self.frozen_classes: Set[str] = set()
        for ctx in contexts:
            if ctx.tree is None:
                continue
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef) and astutil.is_frozen_dataclass(node):
                    self.frozen_classes.add(node.name)


@dataclasses.dataclass
class LintResult:
    """Outcome of one :func:`run_paths` invocation."""

    findings: List[Finding]  # new findings (fail the run)
    baselined: List[Finding]  # grandfathered by the baseline file
    suppressed: int  # count of inline-suppressed findings
    files: int  # files scanned

    @property
    def ok(self) -> bool:
        return not self.findings


def discover(paths: Sequence[str]) -> List[str]:
    """All ``*.py`` files under ``paths`` (files pass through), sorted."""
    out: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                out.add(os.path.abspath(path))
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for name in filenames:
                if name.endswith(".py"):
                    out.add(os.path.abspath(os.path.join(dirpath, name)))
    return sorted(out)


def run_paths(
    paths: Sequence[str],
    root: Optional[str] = None,
    baseline_path: Optional[str] = None,
    use_baseline: bool = True,
) -> LintResult:
    """Lint ``paths`` and return the partitioned findings.

    ``root`` anchors repo-relative paths (defaults to this repository's
    root) — rule scopes like "``src/`` only" and baseline fingerprints are
    expressed in root-relative terms, which is also what makes the fixture
    tests hermetic: they point ``root`` at a temp directory shaped like the
    repo.
    """
    root = os.path.abspath(root or REPO_ROOT)
    files = discover(paths)
    contexts = [FileContext.read(path, root) for path in files]
    project = ProjectIndex(contexts)
    rules = all_rules()
    known = all_codes()

    raw: List[Finding] = []
    for ctx in contexts:
        if ctx.parse_error is not None:
            exc = ctx.parse_error
            raw.append(
                Finding(
                    code=PARSE_ERROR_CODE,
                    path=ctx.relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                    snippet=(exc.text or "").strip(),
                )
            )
            continue
        for line, comment in ctx.malformed_directives:
            raw.append(
                Finding(
                    code=PARSE_ERROR_CODE,
                    path=ctx.relpath,
                    line=line,
                    col=0,
                    message=f"malformed reprolint directive: {comment!r}",
                    snippet=comment,
                )
            )
        unknown: Dict[str, int] = {}
        for ln, codes in ctx.suppressions.items():
            for code in codes:
                if code != "all" and code != PARSE_ERROR_CODE and code not in known:
                    unknown[code] = min(ln, unknown.get(code, ln))
        for code in sorted(unknown):
            raw.append(
                Finding(
                    code=PARSE_ERROR_CODE,
                    path=ctx.relpath,
                    line=unknown[code],
                    col=0,
                    message=f"suppression names unknown rule {code!r}",
                    snippet=code,
                )
            )
        for rule in rules:
            if rule.applies_to(ctx.relpath):
                raw.extend(rule.check(ctx, project))

    by_path: Dict[str, FileContext] = {ctx.relpath: ctx for ctx in contexts}
    kept: List[Finding] = []
    suppressed = 0
    for finding in raw:
        ctx = by_path.get(finding.path)
        if ctx is not None and ctx.suppressed(finding):
            suppressed += 1
        else:
            kept.append(finding)
    kept.sort(key=Finding.sort_key)

    if use_baseline:
        baseline = load_baseline(baseline_path or DEFAULT_BASELINE_PATH)
        new, baselined = split_baselined(kept, baseline)
    else:
        new, baselined = kept, []
    return LintResult(
        findings=new, baselined=baselined, suppressed=suppressed, files=len(contexts)
    )
