"""Checked-in baseline of grandfathered findings.

The baseline lets the linter land as a hard gate even when pre-existing
violations remain: findings whose :meth:`~tools.reprolint.findings.Finding.fingerprint`
appears in the baseline are reported as *baselined* and do not fail the run;
anything new does.  Fingerprints hash ``(code, path, source line)`` — not
line numbers — so unrelated edits that shift a file do not invalidate the
baseline.  Because textually identical violations share a fingerprint, the
file stores a **count** per fingerprint and matching findings are
grandfathered up to that count (the oldest-by-location first).

The repository policy is to keep this file empty: fix real violations,
suppress intentional ones inline with a reason.  The baseline exists for
emergencies (landing the tool over a large legacy surface) and is
regenerated with ``python -m tools.reprolint --write-baseline``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence, Tuple

from .findings import Finding

_FORMAT_VERSION = 1

DEFAULT_BASELINE_PATH = os.path.join(os.path.dirname(__file__), "baseline.json")


def load_baseline(path: str) -> Dict[str, int]:
    """Load ``path`` -> {fingerprint: count}; a missing file is empty."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if (
        not isinstance(payload, dict)
        or payload.get("version") != _FORMAT_VERSION
        or not isinstance(payload.get("findings"), dict)
    ):
        raise ValueError(
            f"{path}: expected {{'version': {_FORMAT_VERSION}, "
            "'findings': {fingerprint: count}}"
        )
    findings = payload["findings"]
    out: Dict[str, int] = {}
    for fingerprint, count in findings.items():
        if not isinstance(count, int) or count < 1:
            raise ValueError(f"{path}: bad count {count!r} for {fingerprint!r}")
        out[str(fingerprint)] = count
    return out


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Persist ``findings`` as the new baseline (sorted, deterministic)."""
    counts: Dict[str, int] = {}
    for finding in findings:
        fp = finding.fingerprint()
        counts[fp] = counts.get(fp, 0) + 1
    payload = {
        "version": _FORMAT_VERSION,
        "findings": {fp: counts[fp] for fp in sorted(counts)},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")


def split_baselined(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition ``findings`` into ``(new, baselined)``.

    Findings are consumed against the baseline counts in location order, so
    with N baselined copies of a line and N+1 present, exactly one is new.
    """
    budget = dict(baseline)
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in sorted(findings, key=Finding.sort_key):
        fp = finding.fingerprint()
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined
