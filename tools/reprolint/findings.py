"""The :class:`Finding` record every rule emits.

A finding pins a rule code to a source location.  Its :meth:`fingerprint`
deliberately hashes the *source line text* instead of the line number, so a
baselined finding survives unrelated edits that merely shift the file — the
same stability trick ``ruff``'s and ``pylint``'s baselines use.  Two
identical violations on textually identical lines of the same file share a
fingerprint; the baseline therefore stores fingerprint *counts*, not sets
(see :mod:`tools.reprolint.baseline`).
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str  # stable rule ID, e.g. "REPRO201"
    path: str  # repository-relative POSIX path
    line: int  # 1-based
    col: int  # 0-based, as reported by ast
    message: str
    snippet: str = ""  # the stripped source line (fingerprint input)

    def fingerprint(self) -> str:
        """Location-independent identity used by the baseline file."""
        payload = f"{self.code}::{self.path}::{self.snippet}"
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }

    def sort_key(self):
        return (self.path, self.line, self.col, self.code)
