"""Text and JSON rendering of a :class:`~tools.reprolint.runner.LintResult`."""

from __future__ import annotations

import json
from typing import IO

from .registry import all_codes, all_rules
from .runner import LintResult


def render_text(result: LintResult, stream: IO[str], verbose: bool = False) -> None:
    for finding in result.findings:
        stream.write(finding.render() + "\n")
    if verbose:
        for finding in result.baselined:
            stream.write(f"baselined {finding.render()}\n")
    summary = (
        f"reprolint: {len(result.findings)} new finding(s), "
        f"{len(result.baselined)} baselined, {result.suppressed} suppressed "
        f"across {result.files} file(s)"
    )
    stream.write(summary + "\n")


def render_json(result: LintResult, stream: IO[str]) -> None:
    payload = {
        "findings": [f.to_dict() for f in result.findings],
        "baselined": [f.to_dict() for f in result.baselined],
        "suppressed": result.suppressed,
        "files": result.files,
        "ok": result.ok,
    }
    json.dump(payload, stream, indent=1, sort_keys=True)
    stream.write("\n")


def render_rules(stream: IO[str]) -> None:
    """The rule catalogue (``--list-rules``)."""
    for rule in all_rules():
        stream.write(f"{rule.name}\n")
        for code in sorted(rule.codes):
            stream.write(f"  {code}  {rule.codes[code]}\n")
    stream.write(f"{len(all_rules())} rules, {len(all_codes())} codes\n")
