"""Small shared AST helpers used by several rules."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set


def attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted name of an attribute chain rooted at a Name, else ``None``.

    ``np.random.default_rng`` -> ``"np.random.default_rng"``;
    anything rooted at a call/subscript (``a().b``) returns ``None``.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local alias -> imported module for ``import``/``import .. as ..``.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``import numpy.random`` -> ``{"numpy": "numpy"}`` (the binding is the
    root package).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    aliases[alias.name.split(".")[0]] = alias.name.split(".")[0]
    return aliases


def from_imports(tree: ast.Module) -> Dict[str, str]:
    """Map local name -> ``module.name`` for every ``from m import n [as a]``."""
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                names[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return names


def is_frozen_dataclass(node: ast.ClassDef) -> bool:
    """True for ``@dataclass(frozen=True)`` / ``@dataclasses.dataclass(frozen=True)``."""
    for deco in node.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        chain = attr_chain(deco.func)
        if chain is None or chain.split(".")[-1] != "dataclass":
            continue
        for kw in deco.keywords:
            if (
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
    return False


def is_self_attr(node: ast.AST, attr: Optional[str] = None) -> bool:
    """True for ``self.<attr>`` (any attribute when ``attr`` is None)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def class_methods(node: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    """The class's directly defined (a)sync methods, in source order."""
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


def defined_names(node: ast.ClassDef) -> Set[str]:
    """Names bound by ``def``/``class`` statements directly in the class body."""
    return {
        stmt.name
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    }


def has_decorator(func: ast.FunctionDef, name: str) -> bool:
    for deco in func.decorator_list:
        chain = attr_chain(deco.func if isinstance(deco, ast.Call) else deco)
        if chain is not None and chain.split(".")[-1] == name:
            return True
    return False


def call_is_seeded(call: ast.Call) -> bool:
    """Whether an RNG constructor call pins its stream explicitly.

    Any positional argument other than a literal ``None`` counts (a seed, a
    ``SeedSequence``, a spawned child, a bit generator), as does a
    ``seed=``/``x=`` keyword; bare calls and explicit ``None`` mean "seed
    from OS entropy" — the nondeterminism the rule bans.
    """
    for arg in call.args:
        if isinstance(arg, ast.Starred):
            return True  # *args: cannot prove it's empty — do not flag
        if not (isinstance(arg, ast.Constant) and arg.value is None):
            return True
    for kw in call.keywords:
        if kw.arg is None:  # **kwargs: cannot prove absence of a seed
            return True
        if kw.arg in ("seed", "x", "entropy"):
            if not (isinstance(kw.value, ast.Constant) and kw.value.value is None):
                return True
    return False
