"""Rule base class and the global rule registry.

A rule is a class with a ``codes`` table (rule ID -> one-line contract
description — one rule may own several closely related codes, e.g. the RNG
rule separates *unseeded* from *global-state* findings), an
:meth:`Rule.applies_to` path filter, and a :meth:`Rule.check` that walks one
parsed file and returns findings.  Decorating the class with
:func:`register` adds one instance to the registry the runner iterates;
rule modules under :mod:`tools.reprolint.rules` register themselves on
import.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Type

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .findings import Finding
    from .runner import FileContext, ProjectIndex

#: code reserved for unparseable files (emitted by the runner, not a rule).
PARSE_ERROR_CODE = "REPRO000"


class Rule:
    """Base class for reprolint rules."""

    #: human-readable rule family name, e.g. "rng-discipline".
    name: str = ""
    #: rule ID -> one-line description of the contract it enforces.
    codes: Dict[str, str] = {}

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule runs on the file at repo-relative ``relpath``."""
        return True

    def check(self, ctx: "FileContext", project: "ProjectIndex") -> List["Finding"]:
        raise NotImplementedError


_RULES: List[Rule] = []


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and add a rule to the registry."""
    if not cls.name or not cls.codes:
        raise ValueError(f"rule {cls.__name__} must define 'name' and 'codes'")
    known = all_codes()
    for code in cls.codes:
        if code in known:
            raise ValueError(f"duplicate rule code {code} ({cls.__name__})")
    _RULES.append(cls())
    return cls


def all_rules() -> List[Rule]:
    """Registered rules, in registration order (imports the rule modules)."""
    from . import rules  # noqa: F401  (import side effect: registration)

    return list(_RULES)


def all_codes() -> Dict[str, str]:
    """Every known rule ID -> description (without importing rule modules)."""
    merged: Dict[str, str] = {}
    for rule in _RULES:
        merged.update(rule.codes)
    return merged
