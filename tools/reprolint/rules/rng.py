"""REPRO101/REPRO102 — RNG discipline.

The repository's bit-identity guarantees (a service-driven session equals
``tune_direct()`` bit-for-bit; explorer streams are data-independent) hold
because every random stream is an explicitly seeded generator object owned
by a session/explorer.  Two patterns break that silently:

* **REPRO101 (unseeded generator)** — ``random.Random()``,
  ``np.random.default_rng()`` / ``SeedSequence()`` / bit generators called
  without an explicit seed draw from OS entropy; two runs diverge.
* **REPRO102 (global-state RNG)** — module-level ``random.*`` /
  ``np.random.*`` calls (``random.random()``, ``np.random.shuffle`` …)
  share one hidden global stream, so any unrelated consumer (another
  thread, an imported library, a test running earlier) shifts every later
  draw.  ``random.SystemRandom`` is flagged here too: it is *designed* to
  be unseedable.

Applies everywhere (``src``/``tests``/``benchmarks``/``tools``): a test
drawing from the global stream is order-dependent, which is exactly the
flakiness class tier-1 must not admit.
"""

from __future__ import annotations

import ast
from typing import List

from .. import astutil
from ..findings import Finding
from ..registry import Rule, register
from ..runner import FileContext, ProjectIndex

#: numpy.random attributes that construct an independent generator and are
#: fine *when seeded*; everything else on numpy.random is global state.
_NP_CONSTRUCTORS = {
    "default_rng",
    "SeedSequence",
    "Generator",
    "RandomState",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}

#: modules whose bare attribute calls mean the hidden global stream.
_RANDOM_MODULES = {"random", "numpy.random"}


@register
class RngDisciplineRule(Rule):
    name = "rng-discipline"
    codes = {
        "REPRO101": (
            "RNG constructed without an explicit seed (breaks run-to-run "
            "bit-identity); pass a seed/SeedSequence"
        ),
        "REPRO102": (
            "global-state RNG call (hidden shared stream; order-dependent); "
            "use an explicitly seeded random.Random/np.random.default_rng"
        ),
    }

    def check(self, ctx: FileContext, project: ProjectIndex) -> List[Finding]:
        tree = ctx.tree
        assert tree is not None
        aliases = astutil.module_aliases(tree)
        imported = astutil.from_imports(tree)
        findings: List[Finding] = []

        def classify(call: ast.Call) -> None:
            target = self._resolve(call.func, aliases, imported)
            if target is None:
                return
            module, attr = target
            if module == "random":
                if attr == "Random":
                    if not astutil.call_is_seeded(call):
                        findings.append(
                            ctx.finding(
                                "REPRO101",
                                call,
                                "random.Random() without an explicit seed",
                            )
                        )
                elif attr == "SystemRandom":
                    findings.append(
                        ctx.finding(
                            "REPRO102",
                            call,
                            "random.SystemRandom is unseedable OS entropy",
                        )
                    )
                else:
                    findings.append(
                        ctx.finding(
                            "REPRO102",
                            call,
                            f"random.{attr}() draws from the hidden global stream",
                        )
                    )
            elif module == "numpy.random":
                if attr in _NP_CONSTRUCTORS:
                    if attr != "Generator" and not astutil.call_is_seeded(call):
                        findings.append(
                            ctx.finding(
                                "REPRO101",
                                call,
                                f"np.random.{attr}() without an explicit seed",
                            )
                        )
                else:
                    findings.append(
                        ctx.finding(
                            "REPRO102",
                            call,
                            f"np.random.{attr}() mutates numpy's global RNG state",
                        )
                    )

        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                classify(node)
        return findings

    # ------------------------------------------------------------------ #
    @staticmethod
    def _resolve(func: ast.AST, aliases, imported):
        """Map a call target onto ``(rng module, attribute)`` if it is one.

        Handles ``random.x`` / ``np.random.x`` attribute chains through
        module aliases and ``from random import x`` / ``from numpy.random
        import x`` bindings (aliased or not).
        """
        chain = astutil.attr_chain(func)
        if chain is None:
            return None
        head, _, rest = chain.partition(".")
        if rest and head in aliases:
            dotted = f"{aliases[head]}.{rest}"
            for module in _RANDOM_MODULES:
                prefix = module + "."
                if dotted.startswith(prefix) and "." not in dotted[len(prefix):]:
                    return module, dotted[len(prefix):]
            return None
        if not rest and head in imported:
            dotted = imported[head]
            module, _, attr = dotted.rpartition(".")
            if module in _RANDOM_MODULES:
                return module, attr
        return None
