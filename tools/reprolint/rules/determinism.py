"""REPRO601/REPRO602/REPRO701 — nondeterminism and clock-discipline bans.

The tuning core (``src/repro/core/`` and the simulator ``src/repro/gpusim/``)
is a pure function of its inputs: that is what makes trajectories
property-testable, service runs bit-identical to ``tune_direct()``, and the
Figure 11 benchmarks reproducible.  Two nondeterminism leaks are banned:

* **REPRO601 (wall clock)** — ``time.time``/``perf_counter``/``monotonic``/
  ``datetime.now`` … inside the core.  Timing belongs to benchmarks and
  drivers; a clock read inside search/measure either influences results
  (nondeterminism) or is dead code.
* **REPRO602 (environment read)** — ``os.environ``/``os.getenv`` inside the
  core makes behaviour depend on ambient shell state that no test pins.
  Config-time reads with a documented contract (the
  ``$REPRO_TUNING_DB`` database-path resolution) carry inline suppressions
  with a reason — the rule keeps the *default* no.

**REPRO701 (clock discipline)** generalises the wall-clock half repo-wide:
every direct clock read anywhere in the repository — benchmarks, tests and
tools included — must go through the one sanctioned edge,
``src/repro/obs/clock.py`` (:class:`repro.obs.MonotonicClock` and friends).
That keeps "who reads the clock" a one-file audit, lets any timing consumer
take a ``FakeClock`` in tests, and stops new wall-clock reads from creeping
toward the core one directory at a time.  ``time.sleep`` is a *pacing* call,
not a clock read, and stays allowed.  The core scopes are excluded here only
because REPRO601 already reports them (one finding per read, not two).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from .. import astutil
from ..findings import Finding
from ..registry import Rule, register
from ..runner import FileContext, ProjectIndex

_SCOPES = ("src/repro/core/", "src/repro/gpusim/")

_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("time", "process_time_ns"),
}
_DATETIME_ATTRS = {"now", "utcnow", "today"}

#: the one file allowed to read the clock (REPRO701's sanctioned edge).
_CLOCK_EDGE = "src/repro/obs/clock.py"


def _resolve_call(node: ast.AST, aliases, imported) -> Optional[Tuple[str, str]]:
    """``(module, attr)`` for a call through an alias or from-import."""
    if not isinstance(node, ast.Call):
        return None
    chain = astutil.attr_chain(node.func)
    if chain is None:
        return None
    head, _, rest = chain.partition(".")
    if rest and "." not in rest and head in aliases:
        return aliases[head], rest
    if not rest and head in imported:
        module, _, attr = imported[head].rpartition(".")
        return module, attr
    return None


def _clock_call(node: ast.AST, aliases, imported) -> Optional[str]:
    """Dotted name of the clock read at ``node``, or ``None``."""
    resolved = _resolve_call(node, aliases, imported)
    if resolved in _CLOCK_CALLS:
        return ".".join(resolved)
    # datetime.datetime.now() / date.today() style constructors.
    if isinstance(node, ast.Call):
        chain = astutil.attr_chain(node.func)
        if chain is not None:
            parts = chain.split(".")
            if parts[-1] in _DATETIME_ATTRS and (
                "datetime" in parts[:-1] or "date" in parts[:-1]
            ):
                return chain
    return None


@register
class CoreDeterminismRule(Rule):
    name = "core-determinism"
    codes = {
        "REPRO601": (
            "wall-clock read inside the search/measure core (results become "
            "timing-dependent); timing belongs to benchmarks/drivers"
        ),
        "REPRO602": (
            "environment read inside the search/measure core (behaviour "
            "depends on ambient shell state); thread configuration through "
            "parameters"
        ),
    }

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith(_SCOPES)

    def check(self, ctx: FileContext, project: ProjectIndex) -> List[Finding]:
        tree = ctx.tree
        assert tree is not None
        aliases = astutil.module_aliases(tree)
        imported = astutil.from_imports(tree)
        findings: List[Finding] = []

        for node in ast.walk(tree):
            clock = _clock_call(node, aliases, imported)
            if clock is not None:
                findings.append(
                    ctx.finding(
                        "REPRO601", node, f"wall-clock read '{clock}' in core code"
                    )
                )
                continue
            env = self._env_read(node, aliases, imported)
            if env is not None:
                findings.append(
                    ctx.finding(
                        "REPRO602", node, f"environment read '{env}' in core code"
                    )
                )
        return findings

    # ------------------------------------------------------------------ #
    def _env_read(self, node: ast.AST, aliases, imported) -> Optional[str]:
        resolved = _resolve_call(node, aliases, imported)
        if resolved is not None and resolved[0] == "os" and resolved[1] == "getenv":
            return "os.getenv"
        # os.environ in any expression position (subscript, .get, iteration).
        if isinstance(node, ast.Attribute) and node.attr == "environ":
            chain = astutil.attr_chain(node)
            if chain is not None:
                head = chain.split(".")[0]
                if aliases.get(head) == "os":
                    return "os.environ"
        if isinstance(node, ast.Name) and node.id in imported:
            if imported[node.id] == "os.environ" and isinstance(node.ctx, ast.Load):
                return "os.environ"
        return None
    # note: ``environ.get(...)`` produces one finding for the Attribute node
    # ``os.environ`` itself; the enclosing call is not double-reported
    # because ``environ`` != ``getenv`` at the call resolution above.


@register
class ClockDisciplineRule(Rule):
    name = "clock-discipline"
    codes = {
        "REPRO701": (
            "direct clock read outside src/repro/obs/clock.py; construct a "
            "repro.obs clock (MonotonicClock at real edges, FakeClock in "
            "tests) and read through it"
        ),
    }

    def applies_to(self, relpath: str) -> bool:
        # The core scopes stay with REPRO601 (same read, older code, one
        # finding); the clock module itself is the sanctioned edge.
        if relpath.startswith(_SCOPES) or relpath == _CLOCK_EDGE:
            return False
        return True

    def check(self, ctx: FileContext, project: ProjectIndex) -> List[Finding]:
        tree = ctx.tree
        assert tree is not None
        aliases = astutil.module_aliases(tree)
        imported = astutil.from_imports(tree)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            clock = _clock_call(node, aliases, imported)
            if clock is not None:
                findings.append(
                    ctx.finding(
                        "REPRO701",
                        node,
                        f"direct clock read '{clock}' bypasses repro.obs.clock",
                    )
                )
        return findings
