"""Rule modules; importing this package registers every rule.

Rule ID map (one family per module):

* ``REPRO101``/``REPRO102`` — :mod:`.rng` (RNG discipline)
* ``REPRO201`` — :mod:`.locking` (lock discipline)
* ``REPRO301``/``REPRO302`` — :mod:`.frozen` (frozen-dataclass mutation)
* ``REPRO401``/``REPRO402`` — :mod:`.sessions` (session purity)
* ``REPRO501`` — :mod:`.batching` (batched-path enforcement)
* ``REPRO601``/``REPRO602`` — :mod:`.determinism` (nondeterminism ban)
"""

from . import batching, determinism, frozen, locking, rng, sessions  # noqa: F401
