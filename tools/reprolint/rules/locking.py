"""REPRO201 — lock discipline: a lightweight race detector.

Classes that create ``self._lock`` in ``__init__`` (``TuningDatabase``,
``TuningService``) promise that their shared mutable state is only touched
under that lock.  The rule infers the guarded attribute set per class — the
``self.<attr>`` names accessed anywhere inside a ``with self._lock:`` block
(the record map, the revision counter, the change log, the active-run list,
the stats counters), minus the class's own methods/properties, which take
the lock themselves — and then flags any access to a guarded attribute that
happens *outside* a ``with self._lock:`` block.

Escape hatches, both deliberate:

* ``__init__`` is exempt (the object is not shared during construction);
* a method whose docstring contains ``"lock held"`` is exempt — the
  repository's existing convention for private helpers that document they
  are only called with the lock already taken (``TuningService._finalize``
  / ``_fail``).  The docstring is the contract; the rule makes dropping it
  a lint failure the moment the helper touches guarded state.

Scoped to ``src/``: the production classes live there, and test helpers
often poke state without locks on purpose.
"""

from __future__ import annotations

import ast
from typing import List, Set

from .. import astutil
from ..findings import Finding
from ..registry import Rule, register
from ..runner import FileContext, ProjectIndex

_LOCK_ATTR = "_lock"
_HELD_MARKER = "lock held"


def _creates_lock(cls: ast.ClassDef) -> bool:
    for method in astutil.class_methods(cls):
        if method.name != "__init__":
            continue
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and any(
                astutil.is_self_attr(t, _LOCK_ATTR) for t in node.targets
            ):
                return True
    return False


def _is_lock_with(node: ast.With) -> bool:
    return any(
        astutil.is_self_attr(item.context_expr, _LOCK_ATTR) for item in node.items
    )


def _walk_lock_regions(node: ast.AST, locked: bool, visit) -> None:
    """Depth-first walk calling ``visit(node, locked)``; ``with self._lock``
    bodies flip ``locked``; nested classes are not descended into (their
    ``self`` is a different object)."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.ClassDef):
            continue
        child_locked = locked
        if isinstance(child, ast.With) and _is_lock_with(child):
            # The with-items themselves (the lock lookup) run unlocked, the
            # body runs locked; visiting the items as unlocked is fine
            # because ``_lock`` itself is never a guarded attribute.
            child_locked = True
        visit(child, child_locked)
        _walk_lock_regions(child, child_locked, visit)


def _has_held_marker(method: ast.FunctionDef) -> bool:
    doc = ast.get_docstring(method)
    return doc is not None and _HELD_MARKER in doc.lower()


@register
class LockDisciplineRule(Rule):
    name = "lock-discipline"
    codes = {
        "REPRO201": (
            "attribute guarded by self._lock accessed outside a 'with "
            "self._lock' block (data race); take the lock or document the "
            "method as called with the lock held"
        ),
    }

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/")

    def check(self, ctx: FileContext, project: ProjectIndex) -> List[Finding]:
        tree = ctx.tree
        assert tree is not None
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and _creates_lock(node):
                findings.extend(self._check_class(ctx, node))
        return findings

    # ------------------------------------------------------------------ #
    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> List[Finding]:
        methods = [
            m
            for m in astutil.class_methods(cls)
            if m.args.args and m.args.args[0].arg == "self"
        ]
        own_names = astutil.defined_names(cls)

        # Pass 1: the guarded set — self attributes touched under the lock.
        guarded: Set[str] = set()

        def collect(node: ast.AST, locked: bool) -> None:
            if locked and astutil.is_self_attr(node):
                if node.attr != _LOCK_ATTR and node.attr not in own_names:
                    guarded.add(node.attr)

        for method in methods:
            _walk_lock_regions(method, locked=False, visit=collect)
        if not guarded:
            return []

        # Pass 2: flag guarded-attribute accesses outside the lock.
        findings: List[Finding] = []
        for method in methods:
            if method.name == "__init__" or _has_held_marker(method):
                continue

            def flag(node: ast.AST, locked: bool, method=method) -> None:
                if (
                    not locked
                    and astutil.is_self_attr(node)
                    and node.attr in guarded
                ):
                    findings.append(
                        ctx.finding(
                            "REPRO201",
                            node,
                            f"'self.{node.attr}' of lock-guarded class "
                            f"'{cls.name}' is accessed outside 'with "
                            f"self.{_LOCK_ATTR}' in method '{method.name}'",
                        )
                    )

            _walk_lock_regions(method, locked=False, visit=flag)
        return findings
