"""REPRO401/REPRO402 — session purity.

Every tuner runs as a step-wise session behind
``TuningSessionProtocol`` (``propose() -> configs`` / ``update(configs,
executions)`` / ``finished`` / ``result``).  Two things keep the
service-driven trajectories bit-identical to ``tune_direct()``:

* **REPRO401 (protocol shape)** — a class that offers ``propose`` *and*
  ``update`` is a session implementation and must expose the full protocol
  with the right shapes: ``propose(self)`` with no required extra
  parameters, ``update(self, configs, executions)`` with exactly two, a
  ``finished`` property/method, and a ``result`` attribute (assigned in
  ``__init__`` or class-annotated).  A shape drift compiles fine and only
  explodes when the service schedules the session.
* **REPRO402 (no mid-run database consult)** — sessions own all RNG and
  never look at the shared ``TuningDatabase``; lookups/stores are the
  driver's job at submit/finalize time.  A session that consults the
  database mid-run makes its trajectory depend on what *other* requests
  finished first — the exact nondeterminism the streaming pool's
  record-injection contract forbids.  The rule bans any reference to
  ``TuningDatabase`` or a ``.database`` attribute inside a session class.

``typing.Protocol`` classes (the protocol definition itself) are exempt.
Scoped to ``src/``: test doubles may fake partial sessions on purpose.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from .. import astutil
from ..findings import Finding
from ..registry import Rule, register
from ..runner import FileContext, ProjectIndex

_REQUIRED = ("propose", "update", "finished", "result")


def _is_protocol(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        chain = astutil.attr_chain(base) or ""
        name = chain.split(".")[-1]
        if name in ("Protocol", "ABC") or name.endswith("Protocol"):
            return True
    return False


def _positional_arity(func: ast.FunctionDef) -> int:
    """Number of *required* positional parameters, ``self`` excluded."""
    args = func.args
    required = len(args.posonlyargs) + len(args.args) - len(args.defaults)
    return max(0, required - 1)


@register
class SessionPurityRule(Rule):
    name = "session-purity"
    codes = {
        "REPRO401": (
            "session class does not implement the TuningSessionProtocol "
            "shape (propose(self) / update(self, configs, executions) / "
            "finished / result)"
        ),
        "REPRO402": (
            "session class references the TuningDatabase (sessions must not "
            "consult the database mid-run; lookups/stores belong to the "
            "driver, or bit-identity vs tune_direct() breaks)"
        ),
    }

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/")

    def check(self, ctx: FileContext, project: ProjectIndex) -> List[Finding]:
        tree = ctx.tree
        assert tree is not None
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef) or _is_protocol(node):
                continue
            methods = {m.name: m for m in astutil.class_methods(node)}
            if "propose" not in methods or "update" not in methods:
                continue  # not a session implementation
            findings.extend(self._check_shape(ctx, node, methods))
            findings.extend(self._check_database_purity(ctx, node))
        return findings

    # ------------------------------------------------------------------ #
    def _check_shape(self, ctx, cls: ast.ClassDef, methods) -> List[Finding]:
        findings: List[Finding] = []
        propose = methods["propose"]
        if _positional_arity(propose) != 0:
            findings.append(
                ctx.finding(
                    "REPRO401",
                    propose,
                    f"'{cls.name}.propose' must take no required arguments "
                    "beyond self (the driver calls propose())",
                )
            )
        update = methods["update"]
        if _positional_arity(update) != 2:
            findings.append(
                ctx.finding(
                    "REPRO401",
                    update,
                    f"'{cls.name}.update' must take exactly (configs, "
                    "executions) after self",
                )
            )
        if "finished" not in methods and not self._has_attribute(cls, "finished"):
            findings.append(
                ctx.finding(
                    "REPRO401",
                    cls,
                    f"'{cls.name}' defines propose/update but no 'finished' "
                    "property — the driver cannot tell when the run ends",
                )
            )
        if not self._has_attribute(cls, "result") and "result" not in methods:
            findings.append(
                ctx.finding(
                    "REPRO401",
                    cls,
                    f"'{cls.name}' defines propose/update but never binds "
                    "'result' — the driver delivers session.result to futures",
                )
            )
        return findings

    @staticmethod
    def _has_attribute(cls: ast.ClassDef, name: str) -> bool:
        """``name`` bound as a class annotation or ``self.name = ...`` in
        ``__init__`` (transitively through any method, to keep it simple)."""
        for stmt in cls.body:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == name
            ):
                return True
        for method in astutil.class_methods(cls):
            for node in ast.walk(method):
                if isinstance(node, ast.Assign) and any(
                    astutil.is_self_attr(t, name) for t in node.targets
                ):
                    return True
        return False

    # ------------------------------------------------------------------ #
    def _check_database_purity(self, ctx, cls: ast.ClassDef) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(cls):
            offense: Optional[str] = None
            if isinstance(node, ast.Name) and node.id == "TuningDatabase":
                offense = "references TuningDatabase"
            elif isinstance(node, ast.Attribute) and node.attr == "database":
                offense = f"touches '{astutil.attr_chain(node) or '...database'}'"
            if offense is not None:
                findings.append(
                    ctx.finding(
                        "REPRO402",
                        node,
                        f"session class '{cls.name}' {offense}; sessions "
                        "must not consult the database mid-run",
                    )
                )
        return findings
