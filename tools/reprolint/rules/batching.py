"""REPRO501 — batched-path enforcement.

PRs 1 and 4 vectorised the measurement and search hot paths; the scalar
twins survive only as bit-identity/quality references.  New ``src/`` code
must stay on the batched paths — a scalar call compiles, passes tests, and
quietly costs ~8x per batch:

* ``Measurer.measure``/``try_measure`` (scalar)    -> ``measure_batch`` /
  ``prepare_batch``+``finish_batch``
* ``feature_vector`` (per-row)                     -> ``feature_matrix``
* ``ScalarRandomWalkExplorer`` (per-config walks)  -> ``ParallelRandomWalkExplorer``

The allowlist below names the modules that *are* the scalar path: the
defining modules (which also implement the batched twins in terms of shared
helpers) and the package facade re-exporting the reference implementations
for the parity tests.  Anything else needs an inline suppression with a
reason, which is exactly the review conversation the rule exists to force.

Scoped to ``src/``: tests and benchmarks drive the scalar references on
purpose (that is what bit-identity means).
"""

from __future__ import annotations

import ast
from typing import List

from .. import astutil
from ..findings import Finding
from ..registry import Rule, register
from ..runner import FileContext, ProjectIndex

#: modules allowed to reference the scalar path (path suffix match).
ALLOWLIST = (
    "src/repro/core/autotune/config.py",  # defines Measurer (both paths)
    "src/repro/core/autotune/features.py",  # defines feature_vector + matrix
    "src/repro/core/autotune/explorer.py",  # defines both explorers
    "src/repro/core/autotune/__init__.py",  # public facade re-exports
)

_SCALAR_METHODS = {"measure", "try_measure"}
_SCALAR_NAMES = {"feature_vector", "ScalarRandomWalkExplorer"}
_BATCHED_HINT = {
    "measure": "measure_batch (or prepare_batch/finish_batch)",
    "try_measure": "measure_batch (None marks infeasible entries)",
    "feature_vector": "feature_matrix over a ConfigArray",
    "ScalarRandomWalkExplorer": "ParallelRandomWalkExplorer",
}


@register
class BatchedPathRule(Rule):
    name = "batched-path"
    codes = {
        "REPRO501": (
            "scalar measurement/search API used outside the allowlisted "
            "reference modules; stay on the batched path "
            "(measure_batch/feature_matrix/ParallelRandomWalkExplorer)"
        ),
    }

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/") and not relpath.endswith(ALLOWLIST)

    def check(self, ctx: FileContext, project: ProjectIndex) -> List[Finding]:
        tree = ctx.tree
        assert tree is not None
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _SCALAR_METHODS:
                    findings.append(
                        ctx.finding(
                            "REPRO501",
                            node,
                            f"scalar '.{node.func.attr}()' call; use "
                            f"{_BATCHED_HINT[node.func.attr]}",
                        )
                    )
            elif isinstance(node, ast.Name) and node.id in _SCALAR_NAMES:
                if isinstance(node.ctx, ast.Load):
                    findings.append(
                        ctx.finding(
                            "REPRO501",
                            node,
                            f"reference to scalar '{node.id}'; use "
                            f"{_BATCHED_HINT[node.id]}",
                        )
                    )
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in _SCALAR_NAMES:
                        findings.append(
                            ctx.finding(
                                "REPRO501",
                                node,
                                f"import of scalar '{alias.name}'; use "
                                f"{_BATCHED_HINT[alias.name]}",
                            )
                        )
        return findings
