"""REPRO301/REPRO302 — frozen-dataclass mutation.

``SearchSpace``, ``TuningRequest``, ``ConvParams``, ``Configuration`` … are
frozen because derived state (option tables, memoised sizes, coalescing
keys) is computed from the fields once; mutating a field afterwards would
serve stale derived state.  At runtime the mutation raises
``FrozenInstanceError`` — but only when the line actually executes, which
for error paths can be long after review.  The rule finds the two statically
visible shapes:

* **REPRO301** — ``self.<field> = ...`` inside a method of a frozen
  dataclass, outside the sanctioned escape hatches (``__post_init__``,
  ``__new__``; writes through ``object.__setattr__`` are the explicit,
  greppable idiom and are allowed anywhere).
* **REPRO302** — ``x.<field> = ...`` where ``x`` was assigned, in the same
  function, from ``FrozenClass(...)`` or a ``FrozenClass.constructor(...)``
  classmethod.  The set of frozen class names is collected project-wide
  (pass 1 of the runner), so mutating a ``SearchSpace`` in a test file is
  caught even though the class is defined in ``src/``.

Tests that *assert* ``FrozenInstanceError`` mutate frozen instances on
purpose — they carry inline ``# reprolint: disable=REPRO302`` suppressions
with a reason.
"""

from __future__ import annotations

import ast
from typing import Dict, List

from .. import astutil
from ..findings import Finding
from ..registry import Rule, register
from ..runner import FileContext, ProjectIndex

_ESCAPE_METHODS = {"__post_init__", "__new__", "__init__"}


@register
class FrozenMutationRule(Rule):
    name = "frozen-mutation"
    codes = {
        "REPRO301": (
            "field assignment on self inside a frozen dataclass (raises "
            "FrozenInstanceError at runtime); derive state in __post_init__ "
            "via object.__setattr__"
        ),
        "REPRO302": (
            "attribute assignment on a frozen-dataclass instance; build a "
            "new instance (dataclasses.replace) instead of mutating"
        ),
    }

    def check(self, ctx: FileContext, project: ProjectIndex) -> List[Finding]:
        tree = ctx.tree
        assert tree is not None
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and astutil.is_frozen_dataclass(node):
                findings.extend(self._check_frozen_class(ctx, node))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
                findings.extend(self._check_scope(ctx, node, project))
        return findings

    # -- REPRO301: self-mutation inside the frozen class ----------------- #
    def _check_frozen_class(self, ctx: FileContext, cls: ast.ClassDef) -> List[Finding]:
        findings: List[Finding] = []
        for method in astutil.class_methods(cls):
            if method.name in _ESCAPE_METHODS:
                continue
            for node in ast.walk(method):
                targets = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    if astutil.is_self_attr(target):
                        findings.append(
                            ctx.finding(
                                "REPRO301",
                                target,
                                f"'{cls.name}' is a frozen dataclass; "
                                f"'self.{target.attr} = ...' in method "
                                f"'{method.name}' will raise "
                                "FrozenInstanceError",
                            )
                        )
        return findings

    # -- REPRO302: mutating a locally constructed frozen instance -------- #
    def _check_scope(
        self, ctx: FileContext, scope: ast.AST, project: ProjectIndex
    ) -> List[Finding]:
        """Linear walk of one function (or module) body in source order,
        tracking which local names currently hold a frozen instance."""
        frozen_locals: Dict[str, str] = {}  # var name -> frozen class name
        findings: List[Finding] = []

        def constructed_class(value: ast.AST) -> str:
            """Frozen class name when ``value`` builds a frozen instance."""
            if not isinstance(value, ast.Call):
                return ""
            chain = astutil.attr_chain(value.func)
            if chain is None:
                return ""
            head = chain.split(".")[0]
            # Direct constructor `Frozen(...)` or classmethod
            # `Frozen.square(...)`; either way the *root* name is the class.
            return head if head in project.frozen_classes else ""

        def visit(node: ast.AST) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                return  # nested scopes are visited as their own scope
            if isinstance(node, ast.Assign):
                cls_name = constructed_class(node.value)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if cls_name:
                            frozen_locals[target.id] = cls_name
                        else:
                            frozen_locals.pop(target.id, None)
                    elif (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in frozen_locals
                    ):
                        findings.append(self._mutation(ctx, target, frozen_locals))
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                target = node.target
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in frozen_locals
                ):
                    findings.append(self._mutation(ctx, target, frozen_locals))
            for child in ast.iter_child_nodes(node):
                visit(child)

        body = scope.body if hasattr(scope, "body") else []
        for stmt in body:
            visit(stmt)
        return findings

    def _mutation(
        self, ctx: FileContext, target: ast.Attribute, frozen_locals: Dict[str, str]
    ) -> Finding:
        var = target.value.id
        return ctx.finding(
            "REPRO302",
            target,
            f"'{var}' holds a frozen '{frozen_locals[var]}' instance; "
            f"assigning '{var}.{target.attr}' raises FrozenInstanceError — "
            "use dataclasses.replace to derive a new instance",
        )
