"""reprolint: AST-based invariant checker for this repository's contracts.

The repository's correctness rests on a handful of project-specific
contracts that generic linters cannot see: sessions own all RNG (the
bit-identity guarantee against ``tune_direct()``), every
``TuningDatabase``/``TuningService`` state access happens under
``self._lock``, ``SearchSpace``/``TuningRequest``-style dataclasses stay
frozen, session implementations never consult the database mid-run, new
measurement/search consumers stay on the batched paths, and nothing in the
search/measure core reads wall clocks or the environment.  ``reprolint``
turns each contract into a checkable rule over the stdlib ``ast``.

Usage (from the repository root)::

    python -m tools.reprolint                 # lint src/ tests/ benchmarks/ tools/
    python -m tools.reprolint --list-rules    # rule catalogue
    python -m tools.reprolint --format json   # machine-readable findings

Findings carry stable rule IDs (``REPROxxx``).  A finding is silenced
either by an inline suppression on (or immediately above) the offending
line::

    value = os.environ.get(VAR)  # reprolint: disable=REPRO602 - config-time read

or by the checked-in baseline file (``tools/reprolint/baseline.json``) that
grandfathers pre-existing findings; ``--write-baseline`` regenerates it.
The process exits non-zero exactly when new (non-baselined) findings exist,
which is what makes ``make reprolint`` a CI gate.
"""

from .findings import Finding
from .registry import Rule, all_codes, all_rules, register
from .runner import LintResult, run_paths

__version__ = "1.0"

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "all_codes",
    "all_rules",
    "register",
    "run_paths",
]
