"""Tests for the CNN model zoo, the end-to-end runner and the analysis helpers."""

import pytest

from repro.analysis import (
    FigureData,
    ResultTable,
    Series,
    format_value,
    render_figure,
    render_rows,
    render_table,
    sparkline,
)
from repro.gpusim import V100
from repro.nets import (
    ConvLayer,
    ConvNet,
    ModelRunner,
    alexnet,
    get_model,
    inception_v3,
    resnet18,
    resnet34,
    squeezenet,
    vgg19,
)


class TestConvLayer:
    def test_params_conversion(self):
        layer = ConvLayer("conv1", 3, 227, 96, kernel=11, stride=4)
        p = layer.params()
        assert p.out_height == 55 and p.out_channels == 96

    def test_macs_with_repeat(self):
        layer = ConvLayer("c", 8, 14, 8, kernel=3, padding=1, repeat=3)
        assert layer.macs == 3 * layer.params().macs

    def test_invalid(self):
        with pytest.raises(ValueError):
            ConvLayer("c", 0, 14, 8, kernel=3)

    def test_describe(self):
        assert "k=3" in ConvLayer("c", 8, 14, 8, kernel=3).describe()


class TestConvNet:
    def test_unique_names_enforced(self):
        layer = ConvLayer("c", 8, 14, 8, kernel=3, padding=1)
        with pytest.raises(ValueError):
            ConvNet("net", (layer, layer))

    def test_layer_lookup(self):
        net = alexnet()
        assert net.layer("conv3").out_channels == 384
        with pytest.raises(KeyError):
            net.layer("conv99")

    def test_params_list(self):
        net = alexnet()
        pairs = net.params_list(batch=4)
        assert len(pairs) == net.num_layers
        assert all(p.batch == 4 for _, p in pairs)

    def test_describe(self):
        assert "AlexNet" in alexnet().describe()


class TestZoo:
    @pytest.mark.parametrize(
        "factory,expected_gmacs",
        [
            (alexnet, (0.6, 1.4)),
            (vgg19, (17.0, 22.0)),
            (resnet18, (1.5, 2.1)),
            (resnet34, (3.2, 4.2)),
            (squeezenet, (0.6, 1.1)),
            (inception_v3, (4.0, 6.5)),
        ],
    )
    def test_total_macs_close_to_published(self, factory, expected_gmacs):
        lo, hi = expected_gmacs
        assert lo <= factory().total_macs / 1e9 <= hi

    def test_alexnet_conv1_shape(self):
        """Table 2's conv1 row: 3 channels, 227 input, 96 outputs, 11x11, stride 4."""
        c1 = alexnet().layer("conv1")
        assert (c1.in_channels, c1.in_size, c1.out_channels, c1.kernel, c1.stride) == (3, 227, 96, 11, 4)

    def test_get_model_aliases(self):
        assert get_model("ResNet-18").name == "ResNet-18"
        assert get_model("vgg19").name == "Vgg-19"
        with pytest.raises(KeyError):
            get_model("lenet")

    def test_resnet34_deeper_than_resnet18(self):
        assert resnet34().total_macs > resnet18().total_macs

    def test_all_layers_constructible(self):
        for name in ("alexnet", "vgg19", "resnet18", "resnet34", "squeezenet", "inception_v3"):
            for layer, params in get_model(name).params_list():
                assert params.output_elements > 0, layer.name


class TestModelRunner:
    def test_analytic_mode_squeezenet(self):
        runner = ModelRunner(V100, mode="analytic")
        timing = runner.time_model(squeezenet())
        assert timing.ours_seconds > 0 and timing.cudnn_seconds > 0
        assert len(timing.layers) == squeezenet().num_layers

    def test_speedup_at_least_parity_on_resnet18(self):
        """Figure 12: the tuned dataflow is never slower end-to-end than cuDNN."""
        runner = ModelRunner(V100, mode="analytic")
        assert runner.time_model(resnet18()).speedup >= 0.95

    def test_layer_timing_speedup(self):
        runner = ModelRunner(V100, mode="analytic")
        timing = runner.time_layer(ConvLayer("c", 64, 56, 64, kernel=3, padding=1))
        assert timing.speedup > 0
        assert timing.algorithm in ("direct", "winograd")

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            ModelRunner(V100, mode="magic")

    def test_describe(self):
        runner = ModelRunner(V100, mode="analytic")
        assert "speedup" in runner.time_model(alexnet()).describe()


class TestAnalysis:
    def test_result_table(self):
        t = ResultTable("demo", columns=["a", "b"])
        t.add_row(a=1, b=2.5)
        assert len(t) == 1
        assert t.column("a") == [1]
        with pytest.raises(ValueError):
            t.add_row(a=1)
        with pytest.raises(KeyError):
            t.column("c")

    def test_render_table(self):
        t = ResultTable("demo", columns=["name", "value"])
        t.add_row(name="x", value=3.14159)
        text = render_table(t)
        assert "demo" in text and "3.142" in text

    def test_render_rows_alignment(self):
        text = render_rows(["col"], [{"col": 1}, {"col": 20000}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len({len(line) for line in lines}) == 1  # all lines equal width

    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(12345) == "12,345"
        assert format_value(0.000123) == "1.230e-04"
        assert format_value("abc") == "abc"

    def test_series_and_figure(self):
        s = Series("ours")
        s.append(1, 10.0)
        s.append(2, 20.0)
        assert s.final() == 20.0
        fig = FigureData("fig", "x", "y", series=[s])
        assert fig.get("ours") is s
        with pytest.raises(KeyError):
            fig.get("missing")
        text = render_figure(fig)
        assert "fig" in text and "ours" in text

    def test_sparkline_length(self):
        assert len(sparkline(list(range(100)), width=40)) == 40
        assert len(sparkline([1, 2, 3], width=40)) == 3

    def test_sparkline_constant(self):
        assert len(set(sparkline([5, 5, 5]))) == 1

    def test_empty_series_final_raises(self):
        with pytest.raises(ValueError):
            Series("x").final()
