"""Integration tests tying the theory, the pebble game and the dataflows together.

These are the reproduction's core consistency checks (experiment E7 of
DESIGN.md): every legal red–blue pebble game execution must move at least the
lower-bound volume, the dataflow's closed forms must sit between the lower
bound and naive schedules, and Theorem 4.5's block bound must hold for real
S-partitions of real convolution DAGs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.conv import ConvParams
from repro.core.bounds import (
    DirectConvBound,
    direct_conv_io_lower_bound,
    direct_conv_t_upper,
    matmul_io_lower_bound,
)
from repro.core.dataflow import DirectDataflow, WinogradDataflow
from repro.core.bounds import winograd_io_lower_bound
from repro.pebble import (
    direct_conv_dag,
    greedy_s_partition,
    greedy_schedule,
    matmul_dag,
    play_schedule,
    simulate_topological,
)

SMALL_CONVS = [
    ConvParams.square(4, 2, 2, kernel=3, stride=1),
    ConvParams.square(5, 2, 3, kernel=2, stride=1),
    ConvParams.square(6, 1, 4, kernel=3, stride=1),
    ConvParams.square(6, 3, 2, kernel=3, stride=2),
]


class TestPebbleGameRespectsLowerBound:
    @pytest.mark.parametrize("params", SMALL_CONVS)
    @pytest.mark.parametrize("capacity", [12, 24, 48])
    def test_topological_schedule_above_bound(self, params, capacity):
        dag = direct_conv_dag(params)
        measured = simulate_topological(dag, capacity=capacity).io_operations
        bound = direct_conv_io_lower_bound(params, capacity)
        assert measured >= bound

    @pytest.mark.parametrize("params", SMALL_CONVS[:2])
    def test_greedy_schedule_above_bound(self, params):
        capacity = 24
        dag = direct_conv_dag(params)
        sched = greedy_schedule(dag, capacity)
        measured = play_schedule(dag, capacity, schedule=sched).io_operations
        assert measured >= direct_conv_io_lower_bound(params, capacity)

    @pytest.mark.parametrize("capacity", [8, 16, 32])
    def test_matmul_schedule_above_bound(self, capacity):
        n = m = k = 6
        dag = matmul_dag(n, m, k)
        measured = simulate_topological(dag, capacity=capacity).io_operations
        assert measured >= matmul_io_lower_bound(n, m, k, capacity)

    @settings(max_examples=10, deadline=None)
    @given(
        size=st.integers(4, 6),
        cin=st.integers(1, 2),
        cout=st.integers(1, 3),
        capacity=st.integers(10, 40),
    )
    def test_property_random_small_convs(self, size, cin, cout, capacity):
        params = ConvParams.square(size, cin, cout, kernel=3, stride=1)
        dag = direct_conv_dag(params)
        measured = simulate_topological(dag, capacity=capacity).io_operations
        assert measured >= direct_conv_io_lower_bound(params, capacity)


class TestTheorem45BlockBound:
    @pytest.mark.parametrize("params", SMALL_CONVS[:3])
    @pytest.mark.parametrize("capacity", [8, 16, 32])
    def test_partition_blocks_below_t(self, params, capacity):
        """Every block of a valid S-partition has at most T(S) vertices."""
        dag = direct_conv_dag(params)
        partition = greedy_s_partition(dag, capacity)
        t_bound = direct_conv_t_upper(params, capacity)
        assert partition.max_block_size() <= t_bound

    def test_numeric_composite_t_also_bounds_blocks(self):
        params = SMALL_CONVS[0]
        capacity = 16
        dag = direct_conv_dag(params)
        partition = greedy_s_partition(dag, capacity)
        numeric_t = DirectConvBound(params).composite(capacity).t_of_s(capacity)
        assert partition.max_block_size() <= numeric_t


class TestDataflowVsBound:
    @pytest.mark.parametrize(
        "params",
        [
            ConvParams.square(56, 256, 128, kernel=3, stride=1, padding=1),
            ConvParams.square(28, 512, 128, kernel=3, stride=1, padding=1),
            ConvParams.square(112, 64, 64, kernel=3, stride=2, padding=1),
            ConvParams.square(14, 256, 1024, kernel=3, stride=1, padding=1),
        ],
    )
    @pytest.mark.parametrize("s", [4096, 12288, 24576])
    def test_direct_dataflow_sandwiched(self, params, s):
        """lower bound <= dataflow I/O <= naive (no-reuse) I/O."""
        df = DirectDataflow(params, s)
        volume = df.io_volume().total
        lower = direct_conv_io_lower_bound(params, s)
        # Naive: every output reads its full input window and kernel from DRAM.
        naive = params.macs + params.macs + params.output_elements
        assert lower <= volume <= naive

    @pytest.mark.parametrize("s", [4096, 12288])
    def test_winograd_dataflow_above_bound(self, s):
        params = ConvParams.square(56, 256, 128, kernel=3, stride=1, padding=1)
        df = WinogradDataflow(params, s, e=2)
        assert df.io_volume().total >= winograd_io_lower_bound(params, 2, s)

    def test_optimality_ratio_improves_with_memory(self):
        """With more fast memory the dataflow gets closer to scaling of the
        bound (both fall as 1/sqrt(S); the ratio stays bounded)."""
        params = ConvParams.square(56, 256, 128, kernel=3, stride=1, padding=1)
        ratios = []
        for s in (2048, 8192, 32768):
            df = DirectDataflow(params, s)
            ratios.append(df.io_volume().total / direct_conv_io_lower_bound(params, s))
        assert max(ratios) / min(ratios) < 3.0
