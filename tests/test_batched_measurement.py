"""Property tests for the batched measurement pipeline.

The contract of the batched path is exact: ``GPUExecutor.run_batch`` and
``Measurer.measure_batch`` must reproduce the scalar results bit-for-bit,
including the deterministic configuration-keyed noise term, and must agree
with the scalar path on which configurations are infeasible.
"""

import random

import pytest

from repro.conv import ConvParams, Layout
from repro.core.autotune import Configuration, Measurer, SearchSpace, lower_batch
from repro.core.dataflow import OutputTile
from repro.gpusim import (
    GFX906,
    GTX_1080TI,
    V100,
    GPUExecutor,
    GPUSpec,
    KernelProfile,
    ProfileBatch,
    direct_dataflow_profile,
    occupancy,
    winograd_dataflow_profile,
)

LAYER = ConvParams.square(13, 64, 96, kernel=3, stride=1, padding=1)


def _random_configs(n_per_space=60, seed=0):
    """Random configurations over direct/winograd, pruned/full spaces, plus
    handcrafted edge cases (clipped tiles, infeasible shared memory)."""
    rng = random.Random(seed)
    configs = []
    for algorithm in ("direct", "winograd"):
        for pruned in (True, False):
            space = SearchSpace(LAYER, V100, algorithm, pruned=pruned)
            configs.extend(space.random_configuration(rng) for _ in range(n_per_space))
    configs.extend(
        [
            # Tile larger than the output extents: exercises clipping.
            Configuration("direct", 64, 64, 96, 4, 4, 2),
            # Working set exceeding the configured shared memory: infeasible.
            Configuration("direct", 13, 13, 96, 1, 1, 1, smem_per_block=8 * 1024),
            # Thread count above the device limit: infeasible.
            Configuration("direct", 13, 13, 96, 13, 13, 32),
            # Tiny thread count: the lowering clamps to a full warp.
            Configuration("direct", 13, 13, 8, 1, 1, 1),
            # Winograd with a larger output tile extent.
            Configuration("winograd", 13, 13, 8, 1, 13, 2, e=4),
        ]
    )
    rng.shuffle(configs)
    return configs


class TestRunBatch:
    def _profiles(self, spec, n=40, seed=1):
        """Random profiles that fit the device (run() would raise otherwise,
        and run_batch mirrors that by rejecting the whole batch)."""
        rng = random.Random(seed)
        profiles = []
        while len(profiles) < n:
            tile = OutputTile(rng.choice((1, 2, 4, 13)), rng.choice((1, 13)), rng.choice((2, 8, 96)))
            layout = rng.choice(Layout.all())
            if rng.random() < 0.5:
                profile = direct_dataflow_profile(LAYER, tile, layout=layout)
            else:
                profile = winograd_dataflow_profile(
                    LAYER, tile, e=rng.choice((2, 3)), layout=layout
                )
            if profile.smem_per_block <= spec.shared_mem_per_sm:
                profiles.append(profile)
        return profiles

    @pytest.mark.parametrize("spec", [V100, GTX_1080TI, GFX906], ids=lambda s: s.name)
    @pytest.mark.parametrize("noise", [0.0, 0.05])
    def test_bit_identical_to_scalar(self, spec, noise):
        executor = GPUExecutor(spec, noise=noise, seed=7)
        profiles = self._profiles(spec)
        batched = executor.run_batch(profiles)
        for profile, got in zip(profiles, batched):
            assert got == executor.run(profile)

    def test_accepts_profile_batch(self):
        executor = GPUExecutor(V100)
        profiles = self._profiles(V100, n=10)
        packed = ProfileBatch.from_profiles(profiles)
        assert len(packed) == 10
        assert executor.run_batch(packed) == executor.run_batch(profiles)

    def test_empty_batch(self):
        assert GPUExecutor(V100).run_batch([]) == []

    def test_rejects_oversized_smem_like_scalar(self):
        bad = KernelProfile(
            "big", flops=1e9, dram_bytes=1e7, smem_per_block=200 * 1024,
            threads_per_block=256, num_blocks=64,
        )
        executor = GPUExecutor(V100)
        with pytest.raises(ValueError):
            executor.run(bad)
        with pytest.raises(ValueError):
            executor.run_batch([bad])


class TestOccupancyInfeasible:
    def test_threads_above_sm_capacity_raise(self):
        # A device whose per-block limit exceeds what an SM can keep resident:
        # the launch must be rejected, not silently scored as one resident block.
        spec = GPUSpec(
            name="tiny-sm",
            num_sms=4,
            shared_mem_per_sm=64 * 1024,
            dram_bandwidth=100e9,
            peak_flops=1e12,
            max_threads_per_sm=512,
            max_threads_per_block=1024,
        )
        profile = KernelProfile(
            "k", flops=1e9, dram_bytes=1e7, smem_per_block=0,
            threads_per_block=1024, num_blocks=64,
        )
        with pytest.raises(ValueError):
            occupancy(profile, spec)
        with pytest.raises(ValueError):
            GPUExecutor(spec, noise=0).run_batch([profile])

    def test_measurer_treats_unresident_launch_as_infeasible(self):
        """On a device where a block that satisfies the per-block limit still
        cannot be resident on an SM, the Measurer must report infeasible (in
        both scalar and batched form), not crash mid-batch."""
        spec = GPUSpec(
            name="tiny-sm",
            num_sms=4,
            shared_mem_per_sm=64 * 1024,
            dram_bandwidth=100e9,
            peak_flops=1e12,
            max_threads_per_sm=512,
            max_threads_per_block=1024,
        )
        params = ConvParams.square(32, 16, 32, kernel=3, stride=1, padding=1)
        too_wide = Configuration("direct", 32, 32, 1, 32, 32, 1, smem_per_block=16 * 1024)
        fits = Configuration("direct", 8, 8, 4, 8, 8, 4, smem_per_block=16 * 1024)
        m = Measurer(params, spec)
        assert not m.is_feasible(too_wide)
        batched = Measurer(params, spec).measure_batch([too_wide, fits])
        assert batched[0] is None
        assert batched[1] is not None
        assert batched[1] == m.try_measure(fits)

    def test_threads_at_sm_capacity_ok(self):
        assert 0 < occupancy(
            KernelProfile(
                "k", flops=1e9, dram_bytes=1e7, smem_per_block=0,
                threads_per_block=1024, num_blocks=64,
            ),
            V100,
        ) <= 1


class TestLowerBatch:
    def test_feasibility_matches_scalar(self):
        configs = _random_configs()
        feasible, batch = lower_batch(configs, LAYER, V100)
        scalar = Measurer(LAYER, V100)
        expected = [scalar.is_feasible(c) for c in configs]
        assert feasible.tolist() == expected
        assert len(batch) == sum(expected)

    def test_empty(self):
        feasible, batch = lower_batch([], LAYER, V100)
        assert feasible.tolist() == []
        assert len(batch) == 0


class TestMeasureBatch:
    @pytest.mark.parametrize("noise", [0.0, 0.05])
    def test_bit_identical_to_scalar(self, noise):
        configs = _random_configs()
        scalar = Measurer(LAYER, V100, noise=noise)
        batched = Measurer(LAYER, V100, noise=noise)
        results = batched.measure_batch(configs)
        assert len(results) == len(configs)
        for config, got in zip(configs, results):
            want = scalar.try_measure(config)
            if want is None:
                assert got is None
            else:
                assert got == want  # all fields, including the noise term
        assert batched.num_measurements == scalar.num_measurements

    def test_large_batch_bit_identical(self):
        """The acceptance-criterion shape: 256 configurations, exact equality."""
        rng = random.Random(3)
        space = SearchSpace(LAYER, V100, "direct", pruned=True)
        configs, seen = [], set()
        while len(configs) < 256:
            c = space.random_configuration(rng)
            if c.key() not in seen:
                seen.add(c.key())
                configs.append(c)
        scalar = Measurer(LAYER, V100)
        batched = Measurer(LAYER, V100)
        results = batched.measure_batch(configs)
        times = [r.time_seconds for r in results]
        assert times == [scalar.measure(c).time_seconds for c in configs]

    def test_duplicates_and_cache_interop(self):
        space = SearchSpace(LAYER, V100, "direct", pruned=True)
        config = space.random_configuration(random.Random(5))
        m = Measurer(LAYER, V100)
        first, second = m.measure_batch([config, config])
        assert first is second
        assert m.num_measurements == 1
        # Scalar measure afterwards is a cache hit with the identical result.
        assert m.measure(config) is first
        assert m.num_measurements == 1

    def test_infeasible_cached_as_none(self):
        bad = Configuration("direct", 13, 13, 96, 1, 1, 1, smem_per_block=8 * 1024)
        m = Measurer(LAYER, V100)
        assert m.measure_batch([bad]) == [None]
        assert not m.is_feasible(bad)
        with pytest.raises(ValueError):
            m.measure(bad)
        assert m.num_measurements == 0


class TestSingleLowering:
    def test_feasibility_then_measure_lowers_once(self, monkeypatch):
        """is_feasible + measure must not lower the configuration twice."""
        import repro.core.autotune.config as config_mod

        calls = {"n": 0}
        real = config_mod.build_profile

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(config_mod, "build_profile", counting)
        m = Measurer(LAYER, V100)
        config = SearchSpace(LAYER, V100, "direct", pruned=True).random_configuration(
            random.Random(9)
        )
        assert m.is_feasible(config)
        m.measure(config)
        assert calls["n"] == 1
