"""Tests for the concurrent tuning service and the step-wise engine protocol.

The service's core contract is *bit-identity*: coalescing, database serving,
cross-request measurement packing and process sharding may only remove
redundant work — every request's outcome must equal what driving
``AutoTuningEngine.tune`` directly would have produced.
"""

import threading

import pytest

from repro.conv import ConvParams
from repro.core.autotune import (
    ParallelTemperingSATuner,
    TuningDatabase,
)
from repro.gpusim import GTX_1080TI, V100
from repro.service import (
    RequestCancelled,
    RequestTimeout,
    TuningFuture,
    TuningRequest,
    TuningService,
    TuningWorkerPool,
)

SMALL = ConvParams.square(8, 16, 32, kernel=3, stride=1, padding=1)
LAYER = ConvParams.square(13, 64, 96, kernel=3, stride=1, padding=1)
THIRD = ConvParams.square(16, 32, 48, kernel=3, stride=1, padding=1)


def _request(params=SMALL, spec=V100, algorithm="direct", budget=24, seed=1, **kw):
    return TuningRequest(
        params, spec, algorithm=algorithm, max_measurements=budget, seed=seed, **kw
    )


def _direct(request: TuningRequest):
    """Reference: drive the engine synchronously, no database."""
    engine = request.make_engine()
    result = engine.tune(initial_random=request.initial_random)
    return result, engine.measurer.num_measurements


def _trajectory(result):
    return [(t.config.key(), t.time_seconds) for t in result.trials]


class TestTuningSession:
    def test_session_drive_matches_tune(self):
        request = _request()
        reference, _ = _direct(request)
        engine = request.make_engine()
        session = engine.session(request.initial_random)
        while not session.finished:
            batch = session.propose()
            if not batch:
                break
            session.update(batch, engine.measurer.measure_batch(batch))
        assert _trajectory(session.result) == _trajectory(reference)

    def test_propose_twice_without_update_raises(self):
        session = _request().make_engine().session()
        session.propose()
        with pytest.raises(RuntimeError):
            session.propose()

    def test_update_without_proposal_raises(self):
        session = _request().make_engine().session()
        with pytest.raises(RuntimeError):
            session.update([], [])

    def test_update_length_mismatch_raises(self):
        engine = _request().make_engine()
        session = engine.session()
        batch = session.propose()
        with pytest.raises(ValueError):
            session.update(batch, [None] * (len(batch) + 1))

    def test_initial_random_zero_still_searches(self):
        # An empty initialisation batch must not read as "run finished" —
        # the explorer phase carries the whole budget (regression test).
        request = _request(budget=16, initial_random=0)
        reference, _ = _direct(request)
        assert reference.num_measurements > 0
        result = TuningService().tune([request])[0]
        assert _trajectory(result) == _trajectory(reference)

    def test_finished_session_proposes_nothing(self):
        request = _request(budget=8)
        engine = request.make_engine()
        session = engine.session(request.initial_random)
        while True:
            batch = session.propose()
            if not batch:
                break
            session.update(batch, engine.measurer.measure_batch(batch))
        assert session.finished
        assert session.propose() == []


class TestCoalescing:
    def test_identical_requests_tune_once(self):
        request = _request()
        _, direct_measurements = _direct(request)
        service = TuningService()
        results = service.tune([request] * 5)
        assert service.stats.tuning_runs == 1
        assert service.stats.coalesced == 4
        # Measurement-count accounting: five requests cost exactly one run.
        assert service.stats.measurements == direct_measurements
        reference, _ = _direct(request)
        for result in results:
            assert result.best_config == reference.best_config
            assert result.best_time == reference.best_time

    def test_coalesced_futures_are_flagged(self):
        service = TuningService()
        futures = [service.submit(_request()) for _ in range(3)]
        assert [f.coalesced for f in futures] == [False, True, True]
        service.drain()
        # Duplicates are answered the way a later sequential request against
        # the shared database would have been: from the stored record.
        assert not futures[0].result().from_cache
        assert all(f.result().from_cache for f in futures[1:])
        assert all(f.from_database for f in futures[1:])

    def test_different_seeds_do_not_coalesce(self):
        service = TuningService()
        service.tune([_request(seed=1), _request(seed=2)])
        assert service.stats.tuning_runs == 2
        assert service.stats.coalesced == 0

    def test_different_conditions_do_not_coalesce(self):
        service = TuningService()
        service.tune([_request(), _request(noise=0.0)])
        assert service.stats.tuning_runs == 2


class TestCancellation:
    """`TuningService.cancel` and coalesced waiters.

    Regression (the daemon's per-request timeout path): cancelling a run
    used to fail *every* future attached to it, including coalesced
    duplicates from other submitters whose own deadlines had not expired.
    With ``future=``, only the cancelling waiter detaches while others
    remain; the run itself fails only when no surviving waiter is left.
    """

    def _two_coalesced(self):
        # simulated_annealing measures one config per round, so the run is
        # reliably still in flight after a couple of steps.
        request = _request(budget=50, tuner="simulated_annealing", pruned=False)
        service = TuningService()
        first = service.submit(request)
        second = service.submit(request)
        assert second.coalesced
        service.step()
        return service, request, first, second

    def test_timeout_on_one_of_two_coalesced_submits(self):
        service, request, first, second = self._two_coalesced()
        timeout = RequestTimeout("second submitter's deadline expired")
        assert service.cancel(request, timeout, future=second)
        # The cancelled waiter is answered with the timeout immediately...
        with pytest.raises(RequestTimeout):
            second.result()
        # ...while the run (and the other submitter) is untouched: it
        # finishes with the full fresh result, bit-identical to direct.
        assert not first.done()
        service.drain()
        assert _trajectory(first.result()) == _trajectory(request.tune_direct())
        assert service.stats.tuning_runs == 1

    def test_cancelling_the_primary_promotes_the_duplicate(self):
        service, request, first, second = self._two_coalesced()
        assert service.cancel(request, RequestTimeout("expired"), future=first)
        with pytest.raises(RequestTimeout):
            first.result()
        service.drain()
        # The surviving duplicate inherited the run wholesale.
        assert _trajectory(second.result()) == _trajectory(request.tune_direct())

    def test_cancelling_the_last_waiter_fails_the_run(self):
        request = _request(budget=50, tuner="simulated_annealing", pruned=False)
        service = TuningService()
        only = service.submit(request)
        service.step()
        assert service.cancel(request, RequestCancelled("gone"), future=only)
        with pytest.raises(RequestCancelled):
            only.result()
        # Nothing in flight anymore: the run was torn down, not leaked.
        assert not service.step()

    def test_cancel_without_future_fails_every_waiter(self):
        service, request, first, second = self._two_coalesced()
        assert service.cancel(request, RequestCancelled("all gone"))
        with pytest.raises(RequestCancelled):
            first.result()
        with pytest.raises(RequestCancelled):
            second.result()

    def test_cancel_with_settled_or_foreign_future_is_a_noop(self):
        service, request, first, second = self._two_coalesced()
        foreign = TuningFuture(request)
        assert not service.cancel(request, future=foreign)
        assert service.cancel(request, future=second)
        # Already detached: a second cancel of the same future is a no-op.
        assert not service.cancel(request, future=second)
        assert not first.done()


class TestBitIdentity:
    def test_mixed_workload_matches_direct_tuning(self):
        requests = [
            _request(SMALL),
            _request(LAYER),
            _request(SMALL),  # coalesces with [0]
            _request(LAYER, algorithm="winograd"),
            _request(SMALL, spec=GTX_1080TI),
            _request(THIRD, budget=16),
        ]
        service = TuningService()
        results = service.tune(requests)
        for request, result in zip(requests, results):
            reference, _ = _direct(request)
            assert result.best_config == reference.best_config
            assert result.best_time == reference.best_time
        # Primary runs reproduce the full trajectory, not just the optimum.
        assert _trajectory(results[0]) == _trajectory(_direct(requests[0])[0])
        assert _trajectory(results[1]) == _trajectory(_direct(requests[1])[0])

    def test_cross_request_packing_is_accounted(self):
        requests = [_request(SMALL), _request(LAYER), _request(THIRD)]
        service = TuningService()
        service.tune(requests)
        # Every lowered configuration went through a shared executor call,
        # and each round used one call for the whole V100 group — far fewer
        # than the per-request rounds a sequential driver would issue.
        assert service.stats.packed_configs == service.stats.measurements
        per_request_rounds = 3 * (1 + (24 - 16 + 15) // 16 + 4)  # loose bound
        assert 0 < service.stats.executor_calls < per_request_rounds

    def test_mixed_devices_split_executor_groups(self):
        service = TuningService()
        service.tune([_request(SMALL), _request(SMALL, spec=GTX_1080TI)])
        # Different GPUs can never share an executor call.
        assert service.stats.tuning_runs == 2
        assert service.stats.executor_calls >= 2


class TestDatabaseServing:
    def test_repeat_submission_is_served_from_database(self):
        request = _request()
        service = TuningService()
        service.tune([request])
        measurements = service.stats.measurements
        future = service.submit(request)
        assert future.done() and future.from_database
        assert future.result().from_cache
        assert service.stats.database_hits == 1
        service.drain()
        assert service.stats.measurements == measurements  # zero new work

    def test_prepopulated_database_serves_at_submit(self):
        db = TuningDatabase()
        TuningService(database=db).tune([_request()])
        service = TuningService(database=db)
        future = service.submit(_request())
        assert future.done() and future.from_database
        assert service.stats.tuning_runs == 0

    def test_unpruned_requests_bypass_database(self):
        db = TuningDatabase()
        service = TuningService(database=db)
        result = service.tune([_request(pruned=False, budget=16)])[0]
        assert result.tuner == "ate_unpruned"
        assert len(db) == 0
        # And an identical unpruned resubmission is a fresh run, not a hit.
        service.submit(_request(pruned=False, budget=16))
        service.drain()
        assert service.stats.tuning_runs == 2

    def test_lower_budget_request_served_by_thorough_record(self):
        service = TuningService()
        service.tune([_request(budget=32)])
        future = service.submit(_request(budget=16))
        assert future.done() and future.from_database

    def test_higher_budget_request_tunes_again(self):
        service = TuningService()
        service.tune([_request(budget=16)])
        future = service.submit(_request(budget=32))
        assert not future.done()
        service.drain()
        assert service.stats.tuning_runs == 2


class TestThreadedSubmission:
    def test_concurrent_submitters_one_driver(self):
        service = TuningService()
        futures = []
        lock = threading.Lock()

        def client():
            for request in (_request(SMALL), _request(LAYER), _request(SMALL)):
                future = service.submit(request)
                with lock:
                    futures.append(future)

        threads = [threading.Thread(target=client) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service.drain()
        assert len(futures) == 12
        assert service.stats.tuning_runs == 2  # SMALL and LAYER, once each
        reference, _ = _direct(_request(SMALL))
        for future in futures:
            if future.request.params == SMALL:
                assert future.result(timeout=1).best_time == reference.best_time

    def test_result_timeout(self):
        service = TuningService()
        future = service.submit(_request())
        with pytest.raises(TimeoutError):
            future.result(timeout=0.01)
        service.drain()
        assert future.done()


class _BrokenContext:
    """A multiprocessing context on a box where no process can be created."""

    def Pool(self, processes):
        raise OSError("no multiprocessing here")

    def Process(self, *args, **kwargs):
        raise OSError("no multiprocessing here")

    def Queue(self):
        raise OSError("no multiprocessing here")


class TestWorkerPool:
    WORKLOAD = [
        _request(SMALL),
        _request(LAYER),
        _request(SMALL),  # duplicate: must land in the same shard
        _request(THIRD, budget=16),
    ]

    def test_pool_matches_in_process_service(self):
        reference = TuningService().tune(self.WORKLOAD)
        db = TuningDatabase()
        pool = TuningWorkerPool(num_workers=2)
        results = pool.tune(self.WORKLOAD, database=db)
        for a, b in zip(reference, results):
            assert a.best_config == b.best_config
            assert a.best_time == b.best_time
        # The merged database covers every distinct pruned problem.
        assert len(db) == 3

    def test_serial_fallback_matches(self):
        reference = TuningService().tune(self.WORKLOAD)
        pool = TuningWorkerPool(num_workers=2)
        pool._context = lambda: _BrokenContext()
        results = pool.tune(self.WORKLOAD)
        assert not pool.used_processes
        for a, b in zip(reference, results):
            assert a.best_time == b.best_time

    def test_fallback_can_be_disabled(self):
        pool = TuningWorkerPool(num_workers=2, allow_serial_fallback=False)
        pool._context = lambda: _BrokenContext()
        with pytest.raises(OSError):
            pool.tune(self.WORKLOAD)

    def test_use_processes_true_requires_processes(self):
        pool = TuningWorkerPool(num_workers=2, use_processes=True)
        pool._context = lambda: _BrokenContext()
        with pytest.raises(OSError):
            pool.tune(self.WORKLOAD)

    def test_single_shard_runs_serially(self):
        pool = TuningWorkerPool(num_workers=4)
        results = pool.tune([_request(SMALL), _request(SMALL)])
        assert not pool.used_processes  # one distinct request -> one shard
        assert results[0].best_time == results[1].best_time

    def test_empty_workload(self):
        assert TuningWorkerPool().tune([]) == []

    def test_caller_database_serves_covered_requests(self):
        # The pool must honour the caller's database exactly like the
        # in-process service: covered requests never reach a worker.
        db = TuningDatabase()
        TuningService(database=db).tune([_request(SMALL)])
        stored = db.lookup(SMALL, V100, "direct").time_seconds
        pool = TuningWorkerPool(num_workers=2)
        results = pool.tune([_request(SMALL), _request(SMALL)], database=db)
        assert not pool.used_processes  # nothing left to shard
        assert all(r.from_cache and r.best_time == stored for r in results)


class TestIncrementalFeatures:
    def test_feature_cache_grows_with_dataset(self):
        request = _request()
        engine = request.make_engine()
        engine.tune(initial_random=request.initial_random)
        # Retraining cached one row per distinct measured configuration.
        assert len(engine.features) > 0

    def test_cached_retraining_is_bit_identical(self):
        # Covered transitively by TestTuningSession/TestBitIdentity (the
        # reference engines use the same incremental path), so pin the lower
        # level: FeatureCache.matrix equals the uncached feature_matrix.
        import random

        import numpy as np

        from repro.core.autotune import FeatureCache, SearchSpace, feature_matrix

        space = SearchSpace(SMALL, V100, "direct", pruned=True)
        rng = random.Random(0)
        configs = [space.random_configuration(rng) for _ in range(12)]
        cache = FeatureCache(SMALL, V100)
        first = cache.matrix(configs)
        again = cache.matrix(configs)  # second call: fully cached
        reference = feature_matrix(configs, SMALL, V100)
        assert np.array_equal(first, reference)
        assert np.array_equal(again, reference)


class TestParallelTemperingBaseline:
    def test_deterministic_and_budgeted(self):
        a = ParallelTemperingSATuner(LAYER, V100, "direct", max_measurements=48, seed=5).tune()
        b = ParallelTemperingSATuner(LAYER, V100, "direct", max_measurements=48, seed=5).tune()
        assert _trajectory(a) == _trajectory(b)
        assert a.num_measurements == 48
        assert a.tuner == "sa_tempering"

    def test_routes_through_measure_batch(self):
        from repro.core.autotune import Measurer

        class CountingMeasurer(Measurer):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.batch_calls = 0
                self.scalar_calls = 0

            def measure_batch(self, configs):
                self.batch_calls += 1
                return super().measure_batch(configs)

            def try_measure(self, config):
                self.scalar_calls += 1
                return super().try_measure(config)

        measurer = CountingMeasurer(LAYER, V100)
        tuner = ParallelTemperingSATuner(
            LAYER, V100, "direct", max_measurements=40, seed=5, chains=8, measurer=measurer
        )
        tuner.tune()
        assert measurer.scalar_calls == 0
        # init round + ceil(32 / 8) proposal rounds = 5 batched calls.
        assert measurer.batch_calls == 5

    def test_chain_count_validation(self):
        with pytest.raises(ValueError):
            ParallelTemperingSATuner(SMALL, V100, chains=1)
        with pytest.raises(ValueError):
            ParallelTemperingSATuner(SMALL, V100, temperature_ratio=1.0)
