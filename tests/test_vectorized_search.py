"""Property tests for the vectorised (SoA) search-side hot path.

Covers the contracts the tentpole relies on:

* :class:`ConfigArray` round-trips ``Configuration`` lists losslessly and its
  ``key_matrix`` deduplicates exactly like ``Configuration.key()``;
* the column-wise :func:`feature_matrix` fast path is bit-identical to the
  stacked per-row :func:`feature_vector` reference across algorithms,
  pruned/unpruned domains and GPUs;
* :meth:`SearchSpace.sample_batch` / :meth:`SearchSpace.neighbor_batch` /
  :meth:`SearchSpace.contains_batch` agree with their scalar counterparts;
* ``SearchSpace`` is frozen (the staleness hazard regression test);
* the vectorised explorer finds configurations no worse than the scalar
  reference at equal measurement budget across a seed grid;
* ``FeatureCache`` honours its optional ``max_entries`` cap;
* the vectorised tree routing is bit-identical to a per-row descent.
"""

import dataclasses
import random
import statistics

import numpy as np
import pytest

from repro.conv import ConvParams
from repro.core.autotune import (
    AutoTuningEngine,
    ConfigArray,
    CostModel,
    FeatureCache,
    Measurer,
    ParallelRandomWalkExplorer,
    RegressionTree,
    ScalarRandomWalkExplorer,
    SearchSpace,
    feature_matrix,
    feature_vector,
)
from repro.gpusim import GTX_1080TI, V100

WINO = ConvParams.square(14, 128, 256, kernel=3, stride=1, padding=1)
SMALL = ConvParams.square(13, 64, 96, kernel=3, stride=1, padding=1)

SPACE_GRID = [
    pytest.param(SMALL, "direct", True, V100, id="direct-pruned-v100"),
    pytest.param(SMALL, "direct", False, V100, id="direct-full-v100"),
    pytest.param(SMALL, "direct", True, GTX_1080TI, id="direct-pruned-1080ti"),
    pytest.param(WINO, "winograd", True, V100, id="winograd-pruned-v100"),
    pytest.param(WINO, "winograd", False, GTX_1080TI, id="winograd-full-1080ti"),
]


def _sample_with_neighbors(space, seed, count=96):
    """Random configurations plus neighbour perturbations (more knob variety
    than uniform sampling alone: adjacent tiles, reset threads, ...)."""
    rng = random.Random(seed)
    configs = space.sample(rng, count)
    configs += [space.neighbor(c, rng) for c in configs[: count // 2]]
    return configs


class TestConfigArray:
    @pytest.mark.parametrize("params,algo,pruned,gpu", SPACE_GRID)
    def test_roundtrip_lossless(self, params, algo, pruned, gpu):
        space = SearchSpace(params, gpu, algo, pruned=pruned)
        configs = _sample_with_neighbors(space, seed=1)
        arr = ConfigArray.from_configs(configs)
        assert len(arr) == len(configs)
        assert arr.to_configs() == configs

    def test_roundtrip_mixed_algorithms(self):
        direct = SearchSpace(WINO, V100, "direct", pruned=True)
        wino = SearchSpace(WINO, V100, "winograd", pruned=True)
        rng = random.Random(3)
        configs = direct.sample(rng, 20) + wino.sample(rng, 20)
        rng.shuffle(configs)
        assert ConfigArray.from_configs(configs).to_configs() == configs

    def test_key_matrix_dedup_matches_config_keys(self):
        space = SearchSpace(SMALL, V100, "direct", pruned=True)
        rng = random.Random(5)
        configs = space.sample(rng, 40)
        configs += configs[:15]  # force duplicates
        arr = ConfigArray.from_configs(configs)
        unique_rows = np.unique(arr.key_matrix(), axis=0).shape[0]
        assert unique_rows == len({c.key() for c in configs})

    def test_take_where_concat(self):
        space = SearchSpace(SMALL, V100, "direct", pruned=True)
        rng = random.Random(7)
        a = ConfigArray.from_configs(space.sample(rng, 10))
        b = ConfigArray.from_configs(space.sample(rng, 10))
        assert a.take([2, 4]).to_configs() == [a.config_at(2), a.config_at(4)]
        mask = np.zeros(10, dtype=bool)
        mask[3] = True
        merged = a.where(mask, b)
        assert merged.config_at(3) == b.config_at(3)
        assert merged.config_at(0) == a.config_at(0)
        both = ConfigArray.concat([a, b])
        assert both.to_configs() == a.to_configs() + b.to_configs()

    def test_rejects_ragged_columns(self):
        with pytest.raises(ValueError):
            ConfigArray(
                algo=np.zeros(3, dtype=np.int64),
                tile_x=np.ones(2, dtype=np.int64),
                tile_y=np.ones(3, dtype=np.int64),
                tile_z=np.ones(3, dtype=np.int64),
                threads_x=np.ones(3, dtype=np.int64),
                threads_y=np.ones(3, dtype=np.int64),
                threads_z=np.ones(3, dtype=np.int64),
                layout=np.zeros(3, dtype=np.int64),
                smem_per_block=np.ones(3, dtype=np.int64),
                e=np.full(3, 2, dtype=np.int64),
                unroll=np.ones(3, dtype=np.int64),
                order=np.zeros(3, dtype=np.int64),
            )


class TestFeatureMatrixBitIdentity:
    @pytest.mark.parametrize("params,algo,pruned,gpu", SPACE_GRID)
    def test_soa_equals_per_row(self, params, algo, pruned, gpu):
        space = SearchSpace(params, gpu, algo, pruned=pruned)
        configs = _sample_with_neighbors(space, seed=11)
        fast = feature_matrix(ConfigArray.from_configs(configs), params, gpu)
        reference = np.stack([feature_vector(c, params, gpu) for c in configs])
        assert fast.shape == reference.shape
        assert (fast == reference).all(), "column-wise features diverge bitwise"

    def test_soa_equals_per_row_mixed_algorithms(self):
        rng = random.Random(13)
        configs = SearchSpace(WINO, V100, "direct", pruned=True).sample(rng, 25)
        configs += SearchSpace(WINO, V100, "winograd", pruned=False).sample(rng, 25)
        rng.shuffle(configs)
        fast = feature_matrix(ConfigArray.from_configs(configs), WINO, V100)
        reference = np.stack([feature_vector(c, WINO, V100) for c in configs])
        assert (fast == reference).all()

    def test_winograd_rows_on_incompatible_problem(self):
        """algorithm == 'winograd' on a strided problem falls back to the
        direct-dataflow features, in both paths identically."""
        strided = ConvParams.square(28, 32, 32, kernel=3, stride=2, padding=1)
        configs = SearchSpace(strided, V100, "direct", pruned=True).sample(
            random.Random(17), 20
        )
        wino_like = [
            dataclasses.replace(c, algorithm="winograd", e=3) for c in configs
        ]
        fast = feature_matrix(ConfigArray.from_configs(wino_like), strided, V100)
        reference = np.stack([feature_vector(c, strided, V100) for c in wino_like])
        assert (fast == reference).all()
        assert (fast[:, -2] == 0.0).all()  # is_winograd stays off

    def test_empty_array(self):
        arr = ConfigArray.from_configs([])
        assert feature_matrix(arr, SMALL, V100).shape == (0, 21)

    def test_sequence_path_unchanged(self):
        space = SearchSpace(SMALL, V100, "direct", pruned=True)
        configs = space.sample(random.Random(19), 8)
        via_list = feature_matrix(configs, SMALL, V100)
        via_array = feature_matrix(ConfigArray.from_configs(configs), SMALL, V100)
        assert (via_list == via_array).all()


class TestSearchSpaceBatchOps:
    @pytest.mark.parametrize("params,algo,pruned,gpu", SPACE_GRID)
    def test_sample_batch_members(self, params, algo, pruned, gpu):
        space = SearchSpace(params, gpu, algo, pruned=pruned)
        batch = space.sample_batch(np.random.default_rng(23), 64)
        assert len(batch) == 64
        assert space.contains_batch(batch).all()
        assert all(space.contains(c) for c in batch.to_configs())

    @pytest.mark.parametrize("params,algo,pruned,gpu", SPACE_GRID)
    def test_contains_batch_agrees_with_scalar(self, params, algo, pruned, gpu):
        space = SearchSpace(params, gpu, algo, pruned=pruned)
        # Mix members with configurations from *other* spaces (different
        # pruning, different algorithm) so both mask outcomes are exercised.
        rng = random.Random(29)
        configs = space.sample(rng, 30)
        configs += SearchSpace(params, gpu, algo, pruned=not pruned).sample(rng, 30)
        other_algo = "direct" if algo == "winograd" else None
        if other_algo and params.winograd_compatible():
            configs += SearchSpace(params, gpu, other_algo).sample(rng, 10)
        mask = space.contains_batch(ConfigArray.from_configs(configs))
        assert mask.tolist() == [space.contains(c) for c in configs]

    @pytest.mark.parametrize("params,algo,pruned,gpu", SPACE_GRID)
    def test_neighbor_batch_members(self, params, algo, pruned, gpu):
        space = SearchSpace(params, gpu, algo, pruned=pruned)
        gen = np.random.default_rng(31)
        current = space.sample_batch(gen, 48)
        stepped = space.neighbor_batch(current, gen=gen, fallback_gen=gen)
        assert len(stepped) == 48
        assert space.contains_batch(stepped).all()

    def test_neighbor_batch_deterministic_in_uniforms(self):
        space = SearchSpace(SMALL, V100, "direct", pruned=True)
        current = space.sample_batch(np.random.default_rng(37), 32)
        u = np.random.default_rng(41).random((32, 3 * 8))
        a = space.neighbor_batch(current, u)
        b = space.neighbor_batch(current, u)
        assert a.to_configs() == b.to_configs()

    def test_neighbor_batch_requires_randomness_source(self):
        space = SearchSpace(SMALL, V100, "direct", pruned=True)
        current = space.sample_batch(np.random.default_rng(43), 4)
        with pytest.raises(ValueError):
            space.neighbor_batch(current)

    def test_tile_ok_mask_matches_scalar(self):
        space = SearchSpace(SMALL, V100, "direct", pruned=True)
        rng = np.random.default_rng(47)
        x = rng.integers(1, 16, 200)
        y = rng.integers(1, 16, 200)
        z = rng.integers(1, 128, 200)
        smem = 1024 * rng.integers(8, 96, 200)
        mask = space.tile_ok_mask(x, y, z, smem)
        scalar = [
            space._tile_ok(int(a), int(b), int(c), int(s))
            for a, b, c, s in zip(x, y, z, smem)
        ]
        assert mask.tolist() == scalar


class TestFrozenSearchSpace:
    def test_mutation_raises(self):
        """Regression: option tables and the size() memo are derived in
        __post_init__; mutating the fields afterwards used to serve stale
        tables silently.  The dataclass is now frozen."""
        space = SearchSpace(SMALL, V100, "direct", pruned=True)
        with pytest.raises(dataclasses.FrozenInstanceError):
            space.pruned = False  # reprolint: disable=REPRO302 - asserts frozenness
        with pytest.raises(dataclasses.FrozenInstanceError):
            space.params = WINO  # reprolint: disable=REPRO302 - asserts frozenness
        with pytest.raises(dataclasses.FrozenInstanceError):
            space.algorithm = "winograd"  # reprolint: disable=REPRO302 - asserts frozenness

    def test_size_memo_still_works(self):
        space = SearchSpace(SMALL, V100, "direct", pruned=True)
        assert space.size() == space.size() > 0


class TestVectorizedExplorer:
    def test_propose_full_unique_batch(self):
        space = SearchSpace(SMALL, V100, "direct", pruned=True)
        explorer = ParallelRandomWalkExplorer(space, SMALL, V100, seed=1)
        batch = explorer.propose(None, batch_size=8)
        assert len(batch) == 8
        assert len({c.key() for c in batch}) == 8
        assert all(space.contains(c) for c in batch)

    def test_propose_respects_visited(self):
        space = SearchSpace(SMALL, V100, "direct", pruned=True)
        explorer = ParallelRandomWalkExplorer(space, SMALL, V100, seed=2)
        first = explorer.propose(None, batch_size=6)
        visited = {c.key() for c in first}
        second = explorer.propose(None, batch_size=6, visited=set(visited))
        assert not visited & {c.key() for c in second}

    def test_propose_deterministic(self):
        space = SearchSpace(SMALL, V100, "direct", pruned=True)
        a = ParallelRandomWalkExplorer(space, SMALL, V100, seed=5).propose(None, 12)
        b = ParallelRandomWalkExplorer(space, SMALL, V100, seed=5).propose(None, 12)
        assert a == b

    def test_quality_no_worse_than_scalar_across_seed_grid(self):
        """Equal measurement budget, seed grid: the lock-step explorer's
        best-found runtime must match the scalar reference in aggregate.
        Everything is deterministic (simulator + seeded RNG), so the small
        tolerance only absorbs per-seed trajectory noise, not flakiness.
        (The explorer benchmark runs the same property on a wider grid.)"""
        small_wino = ConvParams.square(14, 32, 48, kernel=3, stride=1, padding=1)
        grid = [(SMALL, "direct", V100), (small_wino, "winograd", V100)]
        for params, algo, gpu in grid:
            bests = {}
            for cls in (ScalarRandomWalkExplorer, ParallelRandomWalkExplorer):
                bests[cls] = [
                    AutoTuningEngine(
                        params,
                        gpu,
                        algo,
                        max_measurements=64,
                        seed=seed,
                        measurer=Measurer(params, gpu),
                        explorer_cls=cls,
                    )
                    .tune()
                    .best_time
                    for seed in range(3)
                ]
            scalar_mean = statistics.mean(bests[ScalarRandomWalkExplorer])
            vector_mean = statistics.mean(bests[ParallelRandomWalkExplorer])
            assert vector_mean <= scalar_mean * 1.05, (
                f"{algo}: vectorised explorer found {vector_mean:.3e}s on average "
                f"vs scalar {scalar_mean:.3e}s at equal budget"
            )


class TestFeatureCacheCap:
    def test_unbounded_by_default(self):
        cache = FeatureCache(SMALL, V100)
        space = SearchSpace(SMALL, V100, "direct", pruned=True)
        configs = space.sample(random.Random(3), 50)
        cache.matrix(configs)
        assert len(cache) == len({c.key() for c in configs})
        assert cache.evictions == 0

    def test_cap_evicts_fifo_and_counts(self):
        space = SearchSpace(SMALL, V100, "direct", pruned=True)
        configs = []
        seen = set()
        rng = random.Random(5)
        while len(configs) < 12:
            c = space.random_configuration(rng)
            if c.key() not in seen:
                seen.add(c.key())
                configs.append(c)
        cache = FeatureCache(SMALL, V100, max_entries=8)
        for c in configs:
            cache.vector(c)
        assert len(cache) == 8
        assert cache.evictions == 4
        assert cache.misses == 12
        # The oldest rows were evicted; re-requesting one recomputes it with
        # identical values (rows are pure functions of the configuration).
        row = cache.vector(configs[0])
        assert (row == feature_vector(configs[0], SMALL, V100)).all()
        stats = cache.stats()
        assert stats["entries"] == 8 and stats["evictions"] == 5

    def test_hit_counter(self):
        cache = FeatureCache(SMALL, V100)
        space = SearchSpace(SMALL, V100, "direct", pruned=True)
        c = space.random_configuration(random.Random(7))
        cache.vector(c)
        cache.vector(c)
        assert cache.hits == 1 and cache.misses == 1

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            FeatureCache(SMALL, V100, max_entries=0)


class TestVectorizedTreeRouting:
    def test_tree_predict_matches_per_row_descent(self):
        rng = np.random.default_rng(11)
        x = rng.normal(size=(300, 6))
        y = x[:, 0] * 2 + np.sin(x[:, 1]) + rng.normal(scale=0.1, size=300)
        tree = RegressionTree(max_depth=5, min_samples_leaf=3).fit(x, y)
        got = tree.predict(x)
        expected = np.empty(x.shape[0])
        for i, row in enumerate(x):
            node = 0
            while tree._feature[node] >= 0:
                node = (
                    tree._left[node]
                    if row[tree._feature[node]] <= tree._threshold[node]
                    else tree._right[node]
                )
            expected[i] = tree._value[node]
        assert (got == expected).all()

    def test_stacked_ensemble_matches_per_tree_accumulation(self):
        space = SearchSpace(SMALL, V100, "direct", pruned=True)
        measurer = Measurer(SMALL, V100)
        configs = space.sample(random.Random(13), 60)
        times = [
            measurer.time_seconds(c) if measurer.is_feasible(c) else float("inf")
            for c in configs
        ]
        model = CostModel(min_samples=8, seed=0)
        assert model.fit(feature_matrix(configs, SMALL, V100), times)
        x = feature_matrix(configs, SMALL, V100)
        stacked = model.predict_score(x)
        gbt = model._model
        reference = np.full(x.shape[0], gbt._base)
        for tree in gbt._trees:
            reference += gbt.learning_rate * tree.predict(x)
        assert (stacked == reference).all()
