"""Tests for the convolution algorithms (direct, im2col, Winograd)."""

import numpy as np
import pytest

from repro.conv import (
    ALGORITHMS,
    ConvParams,
    direct_conv2d,
    direct_conv2d_naive,
    im2col,
    im2col_buffer_elements,
    im2col_conv2d,
    max_abs_error,
    plan_winograd,
    random_operands,
    run_algorithm,
    verify_algorithm,
    winograd_conv2d,
    winograd_flops,
)


def _rel_err(a, b):
    scale = max(1.0, float(np.max(np.abs(a))))
    return max_abs_error(a, b) / scale


class TestDirectConv:
    def test_matches_naive(self, small_params):
        x, w = random_operands(small_params, seed=0)
        assert _rel_err(direct_conv2d(x, w, small_params), direct_conv2d_naive(x, w, small_params)) < 1e-12

    def test_matches_naive_strided(self, strided_params):
        x, w = random_operands(strided_params, seed=1)
        assert _rel_err(direct_conv2d(x, w, strided_params), direct_conv2d_naive(x, w, strided_params)) < 1e-12

    def test_output_shape(self, small_params):
        x, w = random_operands(small_params)
        assert direct_conv2d(x, w, small_params).shape == small_params.output_shape

    def test_identity_kernel(self):
        p = ConvParams.square(5, 1, 1, kernel=1)
        x = np.arange(25, dtype=np.float64).reshape(1, 1, 5, 5)
        w = np.ones((1, 1, 1, 1))
        assert np.allclose(direct_conv2d(x, w, p), x)

    def test_averaging_kernel(self):
        p = ConvParams.square(4, 1, 1, kernel=3)
        x = np.ones(p.input_shape)
        w = np.full(p.kernel_shape, 1.0 / 9.0)
        out = direct_conv2d(x, w, p)
        assert np.allclose(out, 1.0)

    def test_bias(self, small_params):
        x, w = random_operands(small_params)
        bias = np.arange(small_params.out_channels, dtype=np.float64)
        out = direct_conv2d(x, w, small_params, bias=bias)
        base = direct_conv2d(x, w, small_params)
        assert np.allclose(out - base, bias[None, :, None, None])

    def test_bad_bias_shape(self, small_params):
        x, w = random_operands(small_params)
        with pytest.raises(ValueError):
            direct_conv2d(x, w, small_params, bias=np.zeros(3))

    def test_shape_mismatch_raises(self, small_params):
        x, w = random_operands(small_params)
        with pytest.raises(ValueError):
            direct_conv2d(x[:, :1], w, small_params)
        with pytest.raises(ValueError):
            direct_conv2d(x, w[:1], small_params)

    def test_linearity_in_input(self, small_params):
        x, w = random_operands(small_params, seed=3)
        x2 = np.random.default_rng(7).standard_normal(small_params.input_shape)
        lhs = direct_conv2d(x + 2.0 * x2, w, small_params)
        rhs = direct_conv2d(x, w, small_params) + 2.0 * direct_conv2d(x2, w, small_params)
        assert _rel_err(lhs, rhs) < 1e-12

    def test_batch_independence(self):
        p = ConvParams.square(6, 2, 3, kernel=3, padding=1, batch=3)
        x, w = random_operands(p, seed=5)
        full = direct_conv2d(x, w, p)
        single = ConvParams.square(6, 2, 3, kernel=3, padding=1, batch=1)
        for b in range(3):
            out_b = direct_conv2d(x[b : b + 1], w, single)
            assert np.allclose(full[b : b + 1], out_b)


class TestIm2col:
    def test_matches_direct(self, small_params):
        assert verify_algorithm("im2col", small_params, seed=2) < 1e-10

    def test_matches_direct_strided(self, strided_params):
        assert verify_algorithm("im2col", strided_params, seed=2) < 1e-10

    def test_column_shape(self, small_params):
        x, _ = random_operands(small_params)
        cols = im2col(x, small_params)
        k = small_params.in_channels * 9
        n = small_params.out_height * small_params.out_width
        assert cols.shape == (small_params.batch, k, n)

    def test_buffer_elements(self, small_params):
        b, k, n = (
            small_params.batch,
            small_params.in_channels * 9,
            small_params.out_height * small_params.out_width,
        )
        assert im2col_buffer_elements(small_params) == b * k * n

    def test_input_shape_check(self, small_params):
        with pytest.raises(ValueError):
            im2col(np.zeros((1, 1, 4, 4)), small_params)

    def test_bias(self, small_params):
        x, w = random_operands(small_params)
        bias = np.linspace(-1, 1, small_params.out_channels)
        out = im2col_conv2d(x, w, small_params, bias=bias)
        assert np.allclose(out, direct_conv2d(x, w, small_params, bias=bias))


class TestWinogradConv:
    @pytest.mark.parametrize("e", [2, 3, 4])
    def test_matches_direct(self, small_params, e):
        x, w = random_operands(small_params, seed=e)
        ref = direct_conv2d(x, w, small_params)
        out = winograd_conv2d(x, w, small_params, e=e)
        assert _rel_err(ref, out) < 1e-9

    @pytest.mark.parametrize("kernel", [2, 3, 5])
    def test_other_kernel_sizes(self, kernel):
        p = ConvParams.square(12, 2, 3, kernel=kernel, stride=1)
        x, w = random_operands(p, seed=kernel)
        assert _rel_err(direct_conv2d(x, w, p), winograd_conv2d(x, w, p, e=2)) < 1e-8

    def test_non_divisible_output(self):
        # Output extent 7 is not a multiple of e=2: padding path must still match.
        p = ConvParams.square(9, 3, 2, kernel=3, stride=1)
        assert p.out_height == 7
        x, w = random_operands(p, seed=11)
        assert _rel_err(direct_conv2d(x, w, p), winograd_conv2d(x, w, p, e=2)) < 1e-9

    def test_with_padding(self):
        p = ConvParams.square(14, 4, 6, kernel=3, stride=1, padding=1)
        x, w = random_operands(p, seed=13)
        assert _rel_err(direct_conv2d(x, w, p), winograd_conv2d(x, w, p, e=4)) < 1e-9

    def test_batched(self):
        p = ConvParams.square(10, 3, 4, kernel=3, stride=1, padding=1, batch=3)
        x, w = random_operands(p, seed=17)
        assert _rel_err(direct_conv2d(x, w, p), winograd_conv2d(x, w, p, e=2)) < 1e-9

    def test_rejects_stride(self, strided_params):
        x, w = random_operands(strided_params)
        with pytest.raises(ValueError):
            winograd_conv2d(x, w, strided_params, e=2)

    def test_plan_tiles(self):
        p = ConvParams.square(14, 4, 6, kernel=3, stride=1, padding=1)
        plan = plan_winograd(p, e=4)
        assert plan.tiles_h == plan.tiles_w == 4  # ceil(14 / 4)
        assert plan.tile_in == 6
        assert plan.padded_out_h == 16

    def test_plan_multiplications(self):
        p = ConvParams.square(8, 2, 3, kernel=3, stride=1, padding=1)
        plan = plan_winograd(p, e=2)
        # tiles 4x4, per tile per (cout, cin) pair: 16 multiplications
        assert plan.multiplications == 4 * 4 * 2 * 3 * 16

    def test_winograd_flops_positive_and_less_than_direct_for_large(self):
        p = ConvParams.square(56, 64, 64, kernel=3, stride=1, padding=1)
        wf = winograd_flops(p, e=4)
        assert 0 < wf < p.flops  # fewer multiplies than direct for F(4x4,3x3)

    def test_bias(self, small_params):
        x, w = random_operands(small_params)
        bias = np.linspace(0, 1, small_params.out_channels)
        out = winograd_conv2d(x, w, small_params, e=2, bias=bias)
        assert _rel_err(direct_conv2d(x, w, small_params, bias=bias), out) < 1e-9


class TestRegistry:
    def test_registry_names(self):
        assert {"direct", "im2col", "winograd_f2", "winograd_f4"} <= set(ALGORITHMS)

    def test_run_unknown_raises(self, small_params):
        x, w = random_operands(small_params)
        with pytest.raises(KeyError):
            run_algorithm("nope", x, w, small_params)

    def test_winograd_unsupported_raises(self, strided_params):
        x, w = random_operands(strided_params)
        with pytest.raises(ValueError):
            run_algorithm("winograd_f2", x, w, strided_params)

    def test_verify_all_supported(self, small_params):
        for name, algo in ALGORITHMS.items():
            if algo.supports(small_params):
                assert verify_algorithm(name, small_params) < 1e-8

    def test_max_abs_error_shape_mismatch(self):
        with pytest.raises(ValueError):
            max_abs_error(np.zeros(3), np.zeros(4))

    def test_random_operands_deterministic(self, small_params):
        x1, w1 = random_operands(small_params, seed=42)
        x2, w2 = random_operands(small_params, seed=42)
        assert np.array_equal(x1, x2) and np.array_equal(w1, w2)
